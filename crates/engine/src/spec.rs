//! Validated job descriptions: the [`JobSpec`] builder.
//!
//! [`InferenceJob`] grew ten `with_*` setters whose invariants were only
//! checked at submit time, deep inside admission. [`JobSpec`] moves that
//! boundary: `JobSpec::builder(mrf, kernel)` collects the same settings,
//! and [`JobSpecBuilder::build`] validates them *before* anything touches
//! the engine, returning a typed [`EngineError`] naming the offending
//! field. A `JobSpec` is therefore evidence of a well-formed request;
//! [`Engine::submit`](crate::Engine::submit) accepts
//! `impl Into<JobSpec<_, _>>`, so both specs and legacy `InferenceJob`
//! values (converted unvalidated, then vetted at admission as before)
//! flow through the same door.

use std::sync::Arc;

use mogs_gibbs::{LabelSampler, TemperatureSchedule};
use mogs_mrf::energy::SingletonPotential;
use mogs_mrf::label::MAX_LABELS;
use mogs_mrf::{Label, MarkovRandomField};

use crate::error::EngineError;
use crate::job::InferenceJob;
use crate::sink::DiagSink;

/// A validated inference request, produced by [`JobSpecBuilder::build`].
///
/// Everything an [`InferenceJob`] holds, with the cheap structural
/// invariants (non-zero iteration budget and chunk count, a label space
/// the engine's energy buffers can hold, an initial labeling that fits
/// the field) already checked. The sweep-schedule interference audit
/// still runs at admission — it needs the full site graph.
pub struct JobSpec<S: SingletonPotential, L: LabelSampler> {
    pub(crate) job: InferenceJob<S, L>,
}

impl<S: SingletonPotential, L: LabelSampler> JobSpec<S, L> {
    /// Starts a builder over `mrf` with `kernel` as the sampler backend,
    /// using the same defaults as [`InferenceJob::new`]: the field's own
    /// temperature held constant, 100 iterations, 2 chunks, seed 0, no
    /// burn-in, no mode tracking, energy recording on.
    pub fn builder(mrf: MarkovRandomField<S>, kernel: L) -> JobSpecBuilder<S, L> {
        JobSpecBuilder {
            job: InferenceJob::new(mrf, kernel),
        }
    }

    /// Read access to the validated request.
    pub fn job(&self) -> &InferenceJob<S, L> {
        &self.job
    }

    /// Unwraps the request for admission.
    pub(crate) fn into_job(self) -> InferenceJob<S, L> {
        self.job
    }
}

impl<S: SingletonPotential, L: LabelSampler> std::fmt::Debug for JobSpec<S, L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSpec").field("job", &self.job).finish()
    }
}

/// Legacy path: an [`InferenceJob`] converts into an *unvalidated* spec;
/// admission performs the full check exactly as it always did.
impl<S: SingletonPotential, L: LabelSampler> From<InferenceJob<S, L>> for JobSpec<S, L> {
    fn from(job: InferenceJob<S, L>) -> Self {
        JobSpec { job }
    }
}

/// Builder for [`JobSpec`]; validation happens once, in
/// [`JobSpecBuilder::build`].
pub struct JobSpecBuilder<S: SingletonPotential, L: LabelSampler> {
    job: InferenceJob<S, L>,
}

impl<S: SingletonPotential, L: LabelSampler> JobSpecBuilder<S, L> {
    /// Sets the iteration budget.
    #[must_use]
    pub fn iterations(mut self, iterations: usize) -> Self {
        self.job.iterations = iterations;
        self
    }

    /// Sets the deterministic chunk count (the reference path's
    /// `threads`).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.job.threads = threads;
        self
    }

    /// Sets the base RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.job.seed = seed;
        self
    }

    /// Replaces the sampler backend.
    #[must_use]
    pub fn kernel(mut self, kernel: L) -> Self {
        self.job.sampler = kernel;
        self
    }

    /// Sets the annealing schedule.
    #[must_use]
    pub fn schedule(mut self, schedule: TemperatureSchedule) -> Self {
        self.job.schedule = schedule;
        self
    }

    /// Sets the burn-in prefix discarded before mode tracking.
    #[must_use]
    pub fn burn_in(mut self, burn_in: usize) -> Self {
        self.job.burn_in = burn_in;
        self
    }

    /// Enables or disables marginal-mode tracking.
    #[must_use]
    pub fn track_modes(mut self, on: bool) -> Self {
        self.job.track_modes = on;
        self
    }

    /// Enables or disables the per-iteration energy trace.
    #[must_use]
    pub fn record_energy(mut self, on: bool) -> Self {
        self.job.record_energy = on;
        self
    }

    /// Sets an explicit starting labeling (validated at [`build`]).
    ///
    /// [`build`]: JobSpecBuilder::build
    #[must_use]
    pub fn initial(mut self, labels: Vec<Label>) -> Self {
        self.job.initial = Some(labels);
        self
    }

    /// Overrides the sweep phase groups. The override still passes the
    /// `mogs-audit` interference check at admission.
    #[must_use]
    pub fn groups(mut self, groups: Vec<Vec<usize>>) -> Self {
        self.job.groups = Some(groups);
        self
    }

    /// Attaches a streaming diagnostics sink.
    #[must_use]
    pub fn sink(mut self, sink: Arc<dyn DiagSink>) -> Self {
        self.job.sink = Some(sink);
        self
    }

    /// Attaches a deterministic device-fault schedule, applied to the
    /// job's kernel at sweep boundaries. An empty plan is bit-identical
    /// to no plan.
    #[must_use]
    pub fn fault_plan(mut self, plan: crate::FaultPlan) -> Self {
        self.job.fault_plan = Some(plan);
        self
    }

    /// Enables between-sweep unit health monitoring (validated at
    /// [`build`]): calibration probes, quarantine past the drift
    /// threshold, rotation rebalancing, and failover to the exact
    /// backend under the live-unit floor.
    ///
    /// [`build`]: JobSpecBuilder::build
    #[must_use]
    pub fn health(mut self, policy: crate::HealthPolicy) -> Self {
        self.job.health = Some(policy);
        self
    }

    /// Enables durable checkpointing: captured sweep-boundary states go
    /// to `writer` on `policy`'s cadence. See
    /// [`CheckpointPolicy`](crate::CheckpointPolicy) for when captures
    /// happen and [`Engine::resume`](crate::Engine::resume) for seating
    /// a captured state back into a fresh engine.
    #[must_use]
    pub fn checkpoint(
        mut self,
        policy: crate::CheckpointPolicy,
        writer: Arc<dyn crate::CheckpointWriter>,
    ) -> Self {
        self.job.checkpoint = Some(crate::CheckpointSpec { policy, writer });
        self
    }

    /// Validates the collected settings and seals them into a
    /// [`JobSpec`].
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidSpec`] for a zero iteration budget, a zero
    /// chunk count, an empty explicit group override, or an
    /// out-of-range health policy field;
    /// [`EngineError::LabelSpace`] when the field's label space is empty
    /// or exceeds [`MAX_LABELS`]; [`EngineError::Labeling`] when an
    /// explicit initial labeling does not fit the field.
    pub fn build(self) -> Result<JobSpec<S, L>, EngineError> {
        let job = self.job;
        if job.iterations == 0 {
            return Err(EngineError::InvalidSpec {
                field: "iterations",
                reason: "iteration budget must be at least 1".to_string(),
            });
        }
        if job.threads == 0 {
            return Err(EngineError::InvalidSpec {
                field: "threads",
                reason: "deterministic chunk count must be at least 1".to_string(),
            });
        }
        let m = job.mrf.space().count();
        if m == 0 || m > usize::from(MAX_LABELS) {
            return Err(EngineError::LabelSpace {
                count: m,
                max: usize::from(MAX_LABELS),
            });
        }
        if let Some(groups) = &job.groups {
            if groups.is_empty() {
                return Err(EngineError::InvalidSpec {
                    field: "groups",
                    reason: "explicit phase override must contain at least one group".to_string(),
                });
            }
        }
        if let Some(labels) = &job.initial {
            job.mrf
                .validate_labeling(labels)
                .map_err(EngineError::Labeling)?;
        }
        if let Some(policy) = &job.health {
            policy.validate()?;
        }
        Ok(JobSpec { job })
    }
}

impl<S: SingletonPotential, L: LabelSampler> std::fmt::Debug for JobSpecBuilder<S, L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSpecBuilder")
            .field("job", &self.job)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mogs_gibbs::SoftmaxGibbs;
    use mogs_mrf::{Grid2D, LabelSpace, SmoothnessPrior};

    fn field_with(space: LabelSpace) -> MarkovRandomField<impl SingletonPotential> {
        MarkovRandomField::builder(Grid2D::new(4, 4), space)
            .prior(SmoothnessPrior::potts(0.5))
            .singleton(|_s: usize, _l: Label| 0.0)
            .build()
    }

    #[test]
    fn builder_validates_and_carries_settings() {
        let spec = JobSpec::builder(field_with(LabelSpace::scalar(3)), SoftmaxGibbs::new())
            .iterations(7)
            .threads(3)
            .seed(42)
            .burn_in(2)
            .track_modes(true)
            .record_energy(false)
            .build()
            .expect("well-formed spec");
        assert_eq!(spec.job().iterations, 7);
        assert_eq!(spec.job().threads, 3);
        assert_eq!(spec.job().seed, 42);
        assert_eq!(spec.job().burn_in, 2);
        assert!(spec.job().track_modes);
        assert!(!spec.job().record_energy);
    }

    #[test]
    fn zero_iterations_fail_at_build() {
        let err = JobSpec::builder(field_with(LabelSpace::scalar(3)), SoftmaxGibbs::new())
            .iterations(0)
            .build()
            .expect_err("zero iterations must not validate");
        assert_eq!(err.variant(), "invalid-spec");
        let EngineError::InvalidSpec { field, .. } = err else {
            panic!("wrong variant: {err}");
        };
        assert_eq!(field, "iterations");
    }

    #[test]
    fn zero_threads_fail_at_build() {
        let err = JobSpec::builder(field_with(LabelSpace::scalar(3)), SoftmaxGibbs::new())
            .threads(0)
            .build()
            .expect_err("zero chunks must not validate");
        let EngineError::InvalidSpec { field, .. } = err else {
            panic!("wrong variant: {err}");
        };
        assert_eq!(field, "threads");
    }

    #[test]
    fn empty_label_space_fails_at_build() {
        // No public constructor yields an empty space, but serde (the one
        // remaining door: checkpoints and config files) can — the builder
        // must still catch it.
        let degenerate: LabelSpace = serde::json::from_str(r#"{"count":0,"kind":"Scalar"}"#)
            .expect("the JSON stand-in accepts a zero count");
        assert_eq!(degenerate.count(), 0);
        let err = JobSpec::builder(field_with(degenerate), SoftmaxGibbs::new())
            .build()
            .expect_err("empty label space must not validate");
        assert_eq!(err.variant(), "label-space");
        let EngineError::LabelSpace { count, max } = err else {
            panic!("wrong variant: {err}");
        };
        assert_eq!(count, 0);
        assert_eq!(max, 64);
    }

    #[test]
    fn bad_initial_labeling_fails_at_build() {
        let err = JobSpec::builder(field_with(LabelSpace::scalar(3)), SoftmaxGibbs::new())
            .initial(vec![Label::new(0); 3]) // 16-site grid
            .build()
            .expect_err("short labeling must not validate");
        assert_eq!(err.variant(), "labeling");
    }

    #[test]
    fn inference_job_converts_unvalidated() {
        let mut job = InferenceJob::new(field_with(LabelSpace::scalar(2)), SoftmaxGibbs::new());
        job.iterations = 0; // the legacy path defers checks past conversion
        let spec: JobSpec<_, _> = job.into();
        assert_eq!(spec.job().iterations, 0);
    }
}

//! Integration tests for certificate-based admission: the engine's
//! greedy-colored schedule certificate degenerates to the field's
//! reference phase groups on grids, explicit overrides are still
//! admitted (and bit-identical to the default path), and a coloring
//! that puts neighbours in one phase is rejected before any label
//! plane is allocated.

use mogs_audit::{color_schedule, verify_certificate, GridTopology};
use mogs_engine::prelude::*;
use mogs_mrf::energy::SingletonPotential;
use mogs_mrf::{Grid2D, Label, LabelSpace, MarkovRandomField, Neighborhood, SmoothnessPrior};

/// A deterministic field; two calls with the same arguments build
/// identical fields.
fn field(
    width: usize,
    height: usize,
    order: Neighborhood,
) -> MarkovRandomField<impl SingletonPotential + Clone + 'static> {
    MarkovRandomField::builder(Grid2D::new(width, height), LabelSpace::scalar(4))
        .prior(SmoothnessPrior::potts(0.9))
        .neighborhood(order)
        .temperature(2.0)
        .singleton(|site: usize, label: Label| {
            if usize::from(label.value()) == site % 4 {
                0.0
            } else {
                1.2
            }
        })
        .build()
}

fn small_engine() -> Engine {
    Engine::new(EngineConfig {
        workers: 2,
        queue_capacity: 2,
        max_active_jobs: 1,
        ..EngineConfig::default()
    })
}

/// The greedy coloring the engine admits grid jobs under is exactly the
/// field's reference phase groups — same class order, same within-class
/// site order — for every grid shape the runtime tests exercise. This
/// is the static half of the bit-identity argument (`kernel_identity`
/// holds the dynamic half).
#[test]
fn greedy_certificate_reproduces_the_reference_grid_schedule() {
    for order in [Neighborhood::FirstOrder, Neighborhood::SecondOrder] {
        for (width, height) in [(2, 2), (3, 5), (7, 4), (9, 9), (12, 10)] {
            let mrf = field(width, height, order);
            let topology = GridTopology::new(Grid2D::new(width, height), order).sparse();
            let certificate = color_schedule(&topology, 1);
            assert!(
                verify_certificate(&topology, &certificate).is_clean(),
                "greedy certificate must verify on {width}x{height} {order:?}"
            );
            assert_eq!(
                certificate.classes(),
                &mrf.independent_groups()[..],
                "greedy classes diverge from reference groups on {width}x{height} {order:?}"
            );
        }
    }
}

/// An explicit group override equal to the reference schedule is
/// admitted through the claimed-certificate path and produces output
/// bit-identical to the default greedy path.
#[test]
fn explicit_group_override_is_admitted_and_bit_identical() {
    let engine = small_engine();
    let run = |groups: Option<Vec<Vec<usize>>>| {
        let sampler = BackendSampler::try_new(Backend::Softmax, 2.0).expect("backend");
        let mrf = field(6, 5, Neighborhood::SecondOrder);
        let mut builder = JobSpec::builder(mrf, sampler)
            .threads(2)
            .seed(0x5EED_CAFE)
            .iterations(3)
            .record_energy(false);
        if let Some(groups) = groups {
            builder = builder.groups(groups);
        }
        let spec = builder.build().expect("valid spec");
        engine.submit(spec).expect("admitted").wait()
    };
    let default_path = run(None);
    let explicit = field(6, 5, Neighborhood::SecondOrder).independent_groups();
    let override_path = run(Some(explicit));
    engine.shutdown();
    assert_eq!(default_path.labels, override_path.labels);
}

/// A coloring that places two adjacent sites in the same phase is
/// rejected at submission with `EngineError::Schedule`; the job never
/// runs.
#[test]
fn interfering_override_is_rejected_at_admission() {
    let engine = small_engine();
    let sampler = BackendSampler::try_new(Backend::Softmax, 2.0).expect("backend");
    let mrf = field(4, 4, Neighborhood::FirstOrder);
    // Sites 0 and 1 are horizontal neighbours; force them into phase 0.
    let mut groups = mrf.independent_groups();
    let moved = groups[1].remove(0);
    groups[0].push(moved);
    groups[0].sort_unstable();
    let spec = JobSpec::builder(mrf, sampler)
        .threads(1)
        .seed(1)
        .iterations(1)
        .groups(groups)
        .build()
        .expect("spec validation does not audit the schedule");
    let err = engine.submit(spec).expect_err("must be rejected");
    engine.shutdown();
    assert!(
        matches!(err, EngineError::Schedule(_)),
        "expected a schedule rejection, got {err:?}"
    );
}

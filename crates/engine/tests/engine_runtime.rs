//! End-to-end tests of the persistent engine: determinism against the
//! reference sweep path, queue backpressure, mid-job cancellation, and
//! metrics sanity.

use std::time::Duration;

use mogs_audit::Violation;
use mogs_engine::prelude::*;
use mogs_gibbs::{
    checkerboard_sweep, colored_sweep, ChainConfig, McmcChain, SoftmaxGibbs, TemperatureSchedule,
};
use mogs_mrf::energy::SingletonPotential;
use mogs_mrf::{Grid2D, Label, LabelSpace, MarkovRandomField, Neighborhood, SmoothnessPrior};

/// A deterministic test field; two calls build identical fields.
fn field(order: Neighborhood) -> MarkovRandomField<impl SingletonPotential> {
    MarkovRandomField::builder(Grid2D::new(12, 10), LabelSpace::scalar(4))
        .prior(SmoothnessPrior::potts(0.6))
        .neighborhood(order)
        .temperature(2.0)
        .singleton(|site: usize, label: Label| {
            if usize::from(label.value()) == (site / 3) % 4 {
                0.0
            } else {
                2.0
            }
        })
        .build()
}

/// The chain's per-iteration sweep-seed derivation.
fn sweep_seed(seed: u64, iteration: usize) -> u64 {
    seed.wrapping_add((iteration as u64).wrapping_mul(0xA24B_AED4_963E_E407))
}

#[test]
fn engine_matches_checkerboard_sweep_bit_for_bit() {
    let mrf = field(Neighborhood::FirstOrder);
    let (threads, seed, iterations) = (4, 0xC0FFEE, 6);
    let mut reference = mrf.uniform_labeling();
    for iteration in 0..iterations {
        checkerboard_sweep(
            &mrf,
            &mut reference,
            &SoftmaxGibbs::new(),
            mrf.temperature(),
            threads,
            sweep_seed(seed, iteration),
        );
    }
    let engine = Engine::new(EngineConfig {
        workers: 3,
        queue_capacity: 4,
        max_active_jobs: 2,
        ..EngineConfig::default()
    });
    let spec = JobSpec::builder(field(Neighborhood::FirstOrder), SoftmaxGibbs::new())
        .threads(threads)
        .seed(seed)
        .iterations(iterations)
        .build()
        .expect("valid spec");
    let out = engine.submit(spec).expect("engine running").wait();
    assert!(!out.cancelled);
    assert_eq!(out.iterations_run, iterations);
    assert_eq!(
        out.labels, reference,
        "engine must be bit-identical to the reference sweep"
    );
    engine.shutdown();
}

#[test]
fn engine_matches_colored_sweep_on_second_order_fields() {
    let mrf = field(Neighborhood::SecondOrder);
    let (threads, seed, iterations) = (3, 77, 5);
    let mut reference = mrf.uniform_labeling();
    for iteration in 0..iterations {
        colored_sweep(
            &mrf,
            &mut reference,
            &SoftmaxGibbs::new(),
            mrf.temperature(),
            threads,
            sweep_seed(seed, iteration),
        );
    }
    let engine = Engine::with_default_config();
    let spec = JobSpec::builder(field(Neighborhood::SecondOrder), SoftmaxGibbs::new())
        .threads(threads)
        .seed(seed)
        .iterations(iterations)
        .build()
        .expect("valid spec");
    let out = engine.submit(spec).expect("engine running").wait();
    assert_eq!(
        out.labels, reference,
        "diagonal fast path must be bit-identical"
    );
}

#[test]
fn engine_reproduces_a_multithreaded_chain_including_modes_and_energies() {
    let config = ChainConfig {
        schedule: TemperatureSchedule::constant(2.0),
        burn_in: 3,
        track_modes: true,
        rao_blackwell: false,
        threads: 2,
        seed: 99,
    };
    let iterations = 10;
    let mrf = field(Neighborhood::FirstOrder);
    let mut chain = McmcChain::new(&mrf, SoftmaxGibbs::new(), config);
    chain.run(iterations);
    let reference = chain.result();

    let engine = Engine::with_default_config();
    let job = InferenceJob::from_chain_config(
        field(Neighborhood::FirstOrder),
        SoftmaxGibbs::new(),
        config,
        iterations,
    );
    let result = engine
        .submit(job)
        .expect("engine running")
        .wait()
        .into_chain_result();
    assert_eq!(
        result, reference,
        "engine must reproduce the chain bit-for-bit"
    );
}

#[test]
fn engine_runs_backend_selected_jobs() {
    // The RSU-G pool backend must run end to end and produce a valid
    // labeling (its draws are hardware-model, not softmax, so only
    // structural properties are asserted).
    let engine = Engine::with_default_config();
    let mrf = field(Neighborhood::FirstOrder);
    let sites = mrf.grid().len();
    let spec = JobSpec::builder(
        mrf,
        BackendSampler::try_new(Backend::RsuG { replicas: 4 }, 2.0).expect("valid backend"),
    )
    .threads(2)
    .seed(5)
    .iterations(4)
    .build()
    .expect("valid spec");
    let out = engine.submit(spec).expect("engine running").wait();
    assert_eq!(out.labels.len(), sites);
    assert!(out.labels.iter().all(|l| l.value() < 4));
    assert_eq!(out.energy_trace.len(), 4);
}

/// A job sized so cancellation lands mid-run.
fn long_job() -> JobSpec<impl SingletonPotential, SoftmaxGibbs> {
    JobSpec::builder(field(Neighborhood::FirstOrder), SoftmaxGibbs::new())
        .threads(2)
        .iterations(50_000)
        .record_energy(false)
        .build()
        .expect("valid spec")
}

/// Retries a bounced submission until the queue accepts it.
fn resubmit_until_accepted(
    engine: &Engine,
    mut attempt: Result<JobHandle, TrySubmitError>,
) -> JobHandle {
    loop {
        match attempt {
            Ok(handle) => return handle,
            Err(TrySubmitError::Full(prepared)) => {
                std::thread::sleep(Duration::from_millis(2));
                attempt = engine.try_resubmit(prepared);
            }
            Err(TrySubmitError::Engine(err)) => panic!("well-formed job failed: {err}"),
        }
    }
}

#[test]
fn full_queue_rejects_then_accepts_after_drain() {
    let engine = Engine::new(EngineConfig {
        workers: 1,
        queue_capacity: 1,
        max_active_jobs: 1,
        ..EngineConfig::default()
    });
    // First job occupies the single active slot (possibly after a moment
    // in the queue); the second can only be accepted once the first has
    // been admitted, so after this the queue holds exactly the second.
    let first = engine.submit(long_job()).expect("engine running");
    let second = resubmit_until_accepted(&engine, engine.try_submit(long_job()));
    // With one job active for many more sweeps and one queued, the queue
    // is full: submissions must bounce, handing the job back intact.
    let bounced = match engine.try_submit(long_job()) {
        Err(TrySubmitError::Full(prepared)) => prepared,
        Ok(handle) => panic!("expected Full, got acceptance as {}", handle.id()),
        Err(TrySubmitError::Engine(err)) => panic!("well-formed job failed: {err}"),
    };
    assert!(engine.metrics().jobs_rejected >= 1);
    // Draining the active job frees the slot; the bounced job then fits.
    first.cancel();
    second.cancel();
    let third = resubmit_until_accepted(&engine, engine.try_resubmit(bounced));
    third.cancel();
    assert!(first.wait().cancelled);
    assert!(second.wait().cancelled);
    assert!(third.wait().cancelled);
    engine.shutdown();
}

#[test]
fn cancellation_stops_a_running_job_at_a_phase_boundary() {
    let engine = Engine::new(EngineConfig {
        workers: 2,
        queue_capacity: 2,
        max_active_jobs: 1,
        ..EngineConfig::default()
    });
    let handle = engine.submit(long_job()).expect("engine running");
    // Let it actually sweep for a moment.
    std::thread::sleep(Duration::from_millis(30));
    handle.cancel();
    let out = handle.wait();
    assert!(out.cancelled);
    assert!(
        out.iterations_run < 50_000,
        "cancel must cut the budget short"
    );
    assert_eq!(
        out.labels.len(),
        120,
        "partial labeling still covers the grid"
    );
    let metrics = engine.metrics();
    assert_eq!(metrics.jobs_cancelled, 1);
    assert_eq!(metrics.jobs_completed, 0);
}

#[test]
fn metrics_account_for_completed_work_exactly() {
    let engine = Engine::new(EngineConfig {
        workers: 2,
        queue_capacity: 8,
        max_active_jobs: 2,
        ..EngineConfig::default()
    });
    let (jobs, iterations, sites) = (3u64, 7u64, 120u64);
    let handles: Vec<_> = (0..jobs)
        .map(|k| {
            let spec = JobSpec::builder(field(Neighborhood::FirstOrder), SoftmaxGibbs::new())
                .threads(2)
                .seed(k)
                .iterations(iterations as usize)
                .build()
                .expect("valid spec");
            engine.submit(spec).expect("engine running")
        })
        .collect();
    for handle in handles {
        assert_eq!(handle.wait().iterations_run as u64, iterations);
    }
    let m = engine.metrics();
    assert_eq!(m.jobs_submitted, jobs);
    assert_eq!(m.jobs_completed, jobs);
    assert_eq!(m.jobs_cancelled, 0);
    assert_eq!(m.sweeps_completed, jobs * iterations);
    assert_eq!(m.site_updates, jobs * iterations * sites);
    assert_eq!(m.active_jobs, 0);
    assert_eq!(m.queue_depth, 0);
    assert_eq!(m.job_wall_time.count, jobs);
    assert_eq!(m.sweep_latency.count, jobs * iterations);
    assert!(m.site_updates_per_sec > 0.0);
    let json = m.to_json();
    assert!(json.contains("\"site_updates\":2520"), "json: {json}");
}

#[test]
fn handles_report_lifecycle_status() {
    let engine = Engine::new(EngineConfig {
        workers: 1,
        queue_capacity: 2,
        max_active_jobs: 1,
        ..EngineConfig::default()
    });
    let blocker = engine.submit(long_job()).expect("engine running");
    let queued = engine.submit(long_job()).expect("engine running");
    // The blocker hogs the only active slot, so the second job stays
    // queued until cancellation drains the first.
    assert_ne!(queued.status(), JobStatus::Finished);
    blocker.cancel();
    queued.cancel();
    assert!(blocker.wait().cancelled);
    assert!(queued.wait().cancelled);
}

#[test]
fn corrupted_schedule_is_rejected_at_admission_before_any_plane_write() {
    let engine = Engine::new(EngineConfig {
        workers: 1,
        queue_capacity: 2,
        max_active_jobs: 1,
        ..EngineConfig::default()
    });
    // Corrupt the derived checkerboard schedule: move site 1 (a horizontal
    // neighbour of site 0) into site 0's phase group, so two workers could
    // race on adjacent plane cells if the job were ever admitted.
    let mrf = field(Neighborhood::FirstOrder);
    let mut groups = mrf.independent_groups();
    let from = groups
        .iter()
        .position(|g| g.contains(&1))
        .expect("site 1 is scheduled");
    groups[from].retain(|&s| s != 1);
    let to = groups
        .iter()
        .position(|g| g.contains(&0))
        .expect("site 0 is scheduled");
    groups[to].push(1);
    let spec = JobSpec::builder(mrf, SoftmaxGibbs::new())
        .threads(2)
        .iterations(5)
        .groups(groups)
        .build()
        .expect("the interference audit runs at admission, not build()");
    match engine.submit(spec) {
        Err(EngineError::Schedule(err)) => {
            assert!(
                err.report
                    .violations
                    .iter()
                    .any(|v| matches!(v, Violation::NeighborsSharePhase { .. })),
                "expected a neighbour-interference violation, got: {}",
                err.report
            );
        }
        Ok(handle) => panic!("corrupted schedule admitted as {}", handle.id()),
        Err(other) => panic!("wrong rejection: {other}"),
    }
    // The job never reached the queue, let alone a worker: nothing was
    // submitted, no plane was built, and a well-formed job still runs.
    let m = engine.metrics();
    assert_eq!(m.jobs_denied, 1);
    assert_eq!(m.jobs_submitted, 0);
    assert_eq!(m.site_updates, 0, "no plane write may precede rejection");
    let ok = JobSpec::builder(field(Neighborhood::FirstOrder), SoftmaxGibbs::new())
        .threads(2)
        .iterations(3)
        .build()
        .expect("valid spec");
    let handle = engine.submit(ok).expect("well-formed job admitted");
    assert_eq!(handle.wait().iterations_run, 3);
    engine.shutdown();
}

#[test]
fn zero_chunk_jobs_are_rejected_not_degraded() {
    // The builder refuses a zero chunk count outright...
    let err = JobSpec::builder(field(Neighborhood::FirstOrder), SoftmaxGibbs::new())
        .threads(0)
        .iterations(3)
        .build()
        .expect_err("zero chunks must fail at build()");
    assert_eq!(err.variant(), "invalid-spec");
    // ...and the legacy unvalidated path is still caught at admission,
    // where the audit reports it as a zero-chunk schedule.
    let engine = Engine::new(EngineConfig {
        workers: 1,
        queue_capacity: 2,
        max_active_jobs: 1,
        ..EngineConfig::default()
    });
    let mut job = InferenceJob::new(field(Neighborhood::FirstOrder), SoftmaxGibbs::new());
    job.threads = 0;
    job.iterations = 3;
    match engine.submit(job) {
        Err(EngineError::Schedule(err)) => {
            assert!(
                err.report
                    .violations
                    .iter()
                    .any(|v| matches!(v, Violation::ZeroChunks)),
                "expected a zero-chunk violation, got: {}",
                err.report
            );
        }
        other => panic!("expected schedule rejection, got {other:?}"),
    }
    engine.shutdown();
}

#[test]
fn shutdown_drains_queued_jobs_before_stopping() {
    let engine = Engine::new(EngineConfig {
        workers: 2,
        queue_capacity: 4,
        max_active_jobs: 1,
        ..EngineConfig::default()
    });
    let handles: Vec<_> = (0..3)
        .map(|k| {
            let spec = JobSpec::builder(field(Neighborhood::FirstOrder), SoftmaxGibbs::new())
                .threads(2)
                .seed(k)
                .iterations(5)
                .build()
                .expect("valid spec");
            engine.submit(spec).expect("engine running")
        })
        .collect();
    engine.shutdown();
    for handle in handles {
        let out = handle.wait();
        assert!(!out.cancelled, "shutdown must finish admitted work");
        assert_eq!(out.iterations_run, 5);
    }
}

/// A test sink: counts observations, records energies and label-snapshot
/// iterations, and stops the job after `stop_after` sweeps.
#[derive(Debug)]
struct ProbeSink {
    needs: SinkNeeds,
    stop_after: usize,
    energies: std::sync::Mutex<Vec<Option<f64>>>,
    label_sweeps: std::sync::Mutex<Vec<usize>>,
    started: std::sync::atomic::AtomicBool,
    finished: std::sync::atomic::AtomicBool,
}

impl ProbeSink {
    fn new(needs: SinkNeeds, stop_after: usize) -> Self {
        ProbeSink {
            needs,
            stop_after,
            energies: std::sync::Mutex::new(Vec::new()),
            label_sweeps: std::sync::Mutex::new(Vec::new()),
            started: std::sync::atomic::AtomicBool::new(false),
            finished: std::sync::atomic::AtomicBool::new(false),
        }
    }
}

impl DiagSink for ProbeSink {
    fn needs(&self) -> SinkNeeds {
        self.needs
    }

    fn on_start(&self, info: &JobStartInfo) {
        assert_eq!(info.sites, info.width * info.height);
        self.started
            .store(true, std::sync::atomic::Ordering::Release);
    }

    fn on_sweep(&self, obs: &SweepObservation<'_>) -> SweepDecision {
        self.energies.lock().unwrap().push(obs.energy);
        if obs.labels.is_some() {
            self.label_sweeps.lock().unwrap().push(obs.iteration);
        }
        if obs.iteration + 1 >= self.stop_after {
            SweepDecision::Stop
        } else {
            SweepDecision::Continue
        }
    }

    fn on_finish(&self, output: &JobOutput) {
        assert!(output.early_stopped || output.iterations_run > 0);
        self.finished
            .store(true, std::sync::atomic::Ordering::Release);
    }
}

#[test]
fn sink_observes_sweeps_and_early_stops_through_the_cancel_path() {
    let engine = Engine::with_default_config();
    let sink = std::sync::Arc::new(ProbeSink::new(
        SinkNeeds {
            energy: true,
            labels_stride: 2,
        },
        4,
    ));
    let spec = JobSpec::builder(field(Neighborhood::FirstOrder), SoftmaxGibbs::new())
        .threads(3)
        .seed(5)
        .iterations(50)
        .sink(std::sync::Arc::clone(&sink) as std::sync::Arc<dyn DiagSink>)
        .build()
        .expect("valid spec");
    let out = engine.submit(spec).expect("engine running").wait();
    assert!(out.early_stopped, "sink verdict must stop the job");
    assert!(!out.cancelled, "an early stop is not a user cancel");
    assert_eq!(out.iterations_run, 4, "stopped at the requested boundary");
    assert!(sink.started.load(std::sync::atomic::Ordering::Acquire));
    assert!(sink.finished.load(std::sync::atomic::Ordering::Acquire));
    // Every sweep carried an energy; labels arrived on the stride.
    let energies = sink.energies.lock().unwrap();
    assert_eq!(energies.len(), 4);
    assert!(energies.iter().all(Option::is_some));
    assert_eq!(*sink.label_sweeps.lock().unwrap(), vec![0, 2]);
    // The sink's energies are the job's own energy trace.
    let observed: Vec<f64> = energies.iter().map(|e| e.expect("energy")).collect();
    assert_eq!(observed, out.energy_trace);
    let metrics = engine.metrics();
    assert_eq!(metrics.jobs_early_stopped, 1);
    assert_eq!(metrics.jobs_cancelled, 0);
    assert_eq!(metrics.jobs_completed, 0);
    assert!(metrics.phase_latency.count > 0, "phases were timed");
    engine.shutdown();
}

#[test]
fn sink_does_not_perturb_results_and_stop_at_budget_counts_as_completed() {
    let iterations = 6;
    let bare = JobSpec::builder(field(Neighborhood::FirstOrder), SoftmaxGibbs::new())
        .threads(4)
        .seed(123)
        .iterations(iterations)
        .build()
        .expect("valid spec");
    let engine = Engine::with_default_config();
    let reference = engine.submit(bare).expect("engine running").wait();

    // Same job with a sink that "stops" exactly at the budget boundary:
    // the labeling is untouched and the job still counts as completed.
    let sink = std::sync::Arc::new(ProbeSink::new(
        SinkNeeds {
            energy: true,
            labels_stride: 0,
        },
        iterations,
    ));
    let spec = JobSpec::builder(field(Neighborhood::FirstOrder), SoftmaxGibbs::new())
        .threads(4)
        .seed(123)
        .iterations(iterations)
        .sink(std::sync::Arc::clone(&sink) as std::sync::Arc<dyn DiagSink>)
        .build()
        .expect("valid spec");
    let observed = engine.submit(spec).expect("engine running").wait();
    assert!(!observed.early_stopped);
    assert!(!observed.cancelled);
    assert_eq!(observed.labels, reference.labels, "sink must not perturb");
    assert_eq!(observed.energy_trace, reference.energy_trace);
    assert_eq!(engine.metrics().jobs_completed, 2);
    engine.shutdown();
}

//! The engine-survives suite: hostile kernels and collapsed pools must
//! end every job in a *typed* terminal state — `Completed`, `Degraded`,
//! or `Failed(EngineError)` — and must never wedge the engine. After
//! each failure the same engine has to accept and complete a fresh,
//! healthy job.
//!
//! The hostile kernels live here, not in the library: `PoisonKernel`
//! panics inside `sample_chunk`, `SleepyKernel` blocks past the phase
//! watchdog, and `BrittleKernel` exposes addressable units with no
//! exact fallback so a pool collapse has nowhere to fail over to.
//! Expect panic backtraces in this suite's stderr — they are the test
//! stimulus, caught by the workers' isolation boundary.

use mogs_engine::prelude::*;
use mogs_gibbs::kernel::KernelScratch;
use mogs_gibbs::{LabelSampler, SoftmaxGibbs};
use mogs_mrf::energy::SingletonPotential;
use mogs_mrf::{Grid2D, Label, LabelSpace, MarkovRandomField, SmoothnessPrior};
use rand::Rng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const M: usize = 4;

/// A small deterministic field shared by every scenario.
fn field() -> MarkovRandomField<impl SingletonPotential + Clone + 'static> {
    // audit:allow(lossy-cast) — M = 4 fits u16.
    MarkovRandomField::builder(Grid2D::new(8, 8), LabelSpace::scalar(M as u16))
        .prior(SmoothnessPrior::potts(0.6))
        .temperature(2.5)
        .singleton(|site: usize, label: Label| {
            if usize::from(label.value()) == site % M {
                0.0
            } else {
                2.0
            }
        })
        .build()
}

/// Builds a 6-sweep job over [`field`] on `kernel`.
fn job_on<L>(kernel: L) -> JobSpec<impl SingletonPotential + Clone + 'static, L>
where
    L: LabelSampler,
{
    JobSpec::builder(field(), kernel)
        .threads(2)
        .seed(11)
        .iterations(6)
        .record_energy(false)
        .build()
        .expect("valid spec")
}

/// Submits a healthy softmax job and requires it to complete — the
/// "engine still serviceable" probe run after every induced failure.
fn engine_accepts_fresh_work(engine: &Engine) {
    let out = engine
        .submit(job_on(SoftmaxGibbs::new()))
        .expect("engine accepts work after a failure")
        .wait_result()
        .expect("healthy job completes after a failure");
    assert_eq!(out.labels.len(), 64);
    assert!(out.degraded.is_none());
}

/// Panics inside `sample_chunk`: on every call (`panic_at: None`) or on
/// exactly one call of the shared hit counter (`panic_at: Some(n)`).
#[derive(Clone)]
struct PoisonKernel {
    inner: SoftmaxGibbs,
    hits: Arc<AtomicUsize>,
    panic_at: Option<usize>,
}

impl PoisonKernel {
    fn new(panic_at: Option<usize>) -> Self {
        PoisonKernel {
            inner: SoftmaxGibbs::new(),
            hits: Arc::new(AtomicUsize::new(0)),
            panic_at,
        }
    }
}

impl LabelSampler for PoisonKernel {
    fn name(&self) -> &'static str {
        "poison"
    }

    fn sample_label<R: Rng + ?Sized>(
        &mut self,
        energies: &[f64],
        temperature: f64,
        current: Label,
        rng: &mut R,
    ) -> Label {
        self.inner.sample_label(energies, temperature, current, rng)
    }
}

impl SweepKernel for PoisonKernel {
    fn sample_chunk<R: Rng + ?Sized>(
        &mut self,
        energies: &[f64],
        m: usize,
        temperature: f64,
        current: &[Label],
        out: &mut [Label],
        scratch: &mut KernelScratch,
        rng: &mut R,
    ) {
        let hit = self.hits.fetch_add(1, Ordering::SeqCst);
        match self.panic_at {
            None => panic!("poison kernel: unconditional panic on chunk call {hit}"),
            Some(n) if hit == n => panic!("poison kernel: one-shot panic on chunk call {hit}"),
            Some(_) => {}
        }
        self.inner
            .sample_chunk(energies, m, temperature, current, out, scratch, rng);
    }
}

/// Blocks inside `sample_chunk` for longer than any phase deadline the
/// test arms, simulating a wedged device driver.
#[derive(Clone)]
struct SleepyKernel {
    inner: SoftmaxGibbs,
    nap: Duration,
}

impl LabelSampler for SleepyKernel {
    fn name(&self) -> &'static str {
        "sleepy"
    }

    fn sample_label<R: Rng + ?Sized>(
        &mut self,
        energies: &[f64],
        temperature: f64,
        current: Label,
        rng: &mut R,
    ) -> Label {
        self.inner.sample_label(energies, temperature, current, rng)
    }
}

impl SweepKernel for SleepyKernel {
    fn sample_chunk<R: Rng + ?Sized>(
        &mut self,
        energies: &[f64],
        m: usize,
        temperature: f64,
        current: &[Label],
        out: &mut [Label],
        scratch: &mut KernelScratch,
        rng: &mut R,
    ) {
        std::thread::sleep(self.nap);
        self.inner
            .sample_chunk(energies, m, temperature, current, out, scratch, rng);
    }
}

/// Exposes addressable units to the fault plane but — unlike the RSU
/// pool backend — has no exact software fallback, so a collapse below
/// the live-unit floor is fatal by design.
#[derive(Clone)]
struct BrittleKernel {
    inner: SoftmaxGibbs,
    dead: Vec<bool>,
}

impl BrittleKernel {
    fn with_units(units: usize) -> Self {
        BrittleKernel {
            inner: SoftmaxGibbs::new(),
            dead: vec![false; units],
        }
    }
}

impl LabelSampler for BrittleKernel {
    fn name(&self) -> &'static str {
        "brittle"
    }

    fn sample_label<R: Rng + ?Sized>(
        &mut self,
        energies: &[f64],
        temperature: f64,
        current: Label,
        rng: &mut R,
    ) -> Label {
        self.inner.sample_label(energies, temperature, current, rng)
    }
}

impl SweepKernel for BrittleKernel {
    fn unit_count(&self) -> usize {
        self.dead.len()
    }

    fn inject_unit_fault(&mut self, unit: usize, _fault: UnitFault) -> bool {
        if unit < self.dead.len() {
            self.dead[unit] = true;
            true
        } else {
            false
        }
    }

    fn set_live_units(&mut self, live: &[bool]) -> usize {
        live.iter().filter(|&&l| l).count()
    }

    fn probe_unit(
        &self,
        unit: usize,
        energies: &[f64],
        _draws: u32,
        _seed: u64,
    ) -> Option<Vec<f64>> {
        // A healthy unit reports the uniform marginal, a dead one a point
        // mass — far past any sane drift threshold.
        let mut dist = vec![0.0; energies.len()];
        if self.dead.get(unit).copied()? {
            dist[0] = 1.0;
        } else {
            // audit:allow(lossy-cast) — probe rows have 8 entries.
            dist.fill(1.0 / energies.len() as f64);
        }
        Some(dist)
    }
}

#[test]
fn unrecoverable_panics_fail_typed_and_leave_the_engine_serviceable() {
    let engine = Engine::new(EngineConfig {
        workers: 2,
        max_phase_retries: 2,
        ..EngineConfig::default()
    });
    let err = engine
        .submit(job_on(PoisonKernel::new(None)))
        .expect("admission accepts the job")
        .wait_result()
        .expect_err("a kernel that always panics must fail the job");
    match err {
        EngineError::WorkerPanicked {
            iteration,
            group,
            retries,
            ref message,
        } => {
            assert_eq!((iteration, group), (0, 0), "first phase never completes");
            assert_eq!(retries, 2, "the full retry budget was spent");
            assert!(
                message.contains("poison kernel"),
                "payload preserved: {message}"
            );
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    let metrics = engine.metrics();
    assert!(metrics.jobs_panicked >= 1);
    assert!(metrics.phase_retries >= 2);
    assert_eq!(metrics.jobs_failed, 1);
    engine_accepts_fresh_work(&engine);
    engine.shutdown();
}

#[test]
fn a_transient_panic_is_retried_to_completion() {
    let engine = Engine::new(EngineConfig {
        workers: 2,
        max_phase_retries: 2,
        ..EngineConfig::default()
    });
    let out = engine
        .submit(job_on(PoisonKernel::new(Some(0))))
        .expect("admission accepts the job")
        .wait_result()
        .expect("one panic under a 2-retry budget must not fail the job");
    assert_eq!(out.labels.len(), 64);
    assert_eq!(out.iterations_run, 6);
    let metrics = engine.metrics();
    assert!(metrics.phase_retries >= 1, "the panicked phase was retried");
    assert_eq!(metrics.jobs_panicked, 0, "no job died of the panic");
    assert_eq!(metrics.jobs_failed, 0);
    engine.shutdown();
}

#[test]
fn the_watchdog_reaps_stuck_phases() {
    let engine = Engine::new(EngineConfig {
        workers: 2,
        phase_deadline: Some(Duration::from_millis(25)),
        ..EngineConfig::default()
    });
    let err = engine
        .submit(job_on(SleepyKernel {
            inner: SoftmaxGibbs::new(),
            nap: Duration::from_millis(400),
        }))
        .expect("admission accepts the job")
        .wait_result()
        .expect_err("a wedged kernel must trip the watchdog");
    match err {
        EngineError::WatchdogTimeout { deadline_ms, .. } => assert_eq!(deadline_ms, 25),
        other => panic!("expected WatchdogTimeout, got {other:?}"),
    }
    assert_eq!(engine.metrics().jobs_failed, 1);
    // The watchdog freed the *scheduler*; the worker threads stay
    // occupied until their naps end, and the deadline still applies to
    // the next job's phases. Let the sleepers wake (their stale
    // completions are dropped) so the freed workers serve the next job.
    std::thread::sleep(Duration::from_millis(500));
    engine_accepts_fresh_work(&engine);
    engine.shutdown();
}

#[test]
fn an_all_dead_pool_with_a_fallback_completes_degraded() {
    let engine = Engine::with_default_config();
    let pool = BackendSampler::try_new(Backend::RsuG { replicas: 4 }, 2.5)
        .expect("fixed positive replica count");
    let spec = JobSpec::builder(field(), pool)
        .threads(2)
        .seed(11)
        .iterations(6)
        .record_energy(false)
        .fault_plan(FaultPlan::new(
            (0..4)
                .map(|unit| FaultEvent {
                    sweep: 1,
                    unit,
                    fault: UnitFault::Dead,
                })
                .collect(),
        ))
        .health(HealthPolicy::default())
        .build()
        .expect("valid spec");
    let out = engine
        .submit(spec)
        .expect("admission accepts the job")
        .wait_result()
        .expect("a pool with an exact fallback must finish its job");
    assert_eq!(out.iterations_run, 6);
    let degraded = out.degraded.expect("total unit loss must degrade the job");
    assert_eq!(degraded.units_lost, 4);
    assert!(degraded.failed_over_at >= 1);
    let metrics = engine.metrics();
    assert_eq!(metrics.units_quarantined, 4);
    assert_eq!(metrics.jobs_failed_over, 1);
    engine_accepts_fresh_work(&engine);
    engine.shutdown();
}

#[test]
fn an_all_dead_pool_without_a_fallback_fails_typed() {
    let engine = Engine::with_default_config();
    let spec = JobSpec::builder(field(), BrittleKernel::with_units(2))
        .threads(2)
        .seed(11)
        .iterations(6)
        .record_energy(false)
        .fault_plan(FaultPlan::new(
            (0..2)
                .map(|unit| FaultEvent {
                    sweep: 1,
                    unit,
                    fault: UnitFault::Dead,
                })
                .collect(),
        ))
        .health(HealthPolicy::default())
        .build()
        .expect("valid spec");
    let err = engine
        .submit(spec)
        .expect("admission accepts the job")
        .wait_result()
        .expect_err("total unit loss with no fallback must fail the job");
    match err {
        EngineError::Backend { ref reason } => {
            assert!(reason.contains("no exact fallback"), "got: {reason}");
        }
        other => panic!("expected Backend collapse, got {other:?}"),
    }
    assert_eq!(engine.metrics().jobs_failed, 1);
    engine_accepts_fresh_work(&engine);
    engine.shutdown();
}

//! The fault plane's two determinism contracts, held under random
//! configuration:
//!
//! 1. **Zero-fault transparency** — attaching an empty [`FaultPlan`]
//!    (with or without a [`HealthPolicy`]) to a job must leave the
//!    labeling bit-identical to the same job with no fault plane at
//!    all, for BOTH backends. The fault machinery may not perturb a
//!    healthy run by even one RNG draw.
//! 2. **Schedule determinism** — a wear-out-derived fault plan is a
//!    pure function of its seed: same seed, same events; different
//!    seeds (almost surely) different events.

use mogs_engine::prelude::*;
use mogs_mrf::energy::SingletonPotential;
use mogs_mrf::{Grid2D, Label, LabelSpace, MarkovRandomField, SmoothnessPrior};
use mogs_ret::wearout::EnsembleWearout;
use proptest::prelude::*;

/// A deterministic field parameterised by the proptest case.
fn field(
    width: usize,
    height: usize,
    m: usize,
) -> MarkovRandomField<impl SingletonPotential + Clone + 'static> {
    // audit:allow(lossy-cast) — m <= 64 fits u16.
    MarkovRandomField::builder(Grid2D::new(width, height), LabelSpace::scalar(m as u16))
        .prior(SmoothnessPrior::potts(0.6))
        .temperature(2.5)
        .singleton(move |site: usize, label: Label| {
            if usize::from(label.value()) == site % m {
                0.0
            } else {
                2.0
            }
        })
        .build()
}

/// Runs one job and returns its labeling; `plane` decides whether a
/// fault plane (empty plan, optionally with health probing) rides along.
fn labels_with(
    backend: Backend,
    width: usize,
    height: usize,
    m: usize,
    seed: u64,
    plane: Option<HealthPolicy>,
    attach_empty_plan: bool,
) -> Vec<Label> {
    let sampler = BackendSampler::try_new(backend, 2.5).expect("well-formed backend");
    let engine = Engine::new(EngineConfig {
        workers: 2,
        queue_capacity: 2,
        max_active_jobs: 1,
        ..EngineConfig::default()
    });
    let mut builder = JobSpec::builder(field(width, height, m), sampler)
        .threads(2)
        .seed(seed)
        .iterations(6)
        .record_energy(false);
    if attach_empty_plan {
        builder = builder.fault_plan(FaultPlan::none());
    }
    if let Some(policy) = plane {
        builder = builder.health(policy);
    }
    let spec = builder.build().expect("valid spec");
    let out = engine.submit(spec).expect("engine running").wait();
    engine.shutdown();
    out.labels
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn empty_fault_plane_is_bit_identical_on_both_backends(
        width in 3usize..10,
        height in 3usize..10,
        m in 2usize..6,
        seed in 0u64..u64::MAX,
        replicas in 1usize..5,
    ) {
        for backend in [Backend::Softmax, Backend::RsuG { replicas }] {
            let bare = labels_with(backend, width, height, m, seed, None, false);
            let planned = labels_with(backend, width, height, m, seed, None, true);
            prop_assert_eq!(
                &bare, &planned,
                "empty plan perturbed {:?}", backend
            );
            let monitored = labels_with(
                backend, width, height, m, seed,
                Some(HealthPolicy::default()), true,
            );
            prop_assert_eq!(
                &bare, &monitored,
                "healthy-pool monitoring perturbed {:?}", backend
            );
        }
    }

    #[test]
    fn wearout_fault_schedules_are_a_pure_function_of_the_seed(
        units in 1usize..12,
        horizon in 4usize..64,
        seed in 0u64..u64::MAX,
    ) {
        let wearout = EnsembleWearout::new(64, 2_000.0, 1.0);
        let a = FaultPlan::from_wearout(&wearout, units, 120.0, horizon, seed);
        let b = FaultPlan::from_wearout(&wearout, units, 120.0, horizon, seed);
        prop_assert_eq!(&a, &b, "same seed must give the same schedule");
        // Events arrive sorted by sweep and inside the horizon.
        let mut last = 0usize;
        for event in a.events() {
            prop_assert!(event.sweep >= last);
            prop_assert!(event.sweep < horizon);
            prop_assert!(event.unit < units);
            last = event.sweep;
        }
    }
}

/// Seed sensitivity, pinned at a short-lifetime design point where the
/// schedule is guaranteed non-empty (the probabilistic version of this
/// claim lives in `fault::tests::wearout_plans_are_seed_deterministic`).
#[test]
fn different_seeds_give_different_schedules_at_short_lifetimes() {
    let wearout = EnsembleWearout::new(64, 100.0, 1.0);
    let a = FaultPlan::from_wearout(&wearout, 8, 100.0, 1_000, 1);
    let b = FaultPlan::from_wearout(&wearout, 8, 100.0, 1_000, 2);
    assert!(!a.is_empty(), "short lifetimes must schedule deaths");
    assert_ne!(a, b, "seed must drive the schedule");
}

//! Property test: the engine's chunk-batched [`SweepKernel`] hot path is
//! bit-identical to the reference `colored_sweep` for BOTH backends,
//! across grid shapes, label-space sizes, chunk counts, and seeds.
//!
//! This is the determinism contract from the crate docs, held under
//! random configuration instead of a handful of fixed ones.

use mogs_engine::prelude::*;
use mogs_gibbs::colored_sweep;
use mogs_mrf::energy::SingletonPotential;
use mogs_mrf::{Grid2D, Label, LabelSpace, MarkovRandomField, Neighborhood, SmoothnessPrior};
use proptest::prelude::*;

/// A deterministic field parameterised by the proptest case; two calls
/// with the same arguments build identical fields.
fn field(
    width: usize,
    height: usize,
    m: usize,
    second_order: bool,
) -> MarkovRandomField<impl SingletonPotential + Clone + 'static> {
    let order = if second_order {
        Neighborhood::SecondOrder
    } else {
        Neighborhood::FirstOrder
    };
    // audit:allow(lossy-cast) — m <= 64 fits u16.
    MarkovRandomField::builder(Grid2D::new(width, height), LabelSpace::scalar(m as u16))
        .prior(SmoothnessPrior::potts(0.7))
        .neighborhood(order)
        .temperature(2.0)
        .singleton(move |site: usize, label: Label| {
            if usize::from(label.value()) == site % m {
                0.0
            } else {
                1.5
            }
        })
        .build()
}

/// The chain's per-iteration sweep-seed derivation.
fn sweep_seed(seed: u64, iteration: usize) -> u64 {
    seed.wrapping_add((iteration as u64).wrapping_mul(0xA24B_AED4_963E_E407))
}

/// The largest chunk count `<= want` that chunks every phase group
/// exactly — the admission audit rejects anything else (and rightly so:
/// an inexact count silently degrades parallelism).
fn exact_chunks(groups: &[Vec<usize>], want: usize) -> usize {
    (1..=want)
        .rev()
        .find(|&c| {
            groups.iter().all(|g| {
                let size = g.len().div_ceil(c);
                size > 0 && g.len().div_ceil(size) == c
            })
        })
        .unwrap_or(1)
}

/// Runs one (backend, config) pair through the engine and through the
/// reference sweep and requires bit-identical labelings.
#[allow(clippy::too_many_arguments)] // mirrors the proptest case tuple
fn assert_engine_matches_reference(
    backend: Backend,
    width: usize,
    height: usize,
    m: usize,
    second_order: bool,
    threads: usize,
    iterations: usize,
    seed: u64,
) {
    let sampler = BackendSampler::try_new(backend, 2.0).expect("well-formed backend");
    let mrf = field(width, height, m, second_order);
    let threads = exact_chunks(&mrf.independent_groups(), threads);
    let mut reference = mrf.uniform_labeling();
    for iteration in 0..iterations {
        colored_sweep(
            &mrf,
            &mut reference,
            &sampler,
            mrf.temperature(),
            threads,
            sweep_seed(seed, iteration),
        );
    }
    let engine = Engine::new(EngineConfig {
        workers: 2,
        queue_capacity: 2,
        max_active_jobs: 1,
        ..EngineConfig::default()
    });
    let spec = JobSpec::builder(field(width, height, m, second_order), sampler)
        .threads(threads)
        .seed(seed)
        .iterations(iterations)
        .record_energy(false)
        .build()
        .expect("valid spec");
    let out = engine.submit(spec).expect("engine running").wait();
    engine.shutdown();
    assert_eq!(
        out.labels, reference,
        "{backend:?} diverged from colored_sweep at {width}x{height}, \
         m={m}, threads={threads}, seed={seed:#x}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn engine_is_bit_identical_to_colored_sweep_for_both_backends(
        width in 2usize..10,
        height in 2usize..10,
        m in 2usize..=64,
        threads in 1usize..6,
        iterations in 1usize..4,
        second_order in proptest::bool::ANY,
        replicas in 1usize..5,
        seed in 0u64..u64::MAX,
    ) {
        assert_engine_matches_reference(
            Backend::Softmax, width, height, m, second_order,
            threads, iterations, seed,
        );
        assert_engine_matches_reference(
            Backend::RsuG { replicas }, width, height, m, second_order,
            threads, iterations, seed,
        );
    }
}

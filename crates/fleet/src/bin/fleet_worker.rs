//! The fleet worker binary: `fleet-worker <addr>` connects to a
//! coordinator (`tcp:host:port` or `unix:/path`) and speaks the shard
//! protocol until told to finish. Spawned by the coordinator's
//! `Launcher::Program` path; exits nonzero on any protocol or shard
//! failure so process supervisors see the death.

use std::io::Write as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(addr) = std::env::args().nth(1) else {
        let _ = writeln!(
            std::io::stderr(),
            "usage: fleet-worker <tcp:host:port | unix:/path>"
        );
        return ExitCode::from(2);
    };
    match mogs_fleet::worker_main(&addr) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            let _ = writeln!(std::io::stderr(), "fleet worker failed: {err}");
            ExitCode::FAILURE
        }
    }
}

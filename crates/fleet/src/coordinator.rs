//! The fleet coordinator: phase-barriered multi-process sweeps with
//! checkpoint-backed shard migration.
//!
//! # Execution model
//!
//! The coordinator drives all workers through one color phase at a
//! time: `Phase` out, `PhaseDone` (every owned site of the group) back,
//! merged into the coordinator's **mirror plane**, then re-broadcast as
//! `Halo` so every shard's plane holds the labels the next phase's
//! gathers read. Phases are barriers; sweeps are sequences of phases;
//! the mirror after phase `g` equals, bit for bit, the engine's plane
//! at the same point.
//!
//! # The bit-identity argument
//!
//! Three facts compose:
//! 1. shards are unions of whole `(group, chunk)` cells, so every chunk
//!    RNG stream `(seed, sweep, group, chunk)` is consumed by exactly
//!    one worker with the reference arithmetic (`mogs_engine::shard`);
//! 2. the sharding audit proves halos carry *exactly* the cross-shard
//!    adjacency, so a shard's plane holds the same neighbour labels the
//!    engine's plane would at every phase boundary;
//! 3. migration re-admits a shard as a pure function of (boundary
//!    plane, phase replay log) — both already bit-exact — and re-runs
//!    the interrupted phase from its own streams.
//!
//! Draws depend on nothing else, so kill-and-migrate cannot change a
//! single label. The A15 repro ladder checks this end to end.
//!
//! # Failure handling
//!
//! Liveness is observed three ways: a failed send, a missed `PhaseDone`
//! deadline, and a missed sweep-boundary heartbeat. Any of them condemns
//! the worker: its stream is never resynchronized, its shard is
//! migrated — to a respawned process ([`FleetConfig::respawn`]) or,
//! with no spare capacity, *adopted* by the least-loaded survivor and
//! the job finishes [`Degraded`]. Each migration spends one unit of
//! [`FleetConfig::max_migrations`]; exhaustion is a typed
//! [`FleetError::FleetCollapse`], never a hang.

use std::collections::{BTreeMap, VecDeque};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::thread::JoinHandle;
use std::time::Duration;

use mogs_ckpt::{verify_binding, Checkpoint, CheckpointStore};
use mogs_engine::ckpt::{JobState, StateBinding};
use mogs_engine::Degraded;

use crate::error::{FleetError, FleetResult};
use crate::exec::{build_shard, kernel_name, FleetStructure, ShardExec};
use crate::partition::{partition, Partition};
use crate::spec::FleetSpec;
use crate::wire::{recv_to_coordinator, rpc_ping, send_to_worker, Conn, ToCoordinator, ToWorker};
use crate::worker::{worker_main, WORKER_ENV};

/// What a successful spawn attempt yields: the established connection
/// plus whichever process/thread handle the launcher produced.
type SpawnedWorker = (Conn, Option<Child>, Option<JoinHandle<FleetResult<()>>>);

/// Checkpoint key of the coordinator's whole-plane state.
pub const COORD_KEY: &str = "fleet-coord";

/// Checkpoint key of one shard's state.
#[must_use]
pub fn shard_key(shard: usize) -> String {
    format!("fleet-shard-{shard}")
}

/// How worker processes are brought up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Launcher {
    /// Spawn this binary with the coordinator address as `argv[1]`
    /// (the `fleet-worker` helper, or anything speaking the protocol).
    Program(PathBuf),
    /// Re-exec the current executable with [`WORKER_ENV`] set; the
    /// binary must call [`crate::maybe_run_worker`] first thing.
    SelfExec,
    /// A thread in this process speaking the same protocol over a real
    /// socket. No process isolation — chaos kills are unsupported.
    InProcess,
}

/// Which socket family carries the control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Loopback TCP.
    Tcp,
    /// Unix-domain socket in the system temp directory.
    Unix,
}

/// One scripted worker kill, executed by the coordinator immediately
/// after dispatching `Phase{sweep, group}` — deterministic mid-phase
/// death for the repro ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillAt {
    /// Sweep index of the kill.
    pub sweep: usize,
    /// Color group whose dispatch triggers it.
    pub group: usize,
    /// Slot index to SIGKILL.
    pub worker: usize,
}

/// Deterministic fault schedule for robustness tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Scripted kills.
    pub kills: Vec<KillAt>,
}

/// Durable checkpointing of the coordinator's sweep boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetCheckpoint {
    /// Store directory.
    pub dir: PathBuf,
    /// Cut every `n` completed sweeps (0 disables periodic cuts).
    pub every_sweeps: usize,
    /// Per-key retention bound.
    pub retain: usize,
}

/// Coordinator configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Worker processes at launch (and shards in the partition).
    pub workers: usize,
    /// Socket family.
    pub transport: TransportKind,
    /// How workers come up.
    pub launcher: Launcher,
    /// Migration budget; exceeding it is [`FleetError::FleetCollapse`].
    pub max_migrations: usize,
    /// Replace dead workers with fresh processes; `false` means
    /// survivors adopt the orphaned shard and the job completes
    /// [`Degraded`].
    pub respawn: bool,
    /// Deadline of the sweep-boundary liveness probe.
    pub heartbeat: Duration,
    /// Per-RPC deadline (`AssignOk`, `PhaseDone`).
    pub rpc_deadline: Duration,
    /// Base of the exponential connect/spawn backoff.
    pub backoff_base: Duration,
    /// Spawn/accept attempts before giving up.
    pub max_retries: u32,
    /// Durable sweep-boundary checkpoints.
    pub checkpoint: Option<FleetCheckpoint>,
    /// Scripted failures.
    pub chaos: ChaosPlan,
    /// Pause after this many completed sweeps (requires checkpointing;
    /// the run returns `finished: false` and can be resumed).
    pub stop_after_sweep: Option<usize>,
    /// Resume from the newest coordinator checkpoint instead of sweep 0.
    pub resume: bool,
}

impl FleetConfig {
    /// A sane default configuration for `workers` in-process workers.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        FleetConfig {
            workers,
            transport: TransportKind::Tcp,
            launcher: Launcher::InProcess,
            max_migrations: 4,
            respawn: true,
            heartbeat: Duration::from_secs(2),
            rpc_deadline: Duration::from_secs(20),
            backoff_base: Duration::from_millis(50),
            max_retries: 5,
            checkpoint: None,
            chaos: ChaosPlan::default(),
            stop_after_sweep: None,
            resume: false,
        }
    }
}

/// The fleet's result: the same observables as the engine's
/// [`JobOutput`](mogs_engine::JobOutput), plus fleet provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutput {
    /// Final label plane, one raw label per site.
    pub labels: Vec<u8>,
    /// Marginal MAP estimate, when the run passed burn-in.
    pub map_estimate: Option<Vec<u8>>,
    /// Total energy after each completed sweep.
    pub energy_trace: Vec<f64>,
    /// Sweeps completed.
    pub iterations_run: usize,
    /// `false` when [`FleetConfig::stop_after_sweep`] paused the run.
    pub finished: bool,
    /// Set when a shard was adopted without replacement capacity.
    pub degraded: Option<Degraded>,
    /// Shard migrations performed.
    pub migrations: usize,
    /// Worker processes (or threads) launched over the run.
    pub workers_spawned: usize,
}

impl FleetOutput {
    /// Bit-exact comparison against an engine run of the same spec:
    /// labels, MAP estimate, and every energy-trace entry compared as
    /// IEEE-754 bit patterns.
    #[must_use]
    pub fn bit_identical_to(&self, reference: &mogs_engine::JobOutput) -> bool {
        let ref_labels: Vec<u8> = reference.labels.iter().map(|l| l.value()).collect();
        let ref_map: Option<Vec<u8>> = reference
            .map_estimate
            .as_ref()
            .map(|m| m.iter().map(|l| l.value()).collect());
        self.labels == ref_labels
            && self.map_estimate == ref_map
            && self.energy_trace.len() == reference.energy_trace.len()
            && self
                .energy_trace
                .iter()
                .zip(&reference.energy_trace)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

/// Runs `spec` across a fleet of worker processes.
///
/// # Errors
///
/// Typed [`FleetError`]s: `Spec`/`Partition` before anything launches,
/// `Spawn` when workers cannot come up, `FleetCollapse` when the
/// migration budget runs out, `Checkpoint` on store or binding
/// failures, `Unsupported` for structurally impossible configurations.
pub fn run_fleet(spec: &FleetSpec, config: &FleetConfig) -> FleetResult<FleetOutput> {
    let mut coordinator = Coordinator::launch(spec, config)?;
    let result = coordinator.run();
    coordinator.teardown(result.is_err());
    result
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

impl Listener {
    fn bind(kind: TransportKind) -> FleetResult<(Self, String)> {
        match kind {
            TransportKind::Tcp => {
                let listener = TcpListener::bind("127.0.0.1:0")
                    .map_err(|e| FleetError::io("binding loopback listener", e))?;
                let addr = listener
                    .local_addr()
                    .map_err(|e| FleetError::io("reading listener address", e))?;
                Ok((Listener::Tcp(listener), format!("tcp:{addr}")))
            }
            TransportKind::Unix => {
                static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
                let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let path = std::env::temp_dir()
                    .join(format!("mogs-fleet-{}-{n}.sock", std::process::id()));
                let _ = std::fs::remove_file(&path);
                let listener = UnixListener::bind(&path)
                    .map_err(|e| FleetError::io("binding unix listener", e))?;
                let addr = format!("unix:{}", path.display());
                Ok((Listener::Unix(listener, path), addr))
            }
        }
    }

    /// Accepts one connection within `deadline`, polling non-blocking.
    fn accept(&self, deadline: Duration) -> FleetResult<Conn> {
        let start = std::time::Instant::now();
        let set_nonblocking = |on: bool| -> std::io::Result<()> {
            match self {
                Listener::Tcp(l) => l.set_nonblocking(on),
                Listener::Unix(l, _) => l.set_nonblocking(on),
            }
        };
        set_nonblocking(true).map_err(|e| FleetError::io("configuring listener", e))?;
        loop {
            let accepted: std::io::Result<Conn> = match self {
                Listener::Tcp(l) => l.accept().map(|(s, _)| {
                    let _ = TcpStream::set_nodelay(&s, true);
                    Conn::Tcp(s)
                }),
                Listener::Unix(l, _) => l.accept().map(|(s, _): (UnixStream, _)| Conn::Unix(s)),
            };
            match accepted {
                Ok(conn) => {
                    let _ = set_nonblocking(false);
                    return Ok(conn);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if start.elapsed() > deadline {
                        let _ = set_nonblocking(false);
                        return Err(FleetError::Spawn {
                            reason: format!(
                                "worker did not connect within {} ms",
                                deadline.as_millis()
                            ),
                        });
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    let _ = set_nonblocking(false);
                    return Err(FleetError::io("accepting worker connection", e));
                }
            }
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

struct Slot {
    conn: Option<Conn>,
    child: Option<Child>,
    thread: Option<JoinHandle<FleetResult<()>>>,
    shards: Vec<usize>,
    alive: bool,
}

struct Coordinator {
    spec: FleetSpec,
    config: FleetConfig,
    structure: FleetStructure,
    partition: Partition,
    /// Full-plane mirror runner: never phases, only seats the merged
    /// plane to compute the engine's exact per-sweep energy.
    reference: Box<dyn ShardExec>,
    mirror: Vec<u8>,
    energy_trace: Vec<f64>,
    hist: Vec<u32>,
    slots: Vec<Slot>,
    /// Owning slot per site (site → slot index), kept in sync with
    /// every (re)assignment for halo filtering.
    owner_slot: Vec<usize>,
    listener: Listener,
    addr: String,
    store: Option<CheckpointStore>,
    migrations: usize,
    workers_spawned: usize,
    degraded: Option<Degraded>,
    nonce: u64,
    start_sweep: usize,
}

impl Coordinator {
    fn launch(spec: &FleetSpec, config: &FleetConfig) -> FleetResult<Self> {
        spec.validate()?;
        if config.workers == 0 {
            return Err(FleetError::Spec {
                reason: "a fleet needs at least one worker".to_string(),
            });
        }
        if config.launcher == Launcher::InProcess && !config.chaos.kills.is_empty() {
            return Err(FleetError::Unsupported {
                reason: "chaos kills need worker processes; the in-process launcher has none"
                    .to_string(),
            });
        }
        if (config.stop_after_sweep.is_some() || config.resume) && config.checkpoint.is_none() {
            return Err(FleetError::Unsupported {
                reason: "stop/resume requires a checkpoint store".to_string(),
            });
        }
        let structure = FleetStructure::of(spec)?;
        let partition = partition(&structure, config.workers)?;
        let all_cells: Vec<(usize, usize)> = (0..structure.group_count())
            .flat_map(|g| (0..structure.cells[g].len()).map(move |c| (g, c)))
            .collect();
        let reference = build_shard(spec, &all_cells)?;
        let mirror = reference.snapshot();
        let store = match &config.checkpoint {
            Some(ck) => Some(CheckpointStore::open(&ck.dir, ck.retain)?),
            None => None,
        };
        let (listener, addr) = Listener::bind(config.transport)?;
        let sites = structure.sites;
        let labels = structure.labels;
        let mut coordinator = Coordinator {
            spec: spec.clone(),
            config: config.clone(),
            structure,
            partition,
            reference,
            mirror,
            energy_trace: Vec::new(),
            hist: vec![0u32; sites * labels],
            slots: Vec::new(),
            owner_slot: vec![0; sites],
            listener,
            addr,
            store,
            migrations: 0,
            workers_spawned: 0,
            degraded: None,
            nonce: 0,
            start_sweep: 0,
        };
        if config.resume {
            coordinator.load_resume()?;
        }
        for shard in 0..config.workers {
            let slot = coordinator.spawn_slot(vec![shard])?;
            coordinator.slots.push(slot);
        }
        coordinator.rebuild_owner_map();
        let (start, mirror) = (coordinator.start_sweep, coordinator.mirror.clone());
        for idx in 0..coordinator.slots.len() {
            coordinator.assign_slot(idx, &mirror, start, &[])?;
        }
        Ok(coordinator)
    }

    /// The coordinator-level checkpoint binding (whole plane,
    /// `shard: None`).
    fn binding(&self) -> FleetResult<StateBinding> {
        let (width, height) = self.spec.workload.dims();
        Ok(StateBinding {
            sites: self.structure.sites,
            width,
            height,
            labels: self.structure.labels,
            iterations: self.spec.iterations,
            burn_in: self.spec.burn_in,
            threads: self.spec.threads,
            seed: self.spec.seed,
            fingerprint: self.structure.topology.fingerprint(),
            kernel: kernel_name(&self.spec)?,
            track_modes: true,
            record_energy: true,
            shard: None,
        })
    }

    fn rebuild_owner_map(&mut self) {
        for (idx, slot) in self.slots.iter().enumerate() {
            for &shard in &slot.shards {
                for &site in &self.partition.shards[shard].owned {
                    self.owner_slot[site] = idx;
                }
            }
        }
    }

    fn live_slots(&self) -> Vec<usize> {
        (0..self.slots.len())
            .filter(|&i| self.slots[i].alive)
            .collect()
    }

    /// Launches one worker and waits for its connection, retrying with
    /// exponential backoff.
    fn spawn_slot(&mut self, shards: Vec<usize>) -> FleetResult<Slot> {
        let mut attempt = 0u32;
        loop {
            match self.try_spawn() {
                Ok((conn, child, thread)) => {
                    self.workers_spawned += 1;
                    return Ok(Slot {
                        conn: Some(conn),
                        child,
                        thread,
                        shards,
                        alive: true,
                    });
                }
                Err(err) if attempt < self.config.max_retries => {
                    let backoff = self
                        .config
                        .backoff_base
                        .saturating_mul(1 << attempt.min(16));
                    std::thread::sleep(backoff);
                    attempt += 1;
                    let _ = err;
                }
                Err(err) => return Err(err),
            }
        }
    }

    fn try_spawn(&self) -> FleetResult<SpawnedWorker> {
        match &self.config.launcher {
            Launcher::Program(path) => {
                let child = Command::new(path)
                    .arg(&self.addr)
                    .stdin(Stdio::null())
                    .spawn()
                    .map_err(|e| FleetError::Spawn {
                        reason: format!("launching {}: {e}", path.display()),
                    })?;
                let conn = self.listener.accept(self.config.rpc_deadline)?;
                Ok((conn, Some(child), None))
            }
            Launcher::SelfExec => {
                let exe = std::env::current_exe().map_err(|e| FleetError::Spawn {
                    reason: format!("resolving current executable: {e}"),
                })?;
                let child = Command::new(exe)
                    .env(WORKER_ENV, &self.addr)
                    .stdin(Stdio::null())
                    .spawn()
                    .map_err(|e| FleetError::Spawn {
                        reason: format!("self-exec: {e}"),
                    })?;
                let conn = self.listener.accept(self.config.rpc_deadline)?;
                Ok((conn, Some(child), None))
            }
            Launcher::InProcess => {
                let addr = self.addr.clone();
                let thread = std::thread::spawn(move || worker_main(&addr));
                let conn = self.listener.accept(self.config.rpc_deadline)?;
                Ok((conn, None, Some(thread)))
            }
        }
    }

    /// Sends a fresh `Assign` for everything `slot` owns and waits for
    /// `AssignOk`, discarding stale replies from a superseded exchange.
    fn assign_slot(
        &mut self,
        idx: usize,
        plane: &[u8],
        resume_sweep: usize,
        replay: &[Vec<(usize, u8)>],
    ) -> FleetResult<()> {
        let cells: Vec<(usize, usize)> = self.slots[idx]
            .shards
            .iter()
            .flat_map(|&s| self.partition.shards[s].cells.iter().copied())
            .collect();
        let expected_owned: usize = self.slots[idx]
            .shards
            .iter()
            .map(|&s| self.partition.shards[s].owned.len())
            .sum();
        let msg = ToWorker::Assign {
            spec: self.spec.clone(),
            cells,
            plane: Some(plane.to_vec()),
            resume_sweep,
            replay: replay.to_vec(),
        };
        self.send_slot(idx, &msg)?;
        loop {
            match self.recv_slot(idx, "assign")? {
                ToCoordinator::AssignOk { owned } => {
                    if owned != expected_owned {
                        return Err(FleetError::Protocol {
                            reason: format!(
                                "slot {idx} admitted {owned} sites, expected {expected_owned}"
                            ),
                        });
                    }
                    return Ok(());
                }
                // Stale from a superseded phase exchange: the worker
                // sent these before it processed the Assign.
                ToCoordinator::PhaseDone { .. } | ToCoordinator::Pong { .. } => continue,
                ToCoordinator::Fault { reason } => {
                    return Err(FleetError::WorkerLost { slot: idx, reason })
                }
                other => {
                    return Err(FleetError::Protocol {
                        reason: format!("expected assign_ok, got {other:?}"),
                    })
                }
            }
        }
    }

    fn send_slot(&mut self, idx: usize, msg: &ToWorker) -> FleetResult<()> {
        let conn = self.slots[idx]
            .conn
            .as_mut()
            .ok_or(FleetError::WorkerLost {
                slot: idx,
                reason: "connection already torn down".to_string(),
            })?;
        send_to_worker(conn, msg).map_err(|e| match e {
            FleetError::Io { context, source } => FleetError::WorkerLost {
                slot: idx,
                reason: format!("send failed while {context}: {source}"),
            },
            other => other,
        })
    }

    fn recv_slot(&mut self, idx: usize, rpc: &'static str) -> FleetResult<ToCoordinator> {
        let deadline = self.config.rpc_deadline;
        let conn = self.slots[idx]
            .conn
            .as_mut()
            .ok_or(FleetError::WorkerLost {
                slot: idx,
                reason: "connection already torn down".to_string(),
            })?;
        recv_to_coordinator(conn, Some(deadline), rpc)
    }

    /// Reaps a condemned slot: closes the stream, kills and waits the
    /// child, detaches the thread.
    fn reap(&mut self, idx: usize) -> Vec<usize> {
        let slot = &mut self.slots[idx];
        slot.alive = false;
        slot.conn = None;
        if let Some(mut child) = slot.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        if let Some(thread) = slot.thread.take() {
            // The worker errors out promptly once its stream is gone.
            let _ = thread.join();
        }
        std::mem::take(&mut slot.shards)
    }

    fn collapse(&mut self, reason: String) -> FleetError {
        for idx in 0..self.slots.len() {
            self.reap(idx);
        }
        FleetError::FleetCollapse {
            migrations: self.migrations,
            max_migrations: self.config.max_migrations,
            reason,
        }
    }

    /// Cross-checks the migrated shards' durable checkpoints (when one
    /// exists at exactly the boundary sweep) against the coordinator's
    /// boundary mirror — the store and the mirror must agree bit for
    /// bit, or the job refuses to continue on either.
    fn cross_check_boundary(
        &self,
        shards: &[usize],
        boundary: &[u8],
        resume_sweep: usize,
    ) -> FleetResult<()> {
        let Some(store) = &self.store else {
            return Ok(());
        };
        for &shard in shards {
            let Some((path, checkpoint)) = store.latest(&shard_key(shard))? else {
                continue;
            };
            if checkpoint.state.next_sweep != resume_sweep {
                continue; // stale cadence; the mirror is the fresher truth
            }
            let expected: Vec<u8> = self.partition.shards[shard]
                .owned
                .iter()
                .map(|&site| boundary[site])
                .collect();
            if checkpoint.state.labels != expected {
                return Err(FleetError::Checkpoint {
                    reason: format!(
                        "shard {shard} checkpoint {} disagrees with the coordinator's \
                         sweep-{resume_sweep} boundary",
                        path.display()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Migrates everything `failed` owned to a respawned worker or an
    /// adopting survivor, catching the target up to `resume_sweep` with
    /// `replay` (the completed phases of that sweep). Returns the
    /// target slot, ready for the next `Phase`.
    fn recover(
        &mut self,
        mut failed: usize,
        sweep: usize,
        boundary: &[u8],
        replay: &[Vec<(usize, u8)>],
    ) -> FleetResult<usize> {
        loop {
            self.migrations += 1;
            if self.migrations > self.config.max_migrations {
                return Err(self.collapse(format!(
                    "slot {failed} died at sweep {sweep} with the budget spent"
                )));
            }
            let shards = self.reap(failed);
            self.cross_check_boundary(&shards, boundary, sweep)?;
            let target = if self.config.respawn {
                let slot = self.spawn_slot(shards)?;
                self.slots[failed] = slot;
                failed
            } else {
                let Some(target) = self.live_slots().into_iter().min_by_key(|&i| {
                    let owned: usize = self.slots[i]
                        .shards
                        .iter()
                        .map(|&s| self.partition.shards[s].owned.len())
                        .sum();
                    (owned, i)
                }) else {
                    return Err(self.collapse(format!(
                        "slot {failed} died at sweep {sweep} with no survivors to adopt its shard"
                    )));
                };
                self.slots[target].shards.extend(shards);
                self.degraded = Some(Degraded {
                    failed_over_at: sweep,
                    units_lost: self.degraded.map_or(1, |d| d.units_lost + 1),
                });
                target
            };
            self.rebuild_owner_map();
            match self.assign_slot(target, boundary, sweep, replay) {
                Ok(()) => return Ok(target),
                Err(e) if e.is_migratable() => {
                    failed = target;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Dispatches and collects one color phase across the fleet,
    /// surviving worker deaths mid-phase. Returns the merged updates
    /// (every site of the group, exactly once).
    fn run_group(
        &mut self,
        sweep: usize,
        group: usize,
        boundary: &[u8],
        phase_log: &[Vec<(usize, u8)>],
    ) -> FleetResult<Vec<(usize, u8)>> {
        // Scripted chaos: SIGKILL right after dispatch, so death lands
        // mid-phase deterministically.
        let kills: Vec<usize> = self
            .config
            .chaos
            .kills
            .iter()
            .filter(|k| k.sweep == sweep && k.group == group)
            .map(|k| k.worker)
            .collect();
        let phase = ToWorker::Phase { sweep, group };
        let mut pending: VecDeque<usize> = VecDeque::new();
        let mut dead_on_send: Vec<usize> = Vec::new();
        for idx in self.live_slots() {
            match self.send_slot(idx, &phase) {
                Ok(()) => pending.push_back(idx),
                Err(e) if e.is_migratable() => dead_on_send.push(idx),
                Err(e) => return Err(e),
            }
        }
        for idx in kills {
            if let Some(child) = self.slots[idx].child.as_mut() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
        for idx in dead_on_send {
            if !self.slots[idx].alive {
                continue; // already migrated as collateral of another recovery
            }
            let target = self.recover(idx, sweep, boundary, phase_log)?;
            self.send_slot(target, &phase)?;
            pending.retain(|&x| x != target);
            pending.push_back(target);
        }
        let mut collected: BTreeMap<usize, Vec<(usize, u8)>> = BTreeMap::new();
        while let Some(idx) = pending.pop_front() {
            if !self.slots[idx].alive {
                continue;
            }
            match self.recv_phase_done(idx, sweep, group) {
                Ok(updates) => {
                    collected.insert(idx, updates);
                }
                Err(e) if e.is_migratable() => {
                    let target = self.recover(idx, sweep, boundary, phase_log)?;
                    self.send_slot(target, &phase)?;
                    // The fresh reply covers the union of the target's
                    // shards; any earlier collection of it is subsumed.
                    collected.remove(&target);
                    pending.retain(|&x| x != target);
                    pending.push_back(target);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(collected.into_values().flatten().collect())
    }

    fn recv_phase_done(
        &mut self,
        idx: usize,
        sweep: usize,
        group: usize,
    ) -> FleetResult<Vec<(usize, u8)>> {
        loop {
            match self.recv_slot(idx, "phase")? {
                ToCoordinator::PhaseDone {
                    sweep: s,
                    group: g,
                    updates,
                } if (s, g) == (sweep, group) => return Ok(updates),
                // Replies from a superseded exchange; drop them.
                ToCoordinator::PhaseDone { .. } | ToCoordinator::Pong { .. } => continue,
                ToCoordinator::Fault { reason } => {
                    return Err(FleetError::WorkerLost { slot: idx, reason })
                }
                other => {
                    return Err(FleetError::Protocol {
                        reason: format!("expected phase_done, got {other:?}"),
                    })
                }
            }
        }
    }

    /// Broadcasts the merged phase updates to every slot that does not
    /// own them. A failed send condemns the slot like any other death —
    /// its replacement is rebuilt from the boundary with the full log
    /// (including this phase), so nothing is lost.
    fn broadcast_halo(
        &mut self,
        sweep: usize,
        updates: &[(usize, u8)],
        boundary: &[u8],
        phase_log: &[Vec<(usize, u8)>],
    ) -> FleetResult<()> {
        for idx in self.live_slots() {
            let filtered: Vec<(usize, u8)> = updates
                .iter()
                .filter(|&&(site, _)| self.owner_slot[site] != idx)
                .copied()
                .collect();
            if filtered.is_empty() {
                continue;
            }
            match self.send_slot(idx, &ToWorker::Halo { updates: filtered }) {
                Ok(()) => {}
                Err(e) if e.is_migratable() => {
                    self.recover(idx, sweep, boundary, phase_log)?;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Sweep-boundary heartbeat: one ping round; a missed pong condemns
    /// the slot and migrates its shard from the (post-sweep) boundary.
    fn heartbeat_round(&mut self, next_sweep: usize) -> FleetResult<()> {
        let boundary = self.mirror.clone();
        for idx in self.live_slots() {
            self.nonce += 1;
            let nonce = self.nonce;
            let deadline = self.config.heartbeat;
            let result = match self.slots[idx].conn.as_mut() {
                Some(conn) => rpc_ping(conn, nonce, deadline),
                None => Err(FleetError::WorkerLost {
                    slot: idx,
                    reason: "connection already torn down".to_string(),
                }),
            };
            match result {
                Ok(()) => {}
                Err(e) if e.is_migratable() => {
                    self.recover(idx, next_sweep, &boundary, &[])?;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Cuts the durable sweep-boundary checkpoints: one shard-granular
    /// state per partition shard plus the coordinator's whole-plane
    /// state (energy trace, histograms) under [`COORD_KEY`].
    fn cut_checkpoints(&self, next_sweep: usize) -> FleetResult<()> {
        let Some(store) = &self.store else {
            return Ok(());
        };
        let base = self.binding()?;
        let meta = self.spec.encode();
        let of = self.partition.len();
        for (i, shard) in self.partition.shards.iter().enumerate() {
            let mut binding = base.clone();
            binding.shard = Some(shard.binding(i, of));
            let labels: Vec<u8> = shard.owned.iter().map(|&site| self.mirror[site]).collect();
            let state = JobState {
                binding,
                next_sweep,
                labels,
                energy_trace: Vec::new(),
                histograms: None,
                kernel_faults: Vec::new(),
                fault: None,
                sink_state: None,
            };
            store.save(
                &shard_key(i),
                &Checkpoint {
                    meta: meta.clone(),
                    state,
                },
            )?;
        }
        let state = JobState {
            binding: base,
            next_sweep,
            labels: self.mirror.clone(),
            energy_trace: self.energy_trace.clone(),
            histograms: Some(self.hist.clone()),
            kernel_faults: Vec::new(),
            fault: None,
            sink_state: None,
        };
        store.save(COORD_KEY, &Checkpoint { meta, state })?;
        Ok(())
    }

    /// Loads the newest coordinator checkpoint, re-verifies every shard
    /// state against it (binding and bit-exact plane agreement), and
    /// seeds the mirror, traces, and start sweep from it.
    fn load_resume(&mut self) -> FleetResult<()> {
        let Some(store) = &self.store else {
            return Err(FleetError::Unsupported {
                reason: "resume requires a checkpoint store".to_string(),
            });
        };
        let Some((_, coord)) = store.latest(COORD_KEY)? else {
            return Err(FleetError::Checkpoint {
                reason: "no coordinator checkpoint to resume from".to_string(),
            });
        };
        verify_binding(&coord.state, &self.binding()?)?;
        let of = self.partition.len();
        for (i, shard) in self.partition.shards.iter().enumerate() {
            let key = shard_key(i);
            let Some((path, ck)) = store.latest(&key)? else {
                return Err(FleetError::Checkpoint {
                    reason: format!("shard checkpoint {key} is missing"),
                });
            };
            let mut expected = self.binding()?;
            expected.shard = Some(shard.binding(i, of));
            verify_binding(&ck.state, &expected)?;
            if ck.state.next_sweep != coord.state.next_sweep {
                return Err(FleetError::Checkpoint {
                    reason: format!(
                        "shard checkpoint {} is at sweep {}, coordinator at {}",
                        path.display(),
                        ck.state.next_sweep,
                        coord.state.next_sweep
                    ),
                });
            }
            let expected_labels: Vec<u8> = shard
                .owned
                .iter()
                .map(|&site| coord.state.labels[site])
                .collect();
            if ck.state.labels != expected_labels {
                return Err(FleetError::Checkpoint {
                    reason: format!(
                        "shard checkpoint {} disagrees with the coordinator plane",
                        path.display()
                    ),
                });
            }
        }
        self.start_sweep = coord.state.next_sweep;
        self.mirror = coord.state.labels;
        self.energy_trace = coord.state.energy_trace;
        if let Some(hist) = coord.state.histograms {
            self.hist = hist;
        }
        self.reference.seat(&self.mirror)?;
        Ok(())
    }

    fn run(&mut self) -> FleetResult<FleetOutput> {
        let iterations = self.spec.iterations;
        let groups = self.structure.group_count();
        let mut finished = true;
        let mut completed = self.start_sweep;
        for sweep in self.start_sweep..iterations {
            let boundary = self.mirror.clone();
            let mut phase_log: Vec<Vec<(usize, u8)>> = Vec::with_capacity(groups);
            for group in 0..groups {
                let updates = self.run_group(sweep, group, &boundary, &phase_log)?;
                for &(site, label) in &updates {
                    self.mirror[site] = label;
                }
                phase_log.push(updates.clone());
                self.broadcast_halo(sweep, &updates, &boundary, &phase_log)?;
            }
            completed = sweep + 1;
            // The engine's sweep-boundary bookkeeping, replicated on the
            // merged mirror: energy trace, then mode histograms.
            self.reference.seat(&self.mirror)?;
            self.energy_trace.push(self.reference.plane_energy());
            if completed > self.spec.burn_in {
                let m = self.structure.labels;
                for (site, &label) in self.mirror.iter().enumerate() {
                    self.hist[site * m + usize::from(label)] += 1;
                }
            }
            self.heartbeat_round(completed)?;
            let due = match &self.config.checkpoint {
                Some(ck) => {
                    ck.every_sweeps > 0
                        && completed.is_multiple_of(ck.every_sweeps)
                        && completed < iterations
                }
                None => false,
            } || self.config.stop_after_sweep == Some(completed);
            if due {
                self.cut_checkpoints(completed)?;
            }
            if self.config.stop_after_sweep == Some(completed) {
                finished = false;
                break;
            }
        }
        self.finish_workers();
        let map_estimate = (finished && completed > self.spec.burn_in).then(|| {
            let m = self.structure.labels;
            (0..self.structure.sites)
                .map(|site| {
                    self.hist[site * m..(site + 1) * m]
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, count)| **count)
                        .map_or(0, |(label, _)| label as u8)
                })
                .collect()
        });
        Ok(FleetOutput {
            labels: self.mirror.clone(),
            map_estimate,
            energy_trace: self.energy_trace.clone(),
            iterations_run: completed,
            finished,
            degraded: self.degraded,
            migrations: self.migrations,
            workers_spawned: self.workers_spawned,
        })
    }

    /// Orderly shutdown: `Finish`/`Bye` with every live worker, then
    /// reap. Failures here are ignored — the job's results are already
    /// on the coordinator.
    fn finish_workers(&mut self) {
        for idx in self.live_slots() {
            if self.send_slot(idx, &ToWorker::Finish).is_ok() {
                loop {
                    match self.recv_slot(idx, "finish") {
                        Ok(ToCoordinator::Bye) => break,
                        Ok(_) => continue,
                        Err(_) => break,
                    }
                }
            }
            self.reap(idx);
        }
    }

    fn teardown(&mut self, failed: bool) {
        if failed {
            for idx in 0..self.slots.len() {
                self.reap(idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BackendKind, Workload};

    fn spec() -> FleetSpec {
        FleetSpec {
            workload: Workload::Demo {
                width: 8,
                height: 6,
                labels: 3,
            },
            backend: BackendKind::Softmax,
            iterations: 6,
            threads: 3,
            seed: 0xC0FFEE,
            burn_in: 2,
        }
    }

    #[test]
    fn single_worker_fleet_matches_engine() {
        let output = run_fleet(&spec(), &FleetConfig::new(1)).expect("fleet runs");
        let reference = crate::exec::run_in_process(&spec()).expect("engine runs");
        assert!(output.finished);
        assert_eq!(output.iterations_run, 6);
        assert_eq!(output.migrations, 0);
        assert!(
            output.bit_identical_to(&reference),
            "single-worker fleet must be bit-identical to the engine"
        );
    }

    #[test]
    fn three_worker_fleet_matches_engine_over_tcp_and_unix() {
        let reference = crate::exec::run_in_process(&spec()).expect("engine runs");
        for transport in [TransportKind::Tcp, TransportKind::Unix] {
            let mut config = FleetConfig::new(3);
            config.transport = transport;
            let output = run_fleet(&spec(), &config).expect("fleet runs");
            assert_eq!(output.workers_spawned, 3);
            assert!(
                output.bit_identical_to(&reference),
                "3-worker fleet must be bit-identical over {transport:?}"
            );
        }
    }

    #[test]
    fn zero_workers_and_chaos_in_process_are_refused() {
        assert_eq!(
            run_fleet(&spec(), &FleetConfig::new(0))
                .expect_err("zero workers")
                .variant(),
            "spec"
        );
        let mut config = FleetConfig::new(2);
        config.chaos.kills.push(KillAt {
            sweep: 0,
            group: 0,
            worker: 0,
        });
        assert_eq!(
            run_fleet(&spec(), &config)
                .expect_err("chaos in-process")
                .variant(),
            "unsupported"
        );
    }

    #[test]
    fn stop_without_store_is_refused() {
        let mut config = FleetConfig::new(1);
        config.stop_after_sweep = Some(2);
        assert_eq!(
            run_fleet(&spec(), &config).expect_err("no store").variant(),
            "unsupported"
        );
    }
}

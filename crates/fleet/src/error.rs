//! The fleet's typed failure taxonomy.
//!
//! Every wire, RPC, and coordinator path returns [`FleetResult`]; nothing
//! on the control plane unwraps. The variants keep the operationally
//! distinct failures distinct: a torn frame is not a missed deadline, a
//! dead worker is not a bad partition, and a job that exhausted its
//! migration budget fails with [`FleetError::FleetCollapse`] — the one
//! variant that means "the robustness machinery itself gave up", which
//! callers (and the A15 repro ladder) match on by name.

use std::fmt;

use mogs_ckpt::CkptError;
use mogs_engine::EngineError;

/// Alias every fallible fleet function returns.
pub type FleetResult<T> = Result<T, FleetError>;

/// Everything that can go wrong between a coordinator and its workers.
#[derive(Debug)]
pub enum FleetError {
    /// An OS-level socket or process operation failed.
    Io {
        /// What the fleet was doing when the OS said no.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A frame violated the length-prefixed envelope (bad hex prefix,
    /// oversized payload, non-UTF-8 body, truncated stream).
    Frame {
        /// Why the frame was rejected.
        reason: String,
    },
    /// A well-formed frame carried a message the receiver cannot accept
    /// in its current state (unknown tag, missing field, wrong reply).
    Protocol {
        /// What was expected or what was malformed.
        reason: String,
    },
    /// An RPC missed its deadline.
    Deadline {
        /// The RPC that timed out.
        rpc: &'static str,
        /// The deadline that was missed, in milliseconds.
        after_ms: u64,
    },
    /// A worker process could not be launched or never connected.
    Spawn {
        /// Why the launch failed.
        reason: String,
    },
    /// A worker died (socket EOF, reaped child, failed send) and its
    /// shard needs migration.
    WorkerLost {
        /// Coordinator-side slot index of the lost worker.
        slot: usize,
        /// What the coordinator observed.
        reason: String,
    },
    /// The shard partitioner produced (or was asked for) an invalid
    /// partition, or the independent sharding audit rejected it.
    Partition {
        /// The audit summary or constraint violated.
        reason: String,
    },
    /// The fleet spec itself is invalid, or the engine rejected the job
    /// it describes at shard admission.
    Spec {
        /// Admission failure, verbatim.
        reason: String,
    },
    /// A checkpoint could not be cut, loaded, or cross-checked against
    /// the coordinator's boundary mirror.
    Checkpoint {
        /// The store or binding failure, verbatim.
        reason: String,
    },
    /// The migration budget is exhausted: workers died faster than the
    /// fleet may re-admit them. The job is abandoned, not retried.
    FleetCollapse {
        /// Migrations performed before giving up.
        migrations: usize,
        /// Budget that was exceeded.
        max_migrations: usize,
        /// The final failure that tipped the job over.
        reason: String,
    },
    /// The requested configuration is structurally unsupported (for
    /// example chaos kills under the in-process launcher, which has no
    /// process to kill).
    Unsupported {
        /// What cannot be done.
        reason: String,
    },
}

impl FleetError {
    /// Stable machine-readable variant name (metrics labels, repro
    /// assertions).
    #[must_use]
    pub fn variant(&self) -> &'static str {
        match self {
            FleetError::Io { .. } => "io",
            FleetError::Frame { .. } => "frame",
            FleetError::Protocol { .. } => "protocol",
            FleetError::Deadline { .. } => "deadline",
            FleetError::Spawn { .. } => "spawn",
            FleetError::WorkerLost { .. } => "worker-lost",
            FleetError::Partition { .. } => "partition",
            FleetError::Spec { .. } => "spec",
            FleetError::Checkpoint { .. } => "checkpoint",
            FleetError::FleetCollapse { .. } => "fleet-collapse",
            FleetError::Unsupported { .. } => "unsupported",
        }
    }

    /// Whether the coordinator may respond by migrating the affected
    /// shard (as opposed to failing the whole job).
    #[must_use]
    pub fn is_migratable(&self) -> bool {
        matches!(
            self,
            FleetError::Io { .. }
                | FleetError::Frame { .. }
                | FleetError::Deadline { .. }
                | FleetError::WorkerLost { .. }
        )
    }

    pub(crate) fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        FleetError::Io {
            context: context.into(),
            source,
        }
    }
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Io { context, source } => {
                write!(f, "i/o failure while {context}: {source}")
            }
            FleetError::Frame { reason } => write!(f, "bad frame: {reason}"),
            FleetError::Protocol { reason } => write!(f, "protocol violation: {reason}"),
            FleetError::Deadline { rpc, after_ms } => {
                write!(f, "{rpc} missed its {after_ms} ms deadline")
            }
            FleetError::Spawn { reason } => write!(f, "worker spawn failed: {reason}"),
            FleetError::WorkerLost { slot, reason } => {
                write!(f, "worker in slot {slot} lost: {reason}")
            }
            FleetError::Partition { reason } => write!(f, "invalid shard partition: {reason}"),
            FleetError::Spec { reason } => write!(f, "invalid fleet spec: {reason}"),
            FleetError::Checkpoint { reason } => write!(f, "checkpoint failure: {reason}"),
            FleetError::FleetCollapse {
                migrations,
                max_migrations,
                reason,
            } => write!(
                f,
                "fleet collapsed after {migrations} migrations (budget {max_migrations}): {reason}"
            ),
            FleetError::Unsupported { reason } => write!(f, "unsupported configuration: {reason}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<EngineError> for FleetError {
    fn from(err: EngineError) -> Self {
        FleetError::Spec {
            reason: err.to_string(),
        }
    }
}

impl From<CkptError> for FleetError {
    fn from(err: CkptError) -> Self {
        FleetError::Checkpoint {
            reason: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_are_distinct_and_stable() {
        let all = [
            FleetError::io("connecting", std::io::Error::other("x")).variant(),
            FleetError::Frame {
                reason: String::new(),
            }
            .variant(),
            FleetError::Protocol {
                reason: String::new(),
            }
            .variant(),
            FleetError::Deadline {
                rpc: "phase",
                after_ms: 5,
            }
            .variant(),
            FleetError::Spawn {
                reason: String::new(),
            }
            .variant(),
            FleetError::WorkerLost {
                slot: 0,
                reason: String::new(),
            }
            .variant(),
            FleetError::Partition {
                reason: String::new(),
            }
            .variant(),
            FleetError::Spec {
                reason: String::new(),
            }
            .variant(),
            FleetError::Checkpoint {
                reason: String::new(),
            }
            .variant(),
            FleetError::FleetCollapse {
                migrations: 3,
                max_migrations: 2,
                reason: String::new(),
            }
            .variant(),
            FleetError::Unsupported {
                reason: String::new(),
            }
            .variant(),
        ];
        let mut dedup = all.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len(), "variant names must be unique");
    }

    #[test]
    fn migratable_classification() {
        assert!(FleetError::Deadline {
            rpc: "phase",
            after_ms: 1
        }
        .is_migratable());
        assert!(FleetError::WorkerLost {
            slot: 1,
            reason: String::new()
        }
        .is_migratable());
        assert!(!FleetError::Partition {
            reason: String::new()
        }
        .is_migratable());
        assert!(!FleetError::FleetCollapse {
            migrations: 1,
            max_migrations: 1,
            reason: String::new()
        }
        .is_migratable());
    }
}

//! Shard execution behind a type-erased surface.
//!
//! The engine's job pipeline is generic over the singleton potential and
//! the sweep kernel; the fleet's wire protocol is not. This module is
//! the seam: [`build_shard`] turns a parsed [`FleetSpec`] plus a cell
//! list into a `Box<dyn ShardExec>` — one concrete object per workload
//! and backend, all driven identically by the worker loop and the
//! coordinator's mirror — and [`FleetStructure`] captures the job's
//! phase decomposition (groups, chunks, topology, certificate) so the
//! partitioner and the sharding audit agree with the engine about every
//! cell boundary.

use mogs_audit::{verify_certificate, Chunking, ScheduleCertificate};
use mogs_ckpt::harness::DEMO_MAX_ENERGY;
use mogs_engine::{BackendSampler, Engine, JobOutput, JobSpec, ShardRunner};
use mogs_gibbs::kernel::SweepKernel;
use mogs_mrf::energy::SingletonPotential;
use mogs_mrf::{
    Grid2D, Label, LabelSpace, MarkovRandomField, Neighborhood, SmoothnessPrior, Topology,
};
use mogs_vision::stereo::{StereoConfig, StereoMatching};
use mogs_vision::synthetic;

use crate::error::{FleetError, FleetResult};
use crate::spec::{FleetSpec, Workload};

/// A shard of one job, type-erased for the worker loop and the
/// coordinator's mirror. Implemented by
/// [`ShardRunner`](mogs_engine::ShardRunner) for every
/// workload/backend combination.
pub trait ShardExec {
    /// Number of color groups per sweep.
    fn group_count(&self) -> usize;
    /// Number of chunks in one group under the reference split.
    fn chunks_in_group(&self, group: usize) -> usize;
    /// The sites of one `(group, chunk)` cell.
    fn cell_sites(&self, group: usize, chunk: usize) -> Vec<usize>;
    /// Total sites in the plane.
    fn site_count(&self) -> usize;
    /// Labels in the label space.
    fn label_count(&self) -> usize;
    /// The owned sites of one group, in chunk order.
    fn owned_sites(&self, group: usize) -> Vec<usize>;
    /// Runs the owned chunks of `group` for sweep `iteration`.
    fn run_phase(&mut self, iteration: usize, group: usize);
    /// Seats a full plane of raw labels.
    fn seat(&mut self, labels: &[u8]) -> FleetResult<()>;
    /// Imports halo or replay updates.
    fn apply_updates(&mut self, updates: &[(usize, u8)]) -> FleetResult<()>;
    /// Reads the current labels of `sites`.
    fn read_labels(&self, sites: &[usize]) -> Vec<u8>;
    /// Copies the whole plane out.
    fn snapshot(&self) -> Vec<u8>;
    /// Total field energy of the current plane.
    fn plane_energy(&self) -> f64;
}

impl<S, L> ShardExec for ShardRunner<S, L>
where
    S: SingletonPotential + 'static,
    L: SweepKernel + Clone + Send + Sync + 'static,
{
    fn group_count(&self) -> usize {
        ShardRunner::group_count(self)
    }
    fn chunks_in_group(&self, group: usize) -> usize {
        ShardRunner::chunks_in_group(self, group)
    }
    fn cell_sites(&self, group: usize, chunk: usize) -> Vec<usize> {
        ShardRunner::cell_sites(self, group, chunk).to_vec()
    }
    fn site_count(&self) -> usize {
        ShardRunner::site_count(self)
    }
    fn label_count(&self) -> usize {
        ShardRunner::label_count(self)
    }
    fn owned_sites(&self, group: usize) -> Vec<usize> {
        ShardRunner::owned_sites(self, group)
    }
    fn run_phase(&mut self, iteration: usize, group: usize) {
        ShardRunner::run_phase(self, iteration, group);
    }
    fn seat(&mut self, labels: &[u8]) -> FleetResult<()> {
        ShardRunner::seat(self, labels).map_err(FleetError::from)
    }
    fn apply_updates(&mut self, updates: &[(usize, u8)]) -> FleetResult<()> {
        ShardRunner::apply_updates(self, updates).map_err(FleetError::from)
    }
    fn read_labels(&self, sites: &[usize]) -> Vec<u8> {
        ShardRunner::read_labels(self, sites)
    }
    fn snapshot(&self) -> Vec<u8> {
        ShardRunner::snapshot(self)
    }
    fn plane_energy(&self) -> f64 {
        ShardRunner::plane_energy(self)
    }
}

/// The demo singleton term, shared verbatim with the `mogs-ckpt` crash
/// harness: a fixed pseudo-random preference per `(site, label)`,
/// identical in every process that builds it.
fn demo_singleton(site: usize, label: Label) -> f64 {
    let mix = site
        .wrapping_mul(7)
        .wrapping_add(usize::from(label.value()).wrapping_mul(13));
    (mix % 11) as f64 * 0.17
}

/// The sampler kernel `spec` describes.
pub(crate) fn sampler_for(spec: &FleetSpec) -> FleetResult<BackendSampler> {
    // The unit-model temperature matches each workload's established
    // setup: the crash harness hands the RSU pool its energy bound, the
    // stereo experiments the paper's sampling temperature.
    let temperature = match spec.workload {
        Workload::Demo { .. } => DEMO_MAX_ENERGY,
        Workload::Stereo { .. } => StereoConfig::default().temperature,
    };
    BackendSampler::try_new(spec.backend.to_engine(), temperature).map_err(FleetError::from)
}

/// The kernel name a checkpoint binding records for `spec`.
pub(crate) fn kernel_name(spec: &FleetSpec) -> FleetResult<String> {
    use mogs_gibbs::sampler::LabelSampler;
    Ok(sampler_for(spec)?.name().to_string())
}

fn demo_job_spec(
    spec: &FleetSpec,
    width: usize,
    height: usize,
    labels: u16,
) -> FleetResult<JobSpec<impl SingletonPotential + 'static, BackendSampler>> {
    let mrf = MarkovRandomField::builder(Grid2D::new(width, height), LabelSpace::scalar(labels))
        .prior(SmoothnessPrior::potts(0.6))
        .singleton(demo_singleton)
        .build();
    JobSpec::builder(mrf, sampler_for(spec)?)
        .iterations(spec.iterations)
        .threads(spec.threads)
        .seed(spec.seed)
        .burn_in(spec.burn_in)
        .track_modes(true)
        .record_energy(true)
        .build()
        .map_err(FleetError::from)
}

fn stereo_job_spec(
    spec: &FleetSpec,
    width: usize,
    height: usize,
    disparity: u8,
    noise_sigma: f64,
    scene_seed: u64,
) -> FleetResult<JobSpec<mogs_vision::stereo::DisparitySingleton, BackendSampler>> {
    let scene = synthetic::stereo_pair(width, height, disparity, noise_sigma, scene_seed);
    let app = StereoMatching::new(&scene.left, &scene.right, StereoConfig::default());
    let mut job = app.engine_job(sampler_for(spec)?, spec.iterations, spec.seed);
    // The fleet spec owns the chunking and burn-in; the stereo config's
    // defaults cover the field itself (weights, temperature, 5 labels).
    job.threads = spec.threads;
    job.burn_in = spec.burn_in;
    Ok(JobSpec::from(job))
}

/// Builds the shard of `spec` pinned to `cells` — the worker-side (and
/// coordinator-mirror) entry point.
///
/// # Errors
///
/// [`FleetError::Spec`] when the spec is invalid or engine admission
/// rejects it (which covers out-of-range cells too).
pub fn build_shard(spec: &FleetSpec, cells: &[(usize, usize)]) -> FleetResult<Box<dyn ShardExec>> {
    spec.validate()?;
    match spec.workload {
        Workload::Demo {
            width,
            height,
            labels,
        } => {
            let job = demo_job_spec(spec, width, height, labels)?;
            Ok(Box::new(ShardRunner::try_new(job, cells)?))
        }
        Workload::Stereo {
            width,
            height,
            disparity,
            noise_sigma,
            scene_seed,
        } => {
            let job = stereo_job_spec(spec, width, height, disparity, noise_sigma, scene_seed)?;
            Ok(Box::new(ShardRunner::try_new(job, cells)?))
        }
    }
}

/// Runs `spec` to completion on an in-process engine — the reference a
/// fleet run must be bit-identical to.
///
/// # Errors
///
/// [`FleetError::Spec`] on admission failure or an engine-side error.
pub fn run_in_process(spec: &FleetSpec) -> FleetResult<JobOutput> {
    spec.validate()?;
    let engine = Engine::with_default_config();
    let handle = match spec.workload {
        Workload::Demo {
            width,
            height,
            labels,
        } => engine.submit(demo_job_spec(spec, width, height, labels)?),
        Workload::Stereo {
            width,
            height,
            disparity,
            noise_sigma,
            scene_seed,
        } => engine.submit(stereo_job_spec(
            spec,
            width,
            height,
            disparity,
            noise_sigma,
            scene_seed,
        )?),
    };
    let output = handle
        .map_err(FleetError::from)?
        .wait_result()
        .map_err(FleetError::from)?;
    engine.shutdown();
    Ok(output)
}

/// The job's phase decomposition, as both the engine and the audit see
/// it: the sparse interference topology, the schedule certificate the
/// engine admits the job under, and every `(group, chunk)` cell with
/// its sites in reference order.
pub struct FleetStructure {
    /// Sparse interference topology of the workload's grid.
    pub topology: Topology,
    /// The certificate shards are verified against.
    pub certificate: ScheduleCertificate,
    /// `cells[group][chunk]` — the sites of one cell, in the order their
    /// draws consume the chunk RNG stream.
    pub cells: Vec<Vec<Vec<usize>>>,
    /// Total sites in the plane.
    pub sites: usize,
    /// Labels in the label space.
    pub labels: usize,
    /// The spec's deterministic chunk count.
    pub threads: usize,
}

impl FleetStructure {
    /// Derives the structure of `spec` and proves the certificate clean
    /// with the independent verifier.
    ///
    /// # Errors
    ///
    /// [`FleetError::Spec`] on admission failure;
    /// [`FleetError::Partition`] if the certificate fails independent
    /// verification (a workspace bug, not a caller error — surfaced as
    /// a typed refusal rather than trusted).
    pub fn of(spec: &FleetSpec) -> FleetResult<Self> {
        // Any single valid cell admits the job; (0, 0) always exists.
        let probe = build_shard(spec, &[(0, 0)])?;
        let groups = probe.group_count();
        let mut cells = Vec::with_capacity(groups);
        let mut classes = Vec::with_capacity(groups);
        for g in 0..groups {
            let chunk_lists: Vec<Vec<usize>> = (0..probe.chunks_in_group(g))
                .map(|c| probe.cell_sites(g, c))
                .collect();
            classes.push(chunk_lists.concat());
            cells.push(chunk_lists);
        }
        let (width, height) = spec.workload.dims();
        let topology = Topology::from_grid(Grid2D::new(width, height), Neighborhood::FirstOrder);
        let certificate = ScheduleCertificate::from_classes(
            &topology,
            classes,
            Chunking::Uniform {
                threads: spec.threads,
            },
        );
        let report = verify_certificate(&topology, &certificate);
        if !report.is_clean() {
            return Err(FleetError::Partition {
                reason: format!(
                    "schedule certificate failed verification: {}",
                    report.summary()
                ),
            });
        }
        Ok(FleetStructure {
            topology,
            certificate,
            cells,
            sites: probe.site_count(),
            labels: probe.label_count(),
            threads: spec.threads,
        })
    }

    /// Number of color groups.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.cells.len()
    }

    /// Cells across all groups.
    #[must_use]
    pub fn total_cells(&self) -> usize {
        self.cells.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::BackendKind;

    fn demo_spec() -> FleetSpec {
        FleetSpec {
            workload: Workload::Demo {
                width: 8,
                height: 6,
                labels: 3,
            },
            backend: BackendKind::Softmax,
            iterations: 4,
            threads: 3,
            seed: 0xABCD,
            burn_in: 1,
        }
    }

    #[test]
    fn structure_matches_engine_decomposition() {
        let spec = demo_spec();
        let structure = FleetStructure::of(&spec).expect("structure derives");
        assert_eq!(structure.sites, 48);
        assert_eq!(structure.labels, 3);
        // First-order grid: 2-color checkerboard.
        assert_eq!(structure.group_count(), 2);
        let covered: usize = structure
            .cells
            .iter()
            .flat_map(|g| g.iter().map(Vec::len))
            .sum();
        assert_eq!(covered, 48, "cells must cover the plane exactly");
        assert_eq!(structure.certificate.sites(), 48);
    }

    #[test]
    fn erased_shard_matches_reference_engine() {
        let spec = demo_spec();
        let structure = FleetStructure::of(&spec).expect("structure derives");
        let all_cells: Vec<(usize, usize)> = (0..structure.group_count())
            .flat_map(|g| (0..structure.cells[g].len()).map(move |c| (g, c)))
            .collect();
        let mut exec = build_shard(&spec, &all_cells).expect("shard admits");
        for sweep in 0..spec.iterations {
            for group in 0..exec.group_count() {
                exec.run_phase(sweep, group);
            }
        }
        let reference = run_in_process(&spec).expect("engine runs");
        let reference_labels: Vec<u8> = reference.labels.iter().map(|l| l.value()).collect();
        assert_eq!(
            exec.snapshot(),
            reference_labels,
            "erased path must stay bit-identical"
        );
        // The erased energy hook reproduces the engine's final trace entry.
        let last = reference.energy_trace.last().expect("trace recorded");
        assert!((exec.plane_energy() - last).abs() == 0.0);
    }

    #[test]
    fn stereo_workload_builds_and_runs() {
        let spec = FleetSpec {
            workload: Workload::Stereo {
                width: 12,
                height: 10,
                disparity: 2,
                noise_sigma: 2.0,
                scene_seed: 17,
            },
            backend: BackendKind::Rsu { replicas: 2 },
            iterations: 3,
            threads: 2,
            seed: 7,
            burn_in: 1,
        };
        let structure = FleetStructure::of(&spec).expect("structure derives");
        assert_eq!(structure.sites, 120);
        assert_eq!(structure.labels, 5);
        let out = run_in_process(&spec).expect("engine runs stereo");
        assert_eq!(out.iterations_run, 3);
        assert_eq!(out.energy_trace.len(), 3);
    }
}

//! `mogs-fleet`: an elastic multi-process shard coordinator for MOGS
//! Gibbs-sampling jobs that survives worker death via checkpoint
//! migration.
//!
//! The engine (`mogs-engine`) runs one job inside one process. This
//! crate scales the same job across *processes*: a coordinator
//! partitions the plane into chunk-aligned shards (audited by
//! `mogs-audit`), drives N spawned workers over length-prefixed
//! TCP/Unix-socket framing, and — the point of the crate — keeps the
//! job's output **bit-identical** to a single-process engine run no
//! matter how many workers die along the way.
//!
//! # Layers
//!
//! - [`spec`]: the process-portable job description ([`FleetSpec`]) —
//!   everything a worker needs to rebuild its shard from a single
//!   message.
//! - [`exec`]: shard construction ([`build_shard`]) on top of
//!   `mogs_engine::ShardRunner`, plus the in-process reference path
//!   ([`run_in_process`]) the repro harness compares against.
//! - [`partition`]: chunk-aligned greedy partitioning with halo sets,
//!   independently re-proved by `mogs_audit::verify_sharding`.
//! - [`wire`]: the framed message protocol (hex-encoded integers and
//!   f64 bit patterns — exact through the vendored JSON layer).
//! - [`worker`] / [`coordinator`]: the two protocol ends. Workers are
//!   deliberately stateless-on-failure; all recovery decisions live in
//!   the coordinator ([`run_fleet`]).
//! - [`error`]: the typed [`FleetError`] taxonomy; nothing on the wire
//!   path unwraps.
//!
//! # Quick start
//!
//! ```
//! use mogs_fleet::{run_fleet, FleetConfig, FleetSpec, Workload, BackendKind};
//!
//! let spec = FleetSpec {
//!     workload: Workload::Demo { width: 6, height: 4, labels: 3 },
//!     backend: BackendKind::Softmax,
//!     iterations: 4,
//!     threads: 2,
//!     seed: 0xF1EE7,
//!     burn_in: 1,
//! };
//! let output = run_fleet(&spec, &FleetConfig::new(2)).unwrap();
//! let reference = mogs_fleet::run_in_process(&spec).unwrap();
//! assert!(output.bit_identical_to(&reference));
//! ```

pub mod coordinator;
pub mod error;
pub mod exec;
pub mod partition;
pub mod spec;
pub mod wire;
pub mod worker;

pub use coordinator::{
    run_fleet, shard_key, ChaosPlan, FleetCheckpoint, FleetConfig, FleetOutput, KillAt, Launcher,
    TransportKind, COORD_KEY,
};
pub use error::{FleetError, FleetResult};
pub use exec::{build_shard, run_in_process, FleetStructure, ShardExec};
pub use partition::{partition, Partition, ShardAssignment};
pub use spec::{BackendKind, FleetSpec, Workload};
pub use worker::{maybe_run_worker, worker_main, WORKER_ENV};

//! Chunk-aligned shard partitioning with audited halos.
//!
//! The partitioner assigns whole `(group, chunk)` cells — never split
//! sites — to shards, greedy least-loaded in deterministic cell order,
//! so every worker reproduces exactly the chunk RNG streams the full
//! engine would consume (see `mogs_engine::shard` for why splitting a
//! chunk would silently reseed every draw).
//!
//! The output is never trusted: every partition is handed to
//! [`mogs_audit::verify_sharding`], which independently re-proves
//! exact coverage, chunk alignment, and halo completeness against the
//! raw topology before the coordinator may admit a single worker. A
//! partitioner bug is a typed [`FleetError::Partition`], not a silent
//! divergence three sweeps later.

use mogs_audit::verify_sharding;
use mogs_ckpt::fnv1a;
use mogs_engine::ShardBinding;

use crate::error::{FleetError, FleetResult};
use crate::exec::FleetStructure;

/// One shard's assignment: its cells, the sites it owns, and the halo
/// it must import.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAssignment {
    /// Owned `(group, chunk)` cells, in deterministic lexicographic
    /// order.
    pub cells: Vec<(usize, usize)>,
    /// Owned sites, ascending.
    pub owned: Vec<usize>,
    /// Sites this shard reads but does not own — exactly the cross-shard
    /// adjacency of `owned`, ascending.
    pub halo_in: Vec<usize>,
}

impl ShardAssignment {
    /// The shard-identity binding checkpoints of this shard carry.
    #[must_use]
    pub fn binding(&self, shard: usize, of: usize) -> ShardBinding {
        let mut bytes = Vec::with_capacity(self.owned.len() * 8);
        for &site in &self.owned {
            bytes.extend_from_slice(&(site as u64).to_le_bytes());
        }
        ShardBinding {
            shard,
            of,
            owned: self.owned.len(),
            sites_digest: fnv1a(&bytes),
        }
    }
}

/// A complete, audited partition of one job's plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Per-shard assignments.
    pub shards: Vec<ShardAssignment>,
    /// Owner shard per site.
    pub owner: Vec<usize>,
}

impl Partition {
    /// Shards in the partition.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the partition is empty (it never is after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }
}

/// Splits the structure's cells into `shards` shards: greedy
/// least-loaded by owned-site count over cells in `(group, chunk)`
/// lexicographic order, ties to the lowest shard index. Deterministic
/// by construction — every coordinator (and every restart) derives the
/// same partition from the same spec.
///
/// The result is verified by [`mogs_audit::verify_sharding`] before it
/// is returned.
///
/// # Errors
///
/// [`FleetError::Partition`] when `shards` is zero or exceeds the cell
/// count (a shard may not be empty), or when the independent audit
/// rejects the partition.
pub fn partition(structure: &FleetStructure, shards: usize) -> FleetResult<Partition> {
    let total_cells = structure.total_cells();
    if shards == 0 {
        return Err(FleetError::Partition {
            reason: "a fleet needs at least one shard".to_string(),
        });
    }
    if shards > total_cells {
        return Err(FleetError::Partition {
            reason: format!(
                "{shards} shards over {total_cells} cells would leave a shard empty; \
                 lower the worker count or raise the thread count"
            ),
        });
    }
    let mut assignments = vec![
        ShardAssignment {
            cells: Vec::new(),
            owned: Vec::new(),
            halo_in: Vec::new(),
        };
        shards
    ];
    let mut load = vec![0usize; shards];
    for (group, chunks) in structure.cells.iter().enumerate() {
        for (chunk, sites) in chunks.iter().enumerate() {
            let target = (0..shards)
                .min_by_key(|&s| (load[s], s))
                .unwrap_or_default();
            load[target] += sites.len();
            assignments[target].cells.push((group, chunk));
            assignments[target].owned.extend_from_slice(sites);
        }
    }
    let mut owner = vec![usize::MAX; structure.sites];
    for (shard, assignment) in assignments.iter_mut().enumerate() {
        assignment.owned.sort_unstable();
        for &site in &assignment.owned {
            owner[site] = shard;
        }
    }
    for (shard, assignment) in assignments.iter_mut().enumerate() {
        let mut halo: Vec<usize> = assignment
            .owned
            .iter()
            .flat_map(|&site| structure.topology.neighbors(site).iter().copied())
            .filter(|&n| owner[n] != shard)
            .collect();
        halo.sort_unstable();
        halo.dedup();
        assignment.halo_in = halo;
    }
    let shard_sites: Vec<Vec<usize>> = assignments.iter().map(|a| a.owned.clone()).collect();
    let halos: Vec<Vec<usize>> = assignments.iter().map(|a| a.halo_in.clone()).collect();
    let report = verify_sharding(
        &structure.topology,
        &structure.certificate,
        &shard_sites,
        &halos,
    );
    if !report.is_clean() {
        return Err(FleetError::Partition {
            reason: format!(
                "sharding audit rejected the partition: {}",
                report.summary()
            ),
        });
    }
    Ok(Partition {
        shards: assignments,
        owner,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BackendKind, FleetSpec, Workload};

    fn structure() -> FleetStructure {
        FleetStructure::of(&FleetSpec {
            workload: Workload::Demo {
                width: 8,
                height: 6,
                labels: 3,
            },
            backend: BackendKind::Softmax,
            iterations: 4,
            threads: 3,
            seed: 1,
            burn_in: 1,
        })
        .expect("structure derives")
    }

    #[test]
    fn partitions_are_exact_for_every_width() {
        let s = structure();
        for n in 1..=s.total_cells() {
            let p = partition(&s, n).expect("audited partition");
            assert_eq!(p.len(), n);
            let mut all: Vec<usize> = p.shards.iter().flat_map(|a| a.owned.clone()).collect();
            all.sort_unstable();
            assert_eq!(
                all,
                (0..s.sites).collect::<Vec<_>>(),
                "exact coverage at n={n}"
            );
            assert!(p.owner.iter().all(|&o| o < n));
        }
    }

    #[test]
    fn single_shard_has_no_halo() {
        let s = structure();
        let p = partition(&s, 1).expect("partition");
        assert!(p.shards[0].halo_in.is_empty());
        assert_eq!(p.shards[0].owned.len(), s.sites);
    }

    #[test]
    fn halos_are_cross_shard_adjacency() {
        let s = structure();
        let p = partition(&s, 3).expect("partition");
        for (i, a) in p.shards.iter().enumerate() {
            for &h in &a.halo_in {
                assert_ne!(p.owner[h], i, "halo site owned by the shard itself");
                assert!(
                    s.topology.neighbors(h).iter().any(|&n| p.owner[n] == i),
                    "halo site {h} borders no owned site of shard {i}"
                );
            }
        }
    }

    #[test]
    fn over_partitioning_is_refused() {
        let s = structure();
        let err = partition(&s, s.total_cells() + 1).expect_err("too many shards");
        assert_eq!(err.variant(), "partition");
        let err = partition(&s, 0).expect_err("zero shards");
        assert_eq!(err.variant(), "partition");
    }

    #[test]
    fn partition_is_deterministic_and_balanced() {
        let s = structure();
        let a = partition(&s, 3).expect("first");
        let b = partition(&s, 3).expect("second");
        assert_eq!(a, b, "same structure must partition identically");
        let loads: Vec<usize> = a.shards.iter().map(|x| x.owned.len()).collect();
        let max = loads.iter().max().expect("nonempty");
        let min = loads.iter().min().expect("nonempty");
        // Greedy least-loaded over near-equal cells: spread stays within
        // one cell's worth of sites.
        let cell_max = s
            .cells
            .iter()
            .flat_map(|g| g.iter().map(Vec::len))
            .max()
            .expect("cells exist");
        assert!(
            max - min <= cell_max,
            "loads {loads:?} spread past one cell"
        );
    }

    #[test]
    fn bindings_pin_the_owned_site_list() {
        let s = structure();
        let p = partition(&s, 2).expect("partition");
        let b0 = p.shards[0].binding(0, 2);
        let b1 = p.shards[1].binding(1, 2);
        assert_eq!(b0.of, 2);
        assert_eq!(b0.owned, p.shards[0].owned.len());
        assert_ne!(
            b0.sites_digest, b1.sites_digest,
            "different site lists must digest differently"
        );
        assert_eq!(
            p.shards[0].binding(0, 2),
            b0,
            "digest must be deterministic"
        );
    }
}

//! The serializable fleet job description.
//!
//! A [`FleetSpec`] is everything a worker process needs to rebuild its
//! shard of the job *exactly* — workload, backend, sweep budget,
//! chunking, seed. It crosses the wire in every `Assign` message and is
//! stored as checkpoint `meta`, so the encoding follows the workspace's
//! envelope discipline: `u64` values travel as hex strings (the vendored
//! JSON parser routes numbers through `f64`, which cannot carry a full
//! 64-bit seed), `f64` values travel as their IEEE-754 bit patterns
//! (nothing is allowed to round), and only provably-small integers ride
//! as plain JSON numbers.
//!
//! Workloads are *descriptions*, not data: both the demo field (the
//! `mogs-ckpt` crash-harness Potts model) and the synthetic stereo pair
//! are deterministic functions of their parameters, so two processes
//! that parse the same spec build bit-identical MRFs without shipping
//! pixel planes around.

use serde::de::{self, Parser};
use serde::Serialize;

use crate::error::{FleetError, FleetResult};

/// Which sampler family the fleet job runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Exact software Gibbs (softmax of the conditionals).
    Softmax,
    /// Emulated RSU-G pool.
    Rsu {
        /// Units in the pool.
        replicas: usize,
    },
}

impl BackendKind {
    /// The engine-side backend selector.
    #[must_use]
    pub fn to_engine(self) -> mogs_engine::Backend {
        match self {
            BackendKind::Softmax => mogs_engine::Backend::Softmax,
            BackendKind::Rsu { replicas } => mogs_engine::Backend::RsuG { replicas },
        }
    }
}

/// A deterministic workload: parameters from which every process builds
/// the same MRF.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// The `mogs-ckpt` crash-harness field: a Potts prior plus a fixed
    /// pseudo-random singleton preference per `(site, label)`.
    Demo {
        /// Grid width.
        width: usize,
        /// Grid height.
        height: usize,
        /// Labels in the scalar label space.
        labels: u16,
    },
    /// Synthetic stereo matching (paper §8.1): a rendered rectified pair
    /// with a foreground square at known disparity.
    Stereo {
        /// Image width.
        width: usize,
        /// Image height.
        height: usize,
        /// Foreground disparity in pixels (`1..=4`).
        disparity: u8,
        /// Gaussian noise added to the rendered pair.
        noise_sigma: f64,
        /// Seed of the rendered scene (not the sampler).
        scene_seed: u64,
    },
}

impl Workload {
    /// Grid dimensions `(width, height)`.
    #[must_use]
    pub fn dims(&self) -> (usize, usize) {
        match *self {
            Workload::Demo { width, height, .. } | Workload::Stereo { width, height, .. } => {
                (width, height)
            }
        }
    }

    /// Sites in the plane.
    #[must_use]
    pub fn sites(&self) -> usize {
        let (w, h) = self.dims();
        w * h
    }

    /// Labels in the label space.
    #[must_use]
    pub fn label_count(&self) -> usize {
        match *self {
            Workload::Demo { labels, .. } => usize::from(labels),
            // Stereo uses the paper's 5-disparity space.
            Workload::Stereo { .. } => 5,
        }
    }
}

/// The complete, self-contained description of one fleet job.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// What to infer.
    pub workload: Workload,
    /// Which sampler family to run.
    pub backend: BackendKind,
    /// Full sweep budget.
    pub iterations: usize,
    /// Deterministic chunk count (feeds the chunk RNG streams; the
    /// partitioner splits along these chunks).
    pub threads: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Burn-in prefix discarded before mode tracking.
    pub burn_in: usize,
}

impl FleetSpec {
    /// Structural validation: everything checkable without building the
    /// field. Engine admission re-checks the rest per shard.
    ///
    /// # Errors
    ///
    /// [`FleetError::Spec`] naming the violated constraint.
    pub fn validate(&self) -> FleetResult<()> {
        let spec = |reason: String| FleetError::Spec { reason };
        let (w, h) = self.workload.dims();
        if w == 0 || h == 0 {
            return Err(spec(format!("workload grid {w}x{h} has no sites")));
        }
        if self.iterations == 0 {
            return Err(spec("iterations must be at least 1".to_string()));
        }
        if self.threads == 0 {
            return Err(spec("threads must be at least 1".to_string()));
        }
        match self.workload {
            Workload::Demo { labels, .. } => {
                if labels == 0 {
                    return Err(spec("demo label space must be non-empty".to_string()));
                }
            }
            Workload::Stereo {
                disparity,
                noise_sigma,
                ..
            } => {
                if !(1..=4).contains(&disparity) {
                    return Err(spec(format!(
                        "stereo disparity {disparity} outside 1..=4 (5-label space)"
                    )));
                }
                if !(noise_sigma.is_finite() && noise_sigma >= 0.0) {
                    return Err(spec(format!(
                        "stereo noise sigma {noise_sigma} must be finite and non-negative"
                    )));
                }
            }
        }
        if let BackendKind::Rsu { replicas } = self.backend {
            if replicas == 0 {
                return Err(spec("RSU pool needs at least one replica".to_string()));
            }
        }
        Ok(())
    }

    /// Encodes the spec as its wire/meta JSON text.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(160);
        self.write_json(&mut out);
        out
    }

    pub(crate) fn write_json(&self, out: &mut String) {
        out.push_str("{\"workload\":");
        match &self.workload {
            Workload::Demo {
                width,
                height,
                labels,
            } => {
                out.push_str("{\"kind\":\"demo\",\"width\":");
                width.serialize_json(out);
                out.push_str(",\"height\":");
                height.serialize_json(out);
                out.push_str(",\"labels\":");
                labels.serialize_json(out);
                out.push('}');
            }
            Workload::Stereo {
                width,
                height,
                disparity,
                noise_sigma,
                scene_seed,
            } => {
                out.push_str("{\"kind\":\"stereo\",\"width\":");
                width.serialize_json(out);
                out.push_str(",\"height\":");
                height.serialize_json(out);
                out.push_str(",\"disparity\":");
                disparity.serialize_json(out);
                out.push_str(&format!(
                    ",\"noise_sigma\":\"{:016x}\"",
                    noise_sigma.to_bits()
                ));
                out.push_str(&format!(",\"scene_seed\":\"{scene_seed:x}\""));
                out.push('}');
            }
        }
        out.push_str(",\"backend\":");
        match self.backend {
            BackendKind::Softmax => out.push_str("{\"kind\":\"softmax\"}"),
            BackendKind::Rsu { replicas } => {
                out.push_str("{\"kind\":\"rsu\",\"replicas\":");
                replicas.serialize_json(out);
                out.push('}');
            }
        }
        out.push_str(",\"iterations\":");
        self.iterations.serialize_json(out);
        out.push_str(",\"threads\":");
        self.threads.serialize_json(out);
        out.push_str(&format!(",\"seed\":\"{:x}\"", self.seed));
        out.push_str(",\"burn_in\":");
        self.burn_in.serialize_json(out);
        out.push('}');
    }

    /// Parses a spec from its JSON text and validates it.
    ///
    /// # Errors
    ///
    /// [`FleetError::Protocol`] on malformed JSON, [`FleetError::Spec`]
    /// on a structurally invalid spec.
    pub fn parse(input: &str) -> FleetResult<Self> {
        let mut parser = Parser::new(input);
        let spec = Self::parse_value(&mut parser).map_err(protocol)?;
        parser.expect_end().map_err(protocol)?;
        spec.validate()?;
        Ok(spec)
    }

    pub(crate) fn parse_value(parser: &mut Parser<'_>) -> Result<Self, de::Error> {
        parser.expect_char('{')?;
        let mut workload = None;
        let mut backend = None;
        let mut iterations = None;
        let mut threads = None;
        let mut seed = None;
        let mut burn_in = None;
        if !parser.consume_char('}') {
            loop {
                let key = parser.parse_string()?;
                parser.expect_char(':')?;
                match key.as_str() {
                    "workload" => workload = Some(parse_workload(parser)?),
                    "backend" => backend = Some(parse_backend(parser)?),
                    "iterations" => iterations = Some(usize::deserialize_json(parser)?),
                    "threads" => threads = Some(usize::deserialize_json(parser)?),
                    "seed" => seed = Some(parse_hex_u64(parser, "seed")?),
                    "burn_in" => burn_in = Some(usize::deserialize_json(parser)?),
                    _ => parser.skip_value()?,
                }
                if !parser.consume_char(',') {
                    break;
                }
            }
            parser.expect_char('}')?;
        }
        Ok(FleetSpec {
            workload: workload.ok_or_else(|| parser.error("spec is missing 'workload'"))?,
            backend: backend.ok_or_else(|| parser.error("spec is missing 'backend'"))?,
            iterations: iterations.ok_or_else(|| parser.error("spec is missing 'iterations'"))?,
            threads: threads.ok_or_else(|| parser.error("spec is missing 'threads'"))?,
            seed: seed.ok_or_else(|| parser.error("spec is missing 'seed'"))?,
            burn_in: burn_in.ok_or_else(|| parser.error("spec is missing 'burn_in'"))?,
        })
    }
}

use serde::Deserialize;

pub(crate) fn protocol(err: de::Error) -> FleetError {
    FleetError::Protocol {
        reason: err.to_string(),
    }
}

/// Parses a `u64` carried as a hex string.
pub(crate) fn parse_hex_u64(parser: &mut Parser<'_>, what: &str) -> Result<u64, de::Error> {
    let text = parser.parse_string()?;
    u64::from_str_radix(&text, 16)
        .map_err(|_| parser.error(&format!("{what} is not a hex u64: {text:?}")))
}

/// Parses an `f64` carried as its IEEE-754 bit pattern in hex.
pub(crate) fn parse_hex_f64(parser: &mut Parser<'_>, what: &str) -> Result<f64, de::Error> {
    parse_hex_u64(parser, what).map(f64::from_bits)
}

fn parse_workload(parser: &mut Parser<'_>) -> Result<Workload, de::Error> {
    parser.expect_char('{')?;
    let mut kind = None;
    let mut width = None;
    let mut height = None;
    let mut labels = None;
    let mut disparity = None;
    let mut noise_sigma = None;
    let mut scene_seed = None;
    if !parser.consume_char('}') {
        loop {
            let key = parser.parse_string()?;
            parser.expect_char(':')?;
            match key.as_str() {
                "kind" => kind = Some(parser.parse_string()?),
                "width" => width = Some(usize::deserialize_json(parser)?),
                "height" => height = Some(usize::deserialize_json(parser)?),
                "labels" => labels = Some(u16::deserialize_json(parser)?),
                "disparity" => disparity = Some(u8::deserialize_json(parser)?),
                "noise_sigma" => noise_sigma = Some(parse_hex_f64(parser, "noise_sigma")?),
                "scene_seed" => scene_seed = Some(parse_hex_u64(parser, "scene_seed")?),
                _ => parser.skip_value()?,
            }
            if !parser.consume_char(',') {
                break;
            }
        }
        parser.expect_char('}')?;
    }
    let kind = kind.ok_or_else(|| parser.error("workload is missing 'kind'"))?;
    let width = width.ok_or_else(|| parser.error("workload is missing 'width'"))?;
    let height = height.ok_or_else(|| parser.error("workload is missing 'height'"))?;
    match kind.as_str() {
        "demo" => Ok(Workload::Demo {
            width,
            height,
            labels: labels.ok_or_else(|| parser.error("demo workload is missing 'labels'"))?,
        }),
        "stereo" => Ok(Workload::Stereo {
            width,
            height,
            disparity: disparity
                .ok_or_else(|| parser.error("stereo workload is missing 'disparity'"))?,
            noise_sigma: noise_sigma
                .ok_or_else(|| parser.error("stereo workload is missing 'noise_sigma'"))?,
            scene_seed: scene_seed
                .ok_or_else(|| parser.error("stereo workload is missing 'scene_seed'"))?,
        }),
        other => Err(parser.error(&format!("unknown workload kind {other:?}"))),
    }
}

fn parse_backend(parser: &mut Parser<'_>) -> Result<BackendKind, de::Error> {
    parser.expect_char('{')?;
    let mut kind = None;
    let mut replicas = None;
    if !parser.consume_char('}') {
        loop {
            let key = parser.parse_string()?;
            parser.expect_char(':')?;
            match key.as_str() {
                "kind" => kind = Some(parser.parse_string()?),
                "replicas" => replicas = Some(usize::deserialize_json(parser)?),
                _ => parser.skip_value()?,
            }
            if !parser.consume_char(',') {
                break;
            }
        }
        parser.expect_char('}')?;
    }
    match kind.as_deref() {
        Some("softmax") => Ok(BackendKind::Softmax),
        Some("rsu") => Ok(BackendKind::Rsu {
            replicas: replicas.ok_or_else(|| parser.error("rsu backend is missing 'replicas'"))?,
        }),
        Some(other) => Err(parser.error(&format!("unknown backend kind {other:?}"))),
        None => Err(parser.error("backend is missing 'kind'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> FleetSpec {
        FleetSpec {
            workload: Workload::Demo {
                width: 12,
                height: 9,
                labels: 5,
            },
            backend: BackendKind::Rsu { replicas: 4 },
            iterations: 36,
            threads: 3,
            seed: 0x5EED_0C0A,
            burn_in: 6,
        }
    }

    fn stereo() -> FleetSpec {
        FleetSpec {
            workload: Workload::Stereo {
                width: 24,
                height: 18,
                disparity: 2,
                noise_sigma: 2.0,
                scene_seed: 17,
            },
            backend: BackendKind::Softmax,
            iterations: 20,
            threads: 4,
            seed: u64::MAX - 3,
            burn_in: 6,
        }
    }

    #[test]
    fn round_trips_both_workloads() {
        for spec in [demo(), stereo()] {
            let text = spec.encode();
            let back = FleetSpec::parse(&text).expect("round trip parses");
            assert_eq!(back, spec, "round trip must be lossless: {text}");
        }
    }

    #[test]
    fn seed_above_f64_precision_survives() {
        // 2^53 + 1 is exactly the value a number-typed seed would round.
        let mut spec = demo();
        spec.seed = (1 << 53) + 1;
        let back = FleetSpec::parse(&spec.encode()).expect("parses");
        assert_eq!(back.seed, (1 << 53) + 1);
    }

    #[test]
    fn noise_sigma_is_bit_exact() {
        let mut spec = stereo();
        if let Workload::Stereo { noise_sigma, .. } = &mut spec.workload {
            *noise_sigma = 0.1 + 0.2; // a value with no short decimal form
        }
        let back = FleetSpec::parse(&spec.encode()).expect("parses");
        let Workload::Stereo { noise_sigma, .. } = back.workload else {
            panic!("wrong workload");
        };
        assert_eq!(noise_sigma.to_bits(), (0.1f64 + 0.2).to_bits());
    }

    #[test]
    fn invalid_specs_are_refused() {
        let mut bad = demo();
        bad.iterations = 0;
        assert!(FleetSpec::parse(&bad.encode()).is_err(), "zero iterations");
        let mut bad = stereo();
        if let Workload::Stereo { disparity, .. } = &mut bad.workload {
            *disparity = 9;
        }
        assert!(FleetSpec::parse(&bad.encode()).is_err(), "bad disparity");
        assert!(
            FleetSpec::parse("{\"workload\":{\"kind\":\"demo\"}}").is_err(),
            "missing fields"
        );
        assert!(FleetSpec::parse("not json").is_err(), "garbage");
    }

    #[test]
    fn unknown_keys_are_skipped_for_forward_compat() {
        let mut text = demo().encode();
        text.insert_str(1, "\"future\":{\"nested\":[1,2,3]},");
        let back = FleetSpec::parse(&text).expect("tolerates unknown keys");
        assert_eq!(back, demo());
    }
}

//! Length-prefixed message framing over TCP or Unix-domain sockets.
//!
//! Every frame is an 8-digit ASCII-hex byte length followed by exactly
//! that many bytes of UTF-8 JSON. The prefix is human-greppable in a
//! packet capture, has no endianness, and makes truncation detectable:
//! a reader that times out mid-frame knows the stream is torn and the
//! peer condemned — frames are never resynchronized, because a worker
//! whose stream desynced is indistinguishable from a dead one and is
//! migrated the same way.
//!
//! Payloads follow the workspace envelope discipline (see
//! [`crate::spec`]): hex strings for `u64`, IEEE-754 bit patterns for
//! `f64`, plain numbers only for provably-small integers. Label planes
//! travel as hex strings, two digits per site, so a 10⁴-site plane is a
//! 20 kB frame rather than a 50 kB JSON array.
//!
//! Every function on the wire path returns [`FleetResult`] — enforced
//! by the `fleet-wire-error` audit lint rule over `send_*`/`recv_*`/
//! `rpc_*` names.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

use serde::de::Parser;
use serde::{Deserialize, Serialize};

use crate::error::{FleetError, FleetResult};
use crate::spec::{parse_hex_u64, protocol, FleetSpec};

/// Upper bound on one frame's payload, far above any plane this
/// workspace samples; anything larger is a corrupt prefix.
pub const FRAME_LIMIT: usize = 64 << 20;

/// One established coordinator↔worker stream.
#[derive(Debug)]
pub enum Conn {
    /// Loopback TCP.
    Tcp(TcpStream),
    /// Unix-domain socket.
    Unix(UnixStream),
}

impl Conn {
    /// Applies a read timeout to the underlying socket (`None` blocks
    /// forever).
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] if the socket rejects the option.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> FleetResult<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(timeout),
            Conn::Unix(s) => s.set_read_timeout(timeout),
        }
        .map_err(|e| FleetError::io("setting read timeout", e))
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Coordinator → worker messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ToWorker {
    /// (Re)admits a shard: build the job, pin the cells, seat the plane,
    /// replay the completed phases of the resume sweep.
    Assign {
        /// The full job description.
        spec: FleetSpec,
        /// Owned `(group, chunk)` cells.
        cells: Vec<(usize, usize)>,
        /// Sweep-boundary plane to seat; `None` keeps the admission
        /// plane (fresh start only).
        plane: Option<Vec<u8>>,
        /// First sweep the shard runs after (re)admission.
        resume_sweep: usize,
        /// Per-group update logs of the resume sweep's completed phases:
        /// the shard runs its own chunks of group `i`, then applies
        /// `replay[i]`, for each `i` in order.
        replay: Vec<Vec<(usize, u8)>>,
    },
    /// Run one color phase of one sweep.
    Phase {
        /// Sweep index.
        sweep: usize,
        /// Color group index.
        group: usize,
    },
    /// Labels sampled by other shards this phase; no acknowledgement
    /// (stream ordering sequences it before the next `Phase`).
    Halo {
        /// `(site, label)` updates.
        updates: Vec<(usize, u8)>,
    },
    /// Liveness probe.
    Ping {
        /// Echoed verbatim in the `Pong`.
        nonce: u64,
    },
    /// Orderly shutdown; the worker replies `Bye` and exits.
    Finish,
}

/// Worker → coordinator messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ToCoordinator {
    /// The `Assign` was admitted and caught up.
    AssignOk {
        /// Sites the shard owns (sanity echo).
        owned: usize,
    },
    /// One phase completed; `updates` covers every owned site of the
    /// group.
    PhaseDone {
        /// Sweep index, echoed.
        sweep: usize,
        /// Group index, echoed.
        group: usize,
        /// `(site, label)` for each owned site of the group.
        updates: Vec<(usize, u8)>,
    },
    /// Liveness reply.
    Pong {
        /// The probe's nonce.
        nonce: u64,
    },
    /// The worker hit a fatal error and is about to exit (best-effort
    /// courtesy; the coordinator treats the death itself as truth).
    Fault {
        /// The worker-side failure, verbatim.
        reason: String,
    },
    /// Orderly shutdown acknowledgement.
    Bye,
}

/// Encodes a label plane as hex, two digits per site.
#[must_use]
pub fn encode_plane(labels: &[u8]) -> String {
    let mut out = String::with_capacity(labels.len() * 2);
    for &l in labels {
        out.push_str(&format!("{l:02x}"));
    }
    out
}

/// Decodes a hex label plane.
///
/// # Errors
///
/// [`FleetError::Protocol`] on odd length or a non-hex digit.
pub fn decode_plane(text: &str) -> FleetResult<Vec<u8>> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err(FleetError::Protocol {
            reason: format!("plane hex has odd length {}", bytes.len()),
        });
    }
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in text.as_bytes().chunks_exact(2) {
        let hex = std::str::from_utf8(pair).map_err(|_| FleetError::Protocol {
            reason: "plane hex is not ASCII".to_string(),
        })?;
        let value = u8::from_str_radix(hex, 16).map_err(|_| FleetError::Protocol {
            reason: format!("plane hex contains non-hex pair {hex:?}"),
        })?;
        out.push(value);
    }
    Ok(out)
}

/// Writes one frame: 8-hex-digit length prefix plus payload.
///
/// # Errors
///
/// [`FleetError::Frame`] when the payload exceeds [`FRAME_LIMIT`],
/// [`FleetError::Io`] on a socket failure.
pub fn send_frame(conn: &mut Conn, payload: &str) -> FleetResult<()> {
    if payload.len() > FRAME_LIMIT {
        return Err(FleetError::Frame {
            reason: format!("payload of {} bytes exceeds the frame limit", payload.len()),
        });
    }
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(format!("{:08x}", payload.len()).as_bytes());
    frame.extend_from_slice(payload.as_bytes());
    conn.write_all(&frame)
        .and_then(|()| conn.flush())
        .map_err(|e| FleetError::io("sending frame", e))
}

/// Reads one frame, honouring an optional deadline. A timeout — even
/// mid-frame — returns [`FleetError::Deadline`]; the stream must then
/// be condemned, never reused.
///
/// # Errors
///
/// [`FleetError::Deadline`] past the deadline, [`FleetError::Frame`]
/// for a torn or malformed frame, [`FleetError::Io`] otherwise.
pub fn recv_frame(
    conn: &mut Conn,
    deadline: Option<Duration>,
    rpc: &'static str,
) -> FleetResult<String> {
    conn.set_read_timeout(deadline)?;
    let after_ms = deadline.map_or(0, |d| d.as_millis().min(u128::from(u64::MAX)) as u64);
    let classify = move |e: std::io::Error| match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            FleetError::Deadline { rpc, after_ms }
        }
        std::io::ErrorKind::UnexpectedEof => FleetError::Frame {
            reason: format!("stream closed mid-frame during {rpc}"),
        },
        _ => FleetError::io("receiving frame", e),
    };
    let mut prefix = [0u8; 8];
    conn.read_exact(&mut prefix).map_err(classify)?;
    let prefix = std::str::from_utf8(&prefix).map_err(|_| FleetError::Frame {
        reason: "length prefix is not ASCII hex".to_string(),
    })?;
    let len = usize::from_str_radix(prefix, 16).map_err(|_| FleetError::Frame {
        reason: format!("length prefix {prefix:?} is not hex"),
    })?;
    if len > FRAME_LIMIT {
        return Err(FleetError::Frame {
            reason: format!("declared payload of {len} bytes exceeds the frame limit"),
        });
    }
    let mut payload = vec![0u8; len];
    conn.read_exact(&mut payload).map_err(classify)?;
    String::from_utf8(payload).map_err(|_| FleetError::Frame {
        reason: "payload is not UTF-8".to_string(),
    })
}

fn write_updates(updates: &[(usize, u8)], out: &mut String) {
    updates.serialize_json(out);
}

/// Serializes a coordinator → worker message.
#[must_use]
pub fn encode_to_worker(msg: &ToWorker) -> String {
    let mut out = String::with_capacity(64);
    match msg {
        ToWorker::Assign {
            spec,
            cells,
            plane,
            resume_sweep,
            replay,
        } => {
            out.push_str("{\"t\":\"assign\",\"spec\":");
            spec.write_json(&mut out);
            out.push_str(",\"cells\":");
            cells.serialize_json(&mut out);
            out.push_str(",\"plane\":");
            match plane {
                Some(p) => encode_plane(p).serialize_json(&mut out),
                None => out.push_str("null"),
            }
            out.push_str(",\"resume_sweep\":");
            resume_sweep.serialize_json(&mut out);
            out.push_str(",\"replay\":");
            replay.serialize_json(&mut out);
            out.push('}');
        }
        ToWorker::Phase { sweep, group } => {
            out.push_str("{\"t\":\"phase\",\"sweep\":");
            sweep.serialize_json(&mut out);
            out.push_str(",\"group\":");
            group.serialize_json(&mut out);
            out.push('}');
        }
        ToWorker::Halo { updates } => {
            out.push_str("{\"t\":\"halo\",\"updates\":");
            write_updates(updates, &mut out);
            out.push('}');
        }
        ToWorker::Ping { nonce } => {
            out.push_str(&format!("{{\"t\":\"ping\",\"nonce\":\"{nonce:x}\"}}"));
        }
        ToWorker::Finish => out.push_str("{\"t\":\"finish\"}"),
    }
    out
}

/// Serializes a worker → coordinator message.
#[must_use]
pub fn encode_to_coordinator(msg: &ToCoordinator) -> String {
    let mut out = String::with_capacity(64);
    match msg {
        ToCoordinator::AssignOk { owned } => {
            out.push_str("{\"t\":\"assign_ok\",\"owned\":");
            owned.serialize_json(&mut out);
            out.push('}');
        }
        ToCoordinator::PhaseDone {
            sweep,
            group,
            updates,
        } => {
            out.push_str("{\"t\":\"phase_done\",\"sweep\":");
            sweep.serialize_json(&mut out);
            out.push_str(",\"group\":");
            group.serialize_json(&mut out);
            out.push_str(",\"updates\":");
            write_updates(updates, &mut out);
            out.push('}');
        }
        ToCoordinator::Pong { nonce } => {
            out.push_str(&format!("{{\"t\":\"pong\",\"nonce\":\"{nonce:x}\"}}"));
        }
        ToCoordinator::Fault { reason } => {
            out.push_str("{\"t\":\"fault\",\"reason\":");
            reason.serialize_json(&mut out);
            out.push('}');
        }
        ToCoordinator::Bye => out.push_str("{\"t\":\"bye\"}"),
    }
    out
}

/// Reads the `{"t":"..."` head every message starts with, returning the
/// tag. Encoders always emit the tag first; a frame that does not lead
/// with it is a protocol violation, not something to resynchronize.
fn parse_tag(parser: &mut Parser<'_>) -> Result<String, serde::de::Error> {
    parser.expect_char('{')?;
    let key = parser.parse_string()?;
    if key != "t" {
        return Err(parser.error(&format!(
            "message must lead with its tag, found key {key:?}"
        )));
    }
    parser.expect_char(':')?;
    parser.parse_string()
}

/// Parses a coordinator → worker message.
///
/// # Errors
///
/// [`FleetError::Protocol`] on malformed or unknown messages.
pub fn parse_to_worker(payload: &str) -> FleetResult<ToWorker> {
    let mut parser = Parser::new(payload);
    let msg = parse_to_worker_value(&mut parser).map_err(protocol)?;
    parser.expect_end().map_err(protocol)?;
    Ok(msg)
}

#[allow(clippy::too_many_lines)]
fn parse_to_worker_value(parser: &mut Parser<'_>) -> Result<ToWorker, serde::de::Error> {
    let tag = parse_tag(parser)?;
    match tag.as_str() {
        "finish" => {
            parser.expect_char('}')?;
            Ok(ToWorker::Finish)
        }
        "ping" => {
            let mut nonce = None;
            while parser.consume_char(',') {
                let key = parser.parse_string()?;
                parser.expect_char(':')?;
                match key.as_str() {
                    "nonce" => nonce = Some(parse_hex_u64(parser, "nonce")?),
                    _ => parser.skip_value()?,
                }
            }
            parser.expect_char('}')?;
            Ok(ToWorker::Ping {
                nonce: nonce.ok_or_else(|| parser.error("ping is missing 'nonce'"))?,
            })
        }
        "phase" => {
            let mut sweep = None;
            let mut group = None;
            while parser.consume_char(',') {
                let key = parser.parse_string()?;
                parser.expect_char(':')?;
                match key.as_str() {
                    "sweep" => sweep = Some(usize::deserialize_json(parser)?),
                    "group" => group = Some(usize::deserialize_json(parser)?),
                    _ => parser.skip_value()?,
                }
            }
            parser.expect_char('}')?;
            Ok(ToWorker::Phase {
                sweep: sweep.ok_or_else(|| parser.error("phase is missing 'sweep'"))?,
                group: group.ok_or_else(|| parser.error("phase is missing 'group'"))?,
            })
        }
        "halo" => {
            let mut updates = None;
            while parser.consume_char(',') {
                let key = parser.parse_string()?;
                parser.expect_char(':')?;
                match key.as_str() {
                    "updates" => updates = Some(Vec::<(usize, u8)>::deserialize_json(parser)?),
                    _ => parser.skip_value()?,
                }
            }
            parser.expect_char('}')?;
            Ok(ToWorker::Halo {
                updates: updates.ok_or_else(|| parser.error("halo is missing 'updates'"))?,
            })
        }
        "assign" => {
            let mut spec = None;
            let mut cells = None;
            let mut plane = None;
            let mut resume_sweep = None;
            let mut replay = None;
            while parser.consume_char(',') {
                let key = parser.parse_string()?;
                parser.expect_char(':')?;
                match key.as_str() {
                    "spec" => spec = Some(FleetSpec::parse_value(parser)?),
                    "cells" => cells = Some(Vec::<(usize, usize)>::deserialize_json(parser)?),
                    "plane" => {
                        plane = if parser.consume_literal("null") {
                            Some(None)
                        } else {
                            let text = parser.parse_string()?;
                            let decoded = crate::wire::decode_plane(&text)
                                .map_err(|e| parser.error(&e.to_string()))?;
                            Some(Some(decoded))
                        };
                    }
                    "resume_sweep" => resume_sweep = Some(usize::deserialize_json(parser)?),
                    "replay" => {
                        replay = Some(Vec::<Vec<(usize, u8)>>::deserialize_json(parser)?);
                    }
                    _ => parser.skip_value()?,
                }
            }
            parser.expect_char('}')?;
            Ok(ToWorker::Assign {
                spec: spec.ok_or_else(|| parser.error("assign is missing 'spec'"))?,
                cells: cells.ok_or_else(|| parser.error("assign is missing 'cells'"))?,
                plane: plane.ok_or_else(|| parser.error("assign is missing 'plane'"))?,
                resume_sweep: resume_sweep
                    .ok_or_else(|| parser.error("assign is missing 'resume_sweep'"))?,
                replay: replay.ok_or_else(|| parser.error("assign is missing 'replay'"))?,
            })
        }
        other => Err(parser.error(&format!("unknown coordinator message {other:?}"))),
    }
}

/// Parses a worker → coordinator message.
///
/// # Errors
///
/// [`FleetError::Protocol`] on malformed or unknown messages.
pub fn parse_to_coordinator(payload: &str) -> FleetResult<ToCoordinator> {
    let mut parser = Parser::new(payload);
    let msg = parse_to_coordinator_value(&mut parser).map_err(protocol)?;
    parser.expect_end().map_err(protocol)?;
    Ok(msg)
}

fn parse_to_coordinator_value(parser: &mut Parser<'_>) -> Result<ToCoordinator, serde::de::Error> {
    let tag = parse_tag(parser)?;
    match tag.as_str() {
        "bye" => {
            parser.expect_char('}')?;
            Ok(ToCoordinator::Bye)
        }
        "pong" => {
            let mut nonce = None;
            while parser.consume_char(',') {
                let key = parser.parse_string()?;
                parser.expect_char(':')?;
                match key.as_str() {
                    "nonce" => nonce = Some(parse_hex_u64(parser, "nonce")?),
                    _ => parser.skip_value()?,
                }
            }
            parser.expect_char('}')?;
            Ok(ToCoordinator::Pong {
                nonce: nonce.ok_or_else(|| parser.error("pong is missing 'nonce'"))?,
            })
        }
        "assign_ok" => {
            let mut owned = None;
            while parser.consume_char(',') {
                let key = parser.parse_string()?;
                parser.expect_char(':')?;
                match key.as_str() {
                    "owned" => owned = Some(usize::deserialize_json(parser)?),
                    _ => parser.skip_value()?,
                }
            }
            parser.expect_char('}')?;
            Ok(ToCoordinator::AssignOk {
                owned: owned.ok_or_else(|| parser.error("assign_ok is missing 'owned'"))?,
            })
        }
        "phase_done" => {
            let mut sweep = None;
            let mut group = None;
            let mut updates = None;
            while parser.consume_char(',') {
                let key = parser.parse_string()?;
                parser.expect_char(':')?;
                match key.as_str() {
                    "sweep" => sweep = Some(usize::deserialize_json(parser)?),
                    "group" => group = Some(usize::deserialize_json(parser)?),
                    "updates" => updates = Some(Vec::<(usize, u8)>::deserialize_json(parser)?),
                    _ => parser.skip_value()?,
                }
            }
            parser.expect_char('}')?;
            Ok(ToCoordinator::PhaseDone {
                sweep: sweep.ok_or_else(|| parser.error("phase_done is missing 'sweep'"))?,
                group: group.ok_or_else(|| parser.error("phase_done is missing 'group'"))?,
                updates: updates.ok_or_else(|| parser.error("phase_done is missing 'updates'"))?,
            })
        }
        "fault" => {
            let mut reason = None;
            while parser.consume_char(',') {
                let key = parser.parse_string()?;
                parser.expect_char(':')?;
                match key.as_str() {
                    "reason" => reason = Some(parser.parse_string()?),
                    _ => parser.skip_value()?,
                }
            }
            parser.expect_char('}')?;
            Ok(ToCoordinator::Fault {
                reason: reason.ok_or_else(|| parser.error("fault is missing 'reason'"))?,
            })
        }
        other => Err(parser.error(&format!("unknown worker message {other:?}"))),
    }
}

/// Sends a coordinator → worker message.
///
/// # Errors
///
/// See [`send_frame`].
pub fn send_to_worker(conn: &mut Conn, msg: &ToWorker) -> FleetResult<()> {
    send_frame(conn, &encode_to_worker(msg))
}

/// Receives a coordinator → worker message.
///
/// # Errors
///
/// See [`recv_frame`] and [`parse_to_worker`].
pub fn recv_to_worker(conn: &mut Conn, deadline: Option<Duration>) -> FleetResult<ToWorker> {
    parse_to_worker(&recv_frame(conn, deadline, "worker-recv")?)
}

/// Sends a worker → coordinator message.
///
/// # Errors
///
/// See [`send_frame`].
pub fn send_to_coordinator(conn: &mut Conn, msg: &ToCoordinator) -> FleetResult<()> {
    send_frame(conn, &encode_to_coordinator(msg))
}

/// Receives a worker → coordinator message.
///
/// # Errors
///
/// See [`recv_frame`] and [`parse_to_coordinator`].
pub fn recv_to_coordinator(
    conn: &mut Conn,
    deadline: Option<Duration>,
    rpc: &'static str,
) -> FleetResult<ToCoordinator> {
    parse_to_coordinator(&recv_frame(conn, deadline, rpc)?)
}

/// Round-trip liveness probe: sends `Ping` and waits for the matching
/// `Pong`, discarding any stale `PhaseDone` still queued from a
/// superseded phase exchange.
///
/// # Errors
///
/// [`FleetError::Deadline`] when the pong misses the deadline,
/// [`FleetError::Protocol`] on a mismatched nonce or unexpected reply.
pub fn rpc_ping(conn: &mut Conn, nonce: u64, deadline: Duration) -> FleetResult<()> {
    send_to_worker(conn, &ToWorker::Ping { nonce })?;
    loop {
        match recv_to_coordinator(conn, Some(deadline), "ping")? {
            ToCoordinator::Pong { nonce: echoed } if echoed == nonce => return Ok(()),
            ToCoordinator::Pong { nonce: echoed } => {
                return Err(FleetError::Protocol {
                    reason: format!("pong nonce {echoed:#x} does not match ping {nonce:#x}"),
                })
            }
            ToCoordinator::PhaseDone { .. } => continue,
            other => {
                return Err(FleetError::Protocol {
                    reason: format!("expected pong, got {other:?}"),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BackendKind, Workload};
    use std::net::TcpListener;

    fn pair() -> (Conn, Conn) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (Conn::Tcp(client), Conn::Tcp(server))
    }

    fn sample_spec() -> FleetSpec {
        FleetSpec {
            workload: Workload::Demo {
                width: 12,
                height: 9,
                labels: 5,
            },
            backend: BackendKind::Softmax,
            iterations: 8,
            threads: 3,
            seed: u64::MAX,
            burn_in: 2,
        }
    }

    #[test]
    fn frames_round_trip_over_tcp() {
        let (mut a, mut b) = pair();
        send_frame(&mut a, "hello fleet").expect("send");
        let got = recv_frame(&mut b, Some(Duration::from_secs(2)), "test").expect("recv");
        assert_eq!(got, "hello fleet");
    }

    #[test]
    fn recv_deadline_is_typed() {
        let (_a, mut b) = pair();
        let err = recv_frame(&mut b, Some(Duration::from_millis(50)), "probe")
            .expect_err("nothing was sent");
        assert_eq!(err.variant(), "deadline");
        assert!(err.is_migratable());
    }

    #[test]
    fn closed_stream_is_a_frame_error() {
        let (a, mut b) = pair();
        drop(a);
        let err =
            recv_frame(&mut b, Some(Duration::from_secs(2)), "probe").expect_err("peer closed");
        assert_eq!(err.variant(), "frame");
    }

    #[test]
    fn every_worker_message_round_trips() {
        let msgs = vec![
            ToWorker::Assign {
                spec: sample_spec(),
                cells: vec![(0, 0), (1, 2)],
                plane: Some(vec![0, 1, 4, 255]),
                resume_sweep: 3,
                replay: vec![vec![(0, 1), (9, 4)], vec![]],
            },
            ToWorker::Assign {
                spec: sample_spec(),
                cells: vec![(0, 1)],
                plane: None,
                resume_sweep: 0,
                replay: vec![],
            },
            ToWorker::Phase { sweep: 7, group: 1 },
            ToWorker::Halo {
                updates: vec![(3, 2), (4, 0)],
            },
            ToWorker::Ping { nonce: u64::MAX },
            ToWorker::Finish,
        ];
        for msg in msgs {
            let text = encode_to_worker(&msg);
            let back = parse_to_worker(&text).expect("parses");
            assert_eq!(back, msg, "round trip: {text}");
        }
    }

    #[test]
    fn every_coordinator_message_round_trips() {
        let msgs = vec![
            ToCoordinator::AssignOk { owned: 54 },
            ToCoordinator::PhaseDone {
                sweep: 2,
                group: 0,
                updates: vec![(0, 0), (2, 3)],
            },
            ToCoordinator::Pong { nonce: 1 },
            ToCoordinator::Fault {
                reason: "unit \"q\" died".to_string(),
            },
            ToCoordinator::Bye,
        ];
        for msg in msgs {
            let text = encode_to_coordinator(&msg);
            let back = parse_to_coordinator(&text).expect("parses");
            assert_eq!(back, msg, "round trip: {text}");
        }
    }

    #[test]
    fn plane_hex_round_trips_and_rejects_garbage() {
        let plane: Vec<u8> = (0..=255).collect();
        assert_eq!(decode_plane(&encode_plane(&plane)).expect("decodes"), plane);
        assert!(decode_plane("abc").is_err(), "odd length");
        assert!(decode_plane("zz").is_err(), "non-hex");
    }

    #[test]
    fn ping_discards_stale_phase_done() {
        let (mut coord, mut worker) = pair();
        // A stale PhaseDone sits in the queue ahead of the pong.
        send_to_coordinator(
            &mut worker,
            &ToCoordinator::PhaseDone {
                sweep: 0,
                group: 0,
                updates: vec![],
            },
        )
        .expect("stale send");
        send_to_coordinator(&mut worker, &ToCoordinator::Pong { nonce: 42 }).expect("pong send");
        // rpc_ping's own Ping will be ignored by this fake worker; the
        // queued replies satisfy it.
        rpc_ping(&mut coord, 42, Duration::from_secs(2)).expect("ping survives stale traffic");
    }

    #[test]
    fn oversized_and_malformed_frames_are_rejected() {
        let (mut a, mut b) = pair();
        // A corrupt prefix claiming a huge frame.
        a.write_all(b"ffffffff").expect("raw write");
        a.flush().expect("flush");
        let err = recv_frame(&mut b, Some(Duration::from_secs(2)), "probe")
            .expect_err("oversized declaration");
        assert_eq!(err.variant(), "frame");
    }
}

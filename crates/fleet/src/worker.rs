//! The worker side of the fleet protocol.
//!
//! A worker is deliberately dumb: it holds at most one shard, does
//! exactly what the coordinator's last `Assign` told it to, and never
//! makes a recovery decision. All robustness lives in the coordinator —
//! a worker that receives a second `Assign` simply rebuilds its runner
//! from scratch (the message carries the boundary plane and the replay
//! log, so catch-up is a pure function of the message), which is what
//! makes shard migration and adoption the *same* code path as initial
//! admission.

use std::io::Write as _;
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

use crate::error::{FleetError, FleetResult};
use crate::exec::{build_shard, ShardExec};
use crate::wire::{recv_to_worker, send_to_coordinator, Conn, ToCoordinator, ToWorker};

/// Environment variable the self-exec launcher sets: when present, the
/// process is a worker and must connect to its value (an address in
/// [`connect`]'s format) instead of running its own `main`.
pub const WORKER_ENV: &str = "MOGS_FLEET_WORKER";

/// How long a worker waits for the next coordinator message before
/// concluding the coordinator is gone and exiting. Generous: the
/// coordinator drives phases continuously, so minutes of silence means
/// an orphaned process, not a slow sweep.
pub const WORKER_IDLE: Duration = Duration::from_secs(120);

/// Connects to a coordinator address: `tcp:<host>:<port>` or
/// `unix:<path>`.
///
/// # Errors
///
/// [`FleetError::Protocol`] for an unrecognized scheme,
/// [`FleetError::Io`] when the connection fails.
pub fn connect(addr: &str) -> FleetResult<Conn> {
    if let Some(tcp) = addr.strip_prefix("tcp:") {
        return TcpStream::connect(tcp)
            .map(Conn::Tcp)
            .map_err(|e| FleetError::io(format!("connecting to {tcp}"), e));
    }
    if let Some(path) = addr.strip_prefix("unix:") {
        return UnixStream::connect(path)
            .map(Conn::Unix)
            .map_err(|e| FleetError::io(format!("connecting to {path}"), e));
    }
    Err(FleetError::Protocol {
        reason: format!("worker address {addr:?} has no tcp:/unix: scheme"),
    })
}

/// Runs the worker protocol over an established connection until the
/// coordinator says `Finish` (or the stream dies).
///
/// # Errors
///
/// Any [`FleetError`] from the wire or from shard admission; a
/// best-effort `Fault` message is sent before returning so the
/// coordinator can log *why*, though it never needs to trust it.
pub fn run_worker(conn: &mut Conn) -> FleetResult<()> {
    match drive(conn) {
        Ok(()) => Ok(()),
        Err(err) => {
            // Best-effort courtesy; the coordinator treats the
            // subsequent EOF as the ground truth either way.
            let _ = send_to_coordinator(
                conn,
                &ToCoordinator::Fault {
                    reason: err.to_string(),
                },
            );
            Err(err)
        }
    }
}

fn drive(conn: &mut Conn) -> FleetResult<()> {
    let mut shard: Option<Box<dyn ShardExec>> = None;
    loop {
        match recv_to_worker(conn, Some(WORKER_IDLE))? {
            ToWorker::Assign {
                spec,
                cells,
                plane,
                resume_sweep,
                replay,
            } => {
                let mut exec = build_shard(&spec, &cells)?;
                if let Some(plane) = plane {
                    exec.seat(&plane)?;
                }
                // Catch up through the completed phases of the resume
                // sweep: our own chunks re-run (same RNG streams, same
                // boundary plane — bit-identical), then the rest of the
                // group arrives from the log.
                for (group, updates) in replay.iter().enumerate() {
                    exec.run_phase(resume_sweep, group);
                    exec.apply_updates(updates)?;
                }
                let owned: usize = (0..exec.group_count())
                    .map(|g| exec.owned_sites(g).len())
                    .sum();
                shard = Some(exec);
                send_to_coordinator(conn, &ToCoordinator::AssignOk { owned })?;
            }
            ToWorker::Phase { sweep, group } => {
                let exec = shard.as_mut().ok_or_else(|| FleetError::Protocol {
                    reason: "phase before assign".to_string(),
                })?;
                exec.run_phase(sweep, group);
                let sites = exec.owned_sites(group);
                let labels = exec.read_labels(&sites);
                let updates: Vec<(usize, u8)> = sites.into_iter().zip(labels).collect();
                send_to_coordinator(
                    conn,
                    &ToCoordinator::PhaseDone {
                        sweep,
                        group,
                        updates,
                    },
                )?;
            }
            ToWorker::Halo { updates } => {
                let exec = shard.as_mut().ok_or_else(|| FleetError::Protocol {
                    reason: "halo before assign".to_string(),
                })?;
                exec.apply_updates(&updates)?;
            }
            ToWorker::Ping { nonce } => {
                send_to_coordinator(conn, &ToCoordinator::Pong { nonce })?;
            }
            ToWorker::Finish => {
                send_to_coordinator(conn, &ToCoordinator::Bye)?;
                return Ok(());
            }
        }
    }
}

/// Full worker entry point: connect, run, report.
///
/// # Errors
///
/// See [`connect`] and [`run_worker`].
pub fn worker_main(addr: &str) -> FleetResult<()> {
    let mut conn = connect(addr)?;
    run_worker(&mut conn)
}

/// The self-exec hook: when [`WORKER_ENV`] is set, the current process
/// is a fleet worker — run the protocol and return `true` (the caller
/// must then exit without running its own logic). Binaries that may act
/// as self-exec fleet hosts call this first thing in `main`.
///
/// # Errors
///
/// Worker-side failures, after the protocol ran. The variable being
/// unset is not an error (`Ok(false)`).
pub fn maybe_run_worker() -> FleetResult<bool> {
    let Ok(addr) = std::env::var(WORKER_ENV) else {
        return Ok(false);
    };
    match worker_main(&addr) {
        Ok(()) => Ok(true),
        Err(err) => {
            // Keep the diagnostic on the worker's stderr; the
            // coordinator only sees the socket close.
            let _ = writeln!(std::io::stderr(), "fleet worker failed: {err}");
            Err(err)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BackendKind, FleetSpec, Workload};
    use crate::wire::{recv_to_coordinator, send_to_worker};
    use std::net::TcpListener;

    fn spec() -> FleetSpec {
        FleetSpec {
            workload: Workload::Demo {
                width: 6,
                height: 4,
                labels: 3,
            },
            backend: BackendKind::Softmax,
            iterations: 4,
            threads: 2,
            seed: 0xBEE,
            burn_in: 1,
        }
    }

    /// Drives a worker thread over loopback TCP through a full
    /// assign/phase/halo/finish conversation.
    #[test]
    fn worker_protocol_end_to_end() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = format!("tcp:{}", listener.local_addr().expect("addr"));
        let worker = std::thread::spawn(move || worker_main(&addr));
        let (stream, _) = listener.accept().expect("accept");
        let mut conn = Conn::Tcp(stream);
        let deadline = Some(Duration::from_secs(10));

        // Assign the whole job as one shard.
        let structure = crate::exec::FleetStructure::of(&spec()).expect("structure");
        let cells: Vec<(usize, usize)> = (0..structure.group_count())
            .flat_map(|g| (0..structure.cells[g].len()).map(move |c| (g, c)))
            .collect();
        send_to_worker(
            &mut conn,
            &ToWorker::Assign {
                spec: spec(),
                cells,
                plane: None,
                resume_sweep: 0,
                replay: vec![],
            },
        )
        .expect("assign");
        let reply = recv_to_coordinator(&mut conn, deadline, "assign").expect("assign ok");
        assert_eq!(reply, ToCoordinator::AssignOk { owned: 24 });

        // Ping, then one full sweep of phases.
        crate::wire::rpc_ping(&mut conn, 7, Duration::from_secs(10)).expect("ping");
        let mut plane = vec![0u8; 24];
        for group in 0..structure.group_count() {
            send_to_worker(&mut conn, &ToWorker::Phase { sweep: 0, group }).expect("phase");
            let ToCoordinator::PhaseDone {
                sweep,
                group: g,
                updates,
            } = recv_to_coordinator(&mut conn, deadline, "phase").expect("phase done")
            else {
                panic!("expected phase done");
            };
            assert_eq!((sweep, g), (0, group));
            for (site, label) in updates {
                plane[site] = label;
            }
            send_to_worker(&mut conn, &ToWorker::Halo { updates: vec![] }).expect("halo");
        }

        // Match against the engine's state after one sweep: reuse the
        // shard path in-process for the expectation.
        let all_cells: Vec<(usize, usize)> = (0..structure.group_count())
            .flat_map(|g| (0..structure.cells[g].len()).map(move |c| (g, c)))
            .collect();
        let mut reference = build_shard(&spec(), &all_cells).expect("reference");
        for group in 0..reference.group_count() {
            reference.run_phase(0, group);
        }
        assert_eq!(
            plane,
            reference.snapshot(),
            "worker sweep must be bit-identical"
        );

        send_to_worker(&mut conn, &ToWorker::Finish).expect("finish");
        let bye = recv_to_coordinator(&mut conn, deadline, "finish").expect("bye");
        assert_eq!(bye, ToCoordinator::Bye);
        worker
            .join()
            .expect("worker thread")
            .expect("worker exits cleanly");
    }

    #[test]
    fn phase_before_assign_is_a_protocol_fault() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = format!("tcp:{}", listener.local_addr().expect("addr"));
        let worker = std::thread::spawn(move || worker_main(&addr));
        let (stream, _) = listener.accept().expect("accept");
        let mut conn = Conn::Tcp(stream);
        send_to_worker(&mut conn, &ToWorker::Phase { sweep: 0, group: 0 }).expect("phase");
        let reply =
            recv_to_coordinator(&mut conn, Some(Duration::from_secs(10)), "fault").expect("fault");
        let ToCoordinator::Fault { reason } = reply else {
            panic!("expected fault, got {reply:?}");
        };
        assert!(reason.contains("phase before assign"), "{reason}");
        assert!(worker.join().expect("join").is_err());
    }

    #[test]
    fn bad_addresses_are_typed() {
        assert_eq!(
            connect("carrier-pigeon:coop")
                .expect_err("scheme")
                .variant(),
            "protocol"
        );
        assert_eq!(
            connect("unix:/nonexistent/socket/path")
                .expect_err("no socket")
                .variant(),
            "io"
        );
    }
}

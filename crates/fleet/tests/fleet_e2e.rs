//! The fleet kill-ladder, end to end over real worker *processes*.
//!
//! Every rung spawns genuine `fleet-worker` binaries (the
//! `Launcher::Program` path — the same one production uses), runs a
//! full job, and holds the coordinator to the crate's core promise:
//! the output is **bit-identical** to a single-process engine run of
//! the same spec, no matter what dies along the way.
//!
//! Rungs, in escalating order of violence:
//!
//! 1. clean N-process run — the baseline bit-identity claim;
//! 2. one worker SIGKILLed mid-sweep, respawned — migration replays
//!    the boundary + phase log and nothing diverges;
//! 3. the same kill with respawn disabled — a survivor adopts the
//!    orphaned shard and the job completes `Degraded`, still
//!    bit-identical;
//! 4. rolling kills across several sweeps — repeated migration within
//!    budget;
//! 5. a kill with the migration budget at zero — the typed
//!    `FleetCollapse`, never a hang or a wrong answer;
//! 6. coordinator stop at a sweep boundary, then a *fresh* coordinator
//!    resuming from the durable checkpoints — the stitched run equals
//!    the uninterrupted one bit for bit.

use std::path::PathBuf;

use mogs_fleet::{
    run_fleet, run_in_process, BackendKind, ChaosPlan, FleetCheckpoint, FleetConfig, FleetError,
    FleetSpec, KillAt, Launcher, TransportKind, Workload,
};

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_fleet-worker"))
}

fn demo_spec() -> FleetSpec {
    FleetSpec {
        workload: Workload::Demo {
            width: 10,
            height: 8,
            labels: 4,
        },
        backend: BackendKind::Softmax,
        iterations: 8,
        threads: 2,
        seed: 0xFEE7_F1EE,
        burn_in: 3,
    }
}

fn rsu_spec() -> FleetSpec {
    FleetSpec {
        backend: BackendKind::Rsu { replicas: 4 },
        ..demo_spec()
    }
}

fn config(workers: usize) -> FleetConfig {
    let mut config = FleetConfig::new(workers);
    config.launcher = Launcher::Program(worker_bin());
    config
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mogs-fleet-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn clean_three_process_run_is_bit_identical() {
    for (spec, transport) in [
        (demo_spec(), TransportKind::Tcp),
        (rsu_spec(), TransportKind::Unix),
    ] {
        let mut config = config(3);
        config.transport = transport;
        let output = run_fleet(&spec, &config).expect("fleet runs");
        let reference = run_in_process(&spec).expect("engine runs");
        assert_eq!(output.workers_spawned, 3);
        assert_eq!(output.migrations, 0);
        assert!(output.degraded.is_none());
        assert!(
            output.bit_identical_to(&reference),
            "clean 3-process run diverged from the engine over {transport:?}"
        );
    }
}

#[test]
fn kill_one_mid_sweep_migrates_and_stays_bit_identical() {
    // Both backends: the softmax reference path and the RSU pool.
    for spec in [demo_spec(), rsu_spec()] {
        let mut config = config(3);
        config.chaos = ChaosPlan {
            kills: vec![KillAt {
                sweep: 2,
                group: 1,
                worker: 1,
            }],
        };
        let output = run_fleet(&spec, &config).expect("fleet survives the kill");
        let reference = run_in_process(&spec).expect("engine runs");
        assert_eq!(output.migrations, 1, "exactly one migration");
        assert_eq!(output.workers_spawned, 4, "the dead worker was replaced");
        assert!(
            output.degraded.is_none(),
            "respawn capacity means no degradation"
        );
        assert!(
            output.bit_identical_to(&reference),
            "kill-one-mid-sweep diverged from the engine"
        );
    }
}

#[test]
fn kill_without_respawn_degrades_but_stays_bit_identical() {
    let spec = demo_spec();
    let mut config = config(3);
    config.respawn = false;
    config.chaos = ChaosPlan {
        kills: vec![KillAt {
            sweep: 3,
            group: 0,
            worker: 2,
        }],
    };
    let output = run_fleet(&spec, &config).expect("fleet degrades instead of dying");
    let reference = run_in_process(&spec).expect("engine runs");
    assert_eq!(output.migrations, 1);
    assert_eq!(output.workers_spawned, 3, "no replacement was launched");
    let degraded = output.degraded.expect("the job must report degradation");
    assert_eq!(degraded.failed_over_at, 3);
    assert_eq!(degraded.units_lost, 1);
    assert!(
        output.bit_identical_to(&reference),
        "adoption onto a survivor diverged from the engine"
    );
}

#[test]
fn rolling_kills_across_sweeps_stay_bit_identical() {
    let spec = demo_spec();
    let mut config = config(3);
    config.max_migrations = 4;
    config.chaos = ChaosPlan {
        kills: vec![
            KillAt {
                sweep: 1,
                group: 0,
                worker: 0,
            },
            KillAt {
                sweep: 3,
                group: 1,
                worker: 2,
            },
            KillAt {
                sweep: 5,
                group: 0,
                worker: 1,
            },
        ],
    };
    let output = run_fleet(&spec, &config).expect("fleet survives rolling kills");
    let reference = run_in_process(&spec).expect("engine runs");
    assert_eq!(output.migrations, 3);
    assert_eq!(output.workers_spawned, 6);
    assert!(
        output.bit_identical_to(&reference),
        "rolling kills diverged from the engine"
    );
}

#[test]
fn exhausted_migration_budget_is_a_typed_collapse() {
    let spec = demo_spec();
    let mut config = config(2);
    config.max_migrations = 0;
    config.chaos = ChaosPlan {
        kills: vec![KillAt {
            sweep: 1,
            group: 0,
            worker: 0,
        }],
    };
    let err = run_fleet(&spec, &config).expect_err("no budget means collapse");
    match err {
        FleetError::FleetCollapse {
            migrations,
            max_migrations,
            ..
        } => {
            assert_eq!(max_migrations, 0);
            assert!(migrations > max_migrations);
        }
        other => panic!("expected FleetCollapse, got {other:?}"),
    }
}

#[test]
fn coordinator_restart_resumes_from_checkpoints_bit_identically() {
    let spec = demo_spec();
    let dir = temp_dir("restart");
    let checkpoint = FleetCheckpoint {
        dir: dir.clone(),
        every_sweeps: 2,
        retain: 8,
    };

    // First coordinator: run to the sweep-4 boundary and stop.
    let mut first = config(3);
    first.checkpoint = Some(checkpoint.clone());
    first.stop_after_sweep = Some(4);
    let paused = run_fleet(&spec, &first).expect("first coordinator runs");
    assert!(!paused.finished, "the run must pause, not finish");
    assert_eq!(paused.iterations_run, 4);

    // Second coordinator: a fresh process image in production; here a
    // fresh config resuming from the durable store.
    let mut second = config(3);
    second.checkpoint = Some(checkpoint);
    second.resume = true;
    let resumed = run_fleet(&spec, &second).expect("second coordinator resumes");
    let reference = run_in_process(&spec).expect("engine runs");
    assert!(resumed.finished);
    assert_eq!(resumed.iterations_run, spec.iterations);
    assert!(
        resumed.bit_identical_to(&reference),
        "stop + resume across coordinators diverged from the uninterrupted engine"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_during_checkpointed_run_cross_checks_the_store() {
    // Checkpoints on AND a mid-sweep kill: recovery must cross-check the
    // boundary against the durable shard checkpoint (they agree here, so
    // the run proceeds bit-identically).
    let spec = demo_spec();
    let dir = temp_dir("crosscheck");
    let mut config = config(2);
    config.checkpoint = Some(FleetCheckpoint {
        dir: dir.clone(),
        every_sweeps: 2,
        retain: 4,
    });
    config.chaos = ChaosPlan {
        kills: vec![KillAt {
            sweep: 2,
            group: 0,
            worker: 0,
        }],
    };
    let output = run_fleet(&spec, &config).expect("fleet survives with store cross-check");
    let reference = run_in_process(&spec).expect("engine runs");
    assert_eq!(output.migrations, 1);
    assert!(
        output.bit_identical_to(&reference),
        "checkpoint-cross-checked migration diverged from the engine"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

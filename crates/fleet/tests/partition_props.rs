//! Property tests for the shard partitioner.
//!
//! The claims under test, over randomized grids, thread counts, and
//! shard widths:
//!
//! - **Exactness**: every site lands in exactly one shard's owned set —
//!   no gaps, no double ownership — and the `owner` array agrees.
//! - **Halo completeness (both directions)**: shard `i`'s halo is
//!   *exactly* the cross-shard adjacency of its owned set. Forward:
//!   every halo site is unowned by `i` and borders an owned site of
//!   `i`. Backward: every cross-shard neighbour of an owned site
//!   appears in the halo. A halo that is a strict subset would silently
//!   corrupt gathers three sweeps later; a superset wastes wire traffic
//!   and flags a partitioner bug just the same.
//! - **Determinism**: the same structure and width always produce the
//!   same partition (the coordinator re-derives it on restart).
//! - **Bit-identity anchor**: a single-shard fleet — the degenerate
//!   partition — reproduces the in-process engine bit for bit, so the
//!   multi-shard runs have a trusted base case to compose from.

use std::collections::BTreeSet;

use mogs_fleet::{
    partition, run_fleet, run_in_process, BackendKind, FleetConfig, FleetSpec, FleetStructure,
    Workload,
};
use proptest::prelude::*;

/// Whether every checkerboard colour group of a `width × height` grid
/// can be split into exactly `threads` chunks by the engine's chunk
/// arithmetic (`chunk_size = ceil(len / threads)`); the engine's
/// schedule audit rejects thread counts that collapse to fewer chunks.
fn threads_feasible(width: usize, height: usize, threads: usize) -> bool {
    let sites = width * height;
    [sites.div_ceil(2), sites / 2].iter().all(|&len| {
        let chunk = len.div_ceil(threads).max(1);
        len.div_ceil(chunk) == threads
    })
}

fn arb_spec() -> impl Strategy<Value = FleetSpec> {
    (
        ((2usize..14), (2usize..10), (2u16..6)),
        (0usize..16),
        0u64..=u64::MAX,
    )
        .prop_map(|((width, height, labels), thread_pick, seed)| {
            let feasible: Vec<usize> = (1..=4)
                .filter(|&t| threads_feasible(width, height, t))
                .collect();
            let threads = feasible[thread_pick % feasible.len()];
            FleetSpec {
                workload: Workload::Demo {
                    width,
                    height,
                    labels,
                },
                backend: BackendKind::Softmax,
                iterations: 3,
                threads,
                seed,
                burn_in: 1,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_site_in_exactly_one_shard((spec, pick) in (arb_spec(), 0usize..1000)) {
        let structure = FleetStructure::of(&spec).expect("structure derives");
        let shards = 1 + pick % structure.total_cells();
        let p = partition(&structure, shards).expect("audited partition");

        let mut seen = vec![0usize; structure.sites];
        for (i, shard) in p.shards.iter().enumerate() {
            prop_assert!(!shard.owned.is_empty(), "shard {i} owns nothing");
            for &site in &shard.owned {
                seen[site] += 1;
                prop_assert_eq!(p.owner[site], i, "owner array disagrees at site {}", site);
            }
        }
        prop_assert!(
            seen.iter().all(|&n| n == 1),
            "ownership counts {:?} are not exactly-once", seen
        );
    }

    #[test]
    fn halos_equal_cross_shard_adjacency_both_directions(
        (spec, pick) in (arb_spec(), 0usize..1000)
    ) {
        let structure = FleetStructure::of(&spec).expect("structure derives");
        let shards = 1 + pick % structure.total_cells();
        let p = partition(&structure, shards).expect("audited partition");

        for (i, shard) in p.shards.iter().enumerate() {
            let halo: BTreeSet<usize> = shard.halo_in.iter().copied().collect();
            prop_assert_eq!(
                halo.len(), shard.halo_in.len(),
                "halo of shard {} has duplicates", i
            );
            // Forward: each halo site is foreign and borders the shard.
            for &h in &halo {
                prop_assert!(p.owner[h] != i, "halo site {} owned by shard {} itself", h, i);
                prop_assert!(
                    structure.topology.neighbors(h).iter().any(|&n| p.owner[n] == i),
                    "halo site {} borders no owned site of shard {}", h, i
                );
            }
            // Backward: each cross-shard neighbour is in the halo.
            for &site in &shard.owned {
                for &n in structure.topology.neighbors(site) {
                    if p.owner[n] != i {
                        prop_assert!(
                            halo.contains(&n),
                            "cross-shard neighbour {} of owned site {} missing from \
                             shard {}'s halo", n, site, i
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn partition_is_deterministic((spec, pick) in (arb_spec(), 0usize..1000)) {
        let structure = FleetStructure::of(&spec).expect("structure derives");
        let shards = 1 + pick % structure.total_cells();
        let a = partition(&structure, shards).expect("first");
        let b = partition(&structure, shards).expect("second");
        prop_assert_eq!(a, b, "partition must be a pure function of (structure, shards)");
    }
}

proptest! {
    // Each case runs two full jobs (fleet + engine); keep the count low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn single_shard_fleet_is_bit_identical_to_engine(spec in arb_spec()) {
        let output = run_fleet(&spec, &FleetConfig::new(1)).expect("fleet runs");
        let reference = run_in_process(&spec).expect("engine runs");
        prop_assert!(
            output.bit_identical_to(&reference),
            "single-shard fleet diverged from the engine on {:?}", spec
        );
    }
}

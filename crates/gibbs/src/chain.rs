//! The MCMC chain driver.
//!
//! Runs full-grid sweeps for a configured number of iterations, applying a
//! temperature schedule, recording the energy trace, and (optionally)
//! tracking per-site label histograms so the **marginal MAP** estimate —
//! the per-pixel mode over post-burn-in samples, the quantity the paper's
//! vision applications report — can be extracted at the end.

use crate::sampler::LabelSampler;
use crate::schedule::TemperatureSchedule;
use crate::sweep::{colored_sweep_with_scratch, sequential_sweep, SweepScratch};
use mogs_mrf::energy::SingletonPotential;
use mogs_mrf::{Label, MarkovRandomField};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for an MCMC run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainConfig {
    /// Temperature schedule over iterations.
    pub schedule: TemperatureSchedule,
    /// Iterations to discard before mode tracking begins.
    pub burn_in: usize,
    /// Whether to accumulate per-site label histograms (costs `sites × M`
    /// counters).
    pub track_modes: bool,
    /// Rao–Blackwellized mode tracking: accumulate each site's exact full
    /// conditional distribution (when the sampler exposes one) instead of
    /// counting sampled labels. Lower-variance marginals for the same
    /// iterations; silently falls back to counting for samplers without
    /// closed-form conditionals (e.g. the RSU-G hardware model).
    pub rao_blackwell: bool,
    /// Number of worker threads; 1 selects the sequential sweep.
    pub threads: usize,
    /// Master RNG seed; every sweep derives its streams from this.
    pub seed: u64,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            schedule: TemperatureSchedule::default(),
            burn_in: 0,
            track_modes: true,
            rao_blackwell: false,
            threads: 1,
            seed: 0,
        }
    }
}

/// Summary of a finished run (see [`McmcChain::result`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ChainResult {
    /// The final labeling (the last MCMC sample).
    pub labels: Vec<Label>,
    /// Marginal MAP estimate (per-site histogram mode), if tracked.
    pub map_estimate: Option<Vec<Label>>,
    /// Total energy after each iteration.
    pub energy_trace: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
}

/// An in-progress MCMC chain over a borrowed field.
#[derive(Debug)]
pub struct McmcChain<'a, S, L> {
    mrf: &'a MarkovRandomField<S>,
    sampler: L,
    config: ChainConfig,
    labels: Vec<Label>,
    histograms: Option<Vec<u32>>,
    /// Soft (probability-mass) histograms for Rao–Blackwellized tracking.
    soft_histograms: Option<Vec<f64>>,
    energy_trace: Vec<f64>,
    iteration: usize,
    rng: StdRng,
    /// Reused sweep buffers — one snapshot allocation for the chain's
    /// whole life instead of one per parity phase.
    scratch: SweepScratch,
}

impl<'a, S, L> McmcChain<'a, S, L>
where
    S: SingletonPotential + Sync,
    L: LabelSampler + Clone + Send + Sync,
{
    /// Creates a chain starting from the all-zero labeling.
    pub fn new(mrf: &'a MarkovRandomField<S>, sampler: L, config: ChainConfig) -> Self {
        let labels = mrf.uniform_labeling();
        Self::with_initial(mrf, sampler, config, labels)
    }

    /// Creates a chain from an explicit initial labeling.
    ///
    /// # Panics
    ///
    /// Panics if the labeling does not validate against the field.
    pub fn with_initial(
        mrf: &'a MarkovRandomField<S>,
        sampler: L,
        config: ChainConfig,
        labels: Vec<Label>,
    ) -> Self {
        mrf.validate_labeling(&labels)
            .expect("initial labeling must fit the field");
        assert!(config.threads > 0, "need at least one thread");
        let histograms = config
            .track_modes
            .then(|| vec![0u32; mrf.grid().len() * mrf.space().count()]);
        let soft_histograms = (config.track_modes && config.rao_blackwell)
            .then(|| vec![0.0f64; mrf.grid().len() * mrf.space().count()]);
        McmcChain {
            mrf,
            sampler,
            rng: StdRng::seed_from_u64(config.seed),
            config,
            labels,
            histograms,
            soft_histograms,
            energy_trace: Vec::new(),
            iteration: 0,
            scratch: SweepScratch::new(),
        }
    }

    /// The current labeling.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Iterations completed so far.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// The energy recorded after each completed iteration.
    pub fn energy_trace(&self) -> &[f64] {
        &self.energy_trace
    }

    /// Executes one full MCMC iteration (every site updated once).
    pub fn step(&mut self) {
        let t = self.config.schedule.temperature(self.iteration);
        if self.config.threads == 1 {
            sequential_sweep(
                self.mrf,
                &mut self.labels,
                &mut self.sampler,
                t,
                &mut self.rng,
            );
        } else {
            let sweep_seed = self
                .config
                .seed
                .wrapping_add((self.iteration as u64).wrapping_mul(0xA24B_AED4_963E_E407));
            colored_sweep_with_scratch(
                self.mrf,
                &mut self.labels,
                &self.sampler,
                t,
                self.config.threads,
                sweep_seed,
                &mut self.scratch,
            );
        }
        self.iteration += 1;
        self.energy_trace.push(self.mrf.total_energy(&self.labels));
        if self.iteration > self.config.burn_in {
            if let Some(hist) = &mut self.histograms {
                let m = self.mrf.space().count();
                for (site, label) in self.labels.iter().enumerate() {
                    hist[site * m + usize::from(label.value())] += 1;
                }
            }
            if let Some(soft) = &mut self.soft_histograms {
                // Rao–Blackwell: accumulate p(xᵢ | x₋ᵢ⁽ᵗ⁾) per site when
                // the sampler can provide it exactly.
                let m = self.mrf.space().count();
                let mut energies = vec![0.0; m];
                for site in self.mrf.grid().sites() {
                    self.mrf
                        .conditional_energies_into(&self.labels, site, &mut energies);
                    if let Some(p) = self.sampler.conditional_probabilities(&energies, t) {
                        for (slot, prob) in soft[site * m..(site + 1) * m].iter_mut().zip(&p) {
                            *slot += prob;
                        }
                    }
                }
            }
        }
    }

    /// Runs `n` iterations.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// The marginal MAP estimate so far (per-site histogram mode), if mode
    /// tracking is enabled and at least one post-burn-in sample exists.
    pub fn map_estimate(&self) -> Option<Vec<Label>> {
        if self.iteration <= self.config.burn_in {
            return None;
        }
        let m = self.mrf.space().count();
        // Prefer the Rao–Blackwellized soft histogram when it holds mass
        // (the sampler provided conditionals); otherwise use label counts.
        if let Some(soft) = &self.soft_histograms {
            if soft.iter().any(|&v| v > 0.0) {
                return Some(
                    (0..self.mrf.grid().len())
                        .map(|site| {
                            let row = &soft[site * m..(site + 1) * m];
                            let best = row
                                .iter()
                                .enumerate()
                                .max_by(|a, b| a.1.total_cmp(b.1))
                                .map(|(i, _)| i)
                                .unwrap_or(0);
                            Label::new(best as u8)
                        })
                        .collect(),
                );
            }
        }
        let hist = self.histograms.as_ref()?;
        Some(
            (0..self.mrf.grid().len())
                .map(|site| {
                    let row = &hist[site * m..(site + 1) * m];
                    let best = row
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, c)| **c)
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    Label::new(best as u8)
                })
                .collect(),
        )
    }

    /// Consumes the chain into a [`ChainResult`].
    pub fn result(self) -> ChainResult {
        let map_estimate = self.map_estimate();
        ChainResult {
            map_estimate,
            labels: self.labels,
            energy_trace: self.energy_trace,
            iterations: self.iteration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::SoftmaxGibbs;
    use mogs_mrf::{Grid2D, LabelSpace, SmoothnessPrior};

    fn striped_mrf(width: usize, height: usize) -> MarkovRandomField<impl SingletonPotential> {
        MarkovRandomField::builder(Grid2D::new(width, height), LabelSpace::scalar(2))
            .prior(SmoothnessPrior::potts(0.4))
            .singleton(move |site: usize, label: Label| {
                let want = if (site % width) < width / 2 { 0 } else { 1 };
                if label.value() == want {
                    0.0
                } else {
                    2.5
                }
            })
            .build()
    }

    #[test]
    fn chain_reduces_energy() {
        let mrf = striped_mrf(10, 10);
        let mut chain = McmcChain::new(&mrf, SoftmaxGibbs::new(), ChainConfig::default());
        chain.run(30);
        let trace = chain.energy_trace();
        assert_eq!(trace.len(), 30);
        assert!(trace[29] < trace[0]);
    }

    #[test]
    fn map_estimate_beats_single_sample_noise() {
        let mrf = striped_mrf(10, 10);
        let config = ChainConfig {
            burn_in: 10,
            seed: 3,
            ..ChainConfig::default()
        };
        let mut chain = McmcChain::new(&mrf, SoftmaxGibbs::new(), config);
        chain.run(60);
        let map = chain.map_estimate().expect("modes tracked");
        let accuracy = |labels: &[Label]| {
            labels
                .iter()
                .enumerate()
                .filter(|(site, l)| {
                    let want = if (site % 10) < 5 { 0 } else { 1 };
                    l.value() == want
                })
                .count() as f64
                / labels.len() as f64
        };
        assert!(accuracy(&map) > 0.95, "MAP accuracy {}", accuracy(&map));
    }

    #[test]
    fn burn_in_defers_mode_tracking() {
        let mrf = striped_mrf(6, 6);
        let config = ChainConfig {
            burn_in: 5,
            ..ChainConfig::default()
        };
        let mut chain = McmcChain::new(&mrf, SoftmaxGibbs::new(), config);
        chain.run(3);
        assert!(
            chain.map_estimate().is_none(),
            "no samples before burn-in completes"
        );
        chain.run(5);
        assert!(chain.map_estimate().is_some());
    }

    #[test]
    fn parallel_chain_matches_quality() {
        let mrf = striped_mrf(10, 10);
        let config = ChainConfig {
            threads: 4,
            seed: 9,
            ..ChainConfig::default()
        };
        let mut chain = McmcChain::new(&mrf, SoftmaxGibbs::new(), config);
        chain.run(40);
        let e_seq = {
            let mut c = McmcChain::new(
                &mrf,
                SoftmaxGibbs::new(),
                ChainConfig {
                    seed: 9,
                    ..ChainConfig::default()
                },
            );
            c.run(40);
            *c.energy_trace().last().unwrap()
        };
        let e_par = *chain.energy_trace().last().unwrap();
        // Same model, both converged: energies should be in the same band.
        assert!((e_par - e_seq).abs() < 0.5 * e_seq.abs().max(20.0));
    }

    #[test]
    fn result_captures_everything() {
        let mrf = striped_mrf(6, 6);
        let mut chain = McmcChain::new(&mrf, SoftmaxGibbs::new(), ChainConfig::default());
        chain.run(5);
        let result = chain.result();
        assert_eq!(result.iterations, 5);
        assert_eq!(result.energy_trace.len(), 5);
        assert_eq!(result.labels.len(), 36);
        assert!(result.map_estimate.is_some());
    }

    #[test]
    fn rao_blackwell_map_matches_or_beats_counting_on_short_runs() {
        // Same model, same short budget: the RB estimator's lower variance
        // should give an equally good or better MAP.
        let mrf = striped_mrf(10, 10);
        let accuracy = |labels: &[Label]| {
            labels
                .iter()
                .enumerate()
                .filter(|(site, l)| {
                    let want = if (site % 10) < 5 { 0 } else { 1 };
                    l.value() == want
                })
                .count() as f64
                / labels.len() as f64
        };
        let run = |rao_blackwell: bool| {
            let config = ChainConfig {
                burn_in: 2,
                rao_blackwell,
                seed: 11,
                ..ChainConfig::default()
            };
            let mut chain = McmcChain::new(&mrf, SoftmaxGibbs::new(), config);
            chain.run(8);
            accuracy(&chain.map_estimate().expect("tracked"))
        };
        let counted = run(false);
        let rb = run(true);
        assert!(rb >= counted - 0.02, "RB {rb} vs counted {counted}");
        assert!(rb > 0.9, "RB accuracy {rb}");
    }

    #[test]
    fn rao_blackwell_falls_back_without_conditionals() {
        // Metropolis has no closed-form conditional: the soft histogram
        // stays empty and the count-based estimate is returned.
        let mrf = striped_mrf(6, 6);
        let config = ChainConfig {
            rao_blackwell: true,
            seed: 3,
            ..ChainConfig::default()
        };
        let mut chain = McmcChain::new(&mrf, crate::sampler::Metropolis::new(), config);
        chain.run(5);
        assert!(
            chain.map_estimate().is_some(),
            "fallback must still produce a MAP"
        );
    }

    #[test]
    fn disabled_mode_tracking_returns_none() {
        let mrf = striped_mrf(6, 6);
        let config = ChainConfig {
            track_modes: false,
            ..ChainConfig::default()
        };
        let mut chain = McmcChain::new(&mrf, SoftmaxGibbs::new(), config);
        chain.run(5);
        assert!(chain.map_estimate().is_none());
    }
}

//! Convergence diagnostics for MCMC traces.
//!
//! MCMC "converges to an exact result" only in the limit; these utilities
//! quantify how close a finite chain is: autocorrelation of the energy
//! trace, integrated autocorrelation time, effective sample size, and a
//! Geweke-style mean-stability z-score. They back the quality experiments
//! (DESIGN.md A3) comparing software Gibbs against the RSU-G sampler.

/// Sample mean of a series.
pub fn mean(series: &[f64]) -> f64 {
    if series.is_empty() {
        return f64::NAN;
    }
    series.iter().sum::<f64>() / series.len() as f64
}

/// Unbiased sample variance.
pub fn variance(series: &[f64]) -> f64 {
    if series.len() < 2 {
        return f64::NAN;
    }
    let m = mean(series);
    series.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (series.len() - 1) as f64
}

/// Normalized autocorrelation of the series at the given lag, in `[-1, 1]`.
///
/// Returns 0 for lags at or beyond the series length, or if the series has
/// no variance.
pub fn autocorrelation(series: &[f64], lag: usize) -> f64 {
    let n = series.len();
    if lag >= n || n < 2 {
        return if lag == 0 { 1.0 } else { 0.0 };
    }
    let m = mean(series);
    let denom: f64 = series.iter().map(|x| (x - m) * (x - m)).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let num: f64 = series[..n - lag]
        .iter()
        .zip(&series[lag..])
        .map(|(a, b)| (a - m) * (b - m))
        .sum();
    num / denom
}

/// Integrated autocorrelation time `τ = 1 + 2 Σ ρ(k)`, summing with
/// Geyer's initial-positive-sequence truncation (stop at the first
/// non-positive autocorrelation).
pub fn integrated_autocorrelation_time(series: &[f64]) -> f64 {
    let mut tau = 1.0;
    for lag in 1..series.len() {
        let rho = autocorrelation(series, lag);
        if rho <= 0.0 {
            break;
        }
        tau += 2.0 * rho;
    }
    tau
}

/// Effective sample size `n / τ`.
pub fn effective_sample_size(series: &[f64]) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    series.len() as f64 / integrated_autocorrelation_time(series)
}

/// Geweke-style stability z-score: compares the mean of the first
/// `early_frac` of the series against the last `late_frac`, normalized by
/// their pooled standard error. |z| ≲ 2 is consistent with stationarity.
///
/// # Panics
///
/// Panics if the fractions are outside `(0, 1)` or overlap.
pub fn geweke_z(series: &[f64], early_frac: f64, late_frac: f64) -> f64 {
    assert!(
        early_frac > 0.0 && early_frac < 1.0,
        "early fraction in (0, 1)"
    );
    assert!(
        late_frac > 0.0 && late_frac < 1.0,
        "late fraction in (0, 1)"
    );
    assert!(early_frac + late_frac <= 1.0, "windows must not overlap");
    let n = series.len();
    let n_early = ((n as f64) * early_frac).max(2.0) as usize;
    let n_late = ((n as f64) * late_frac).max(2.0) as usize;
    let early = &series[..n_early.min(n)];
    let late = &series[n - n_late.min(n)..];
    let se = (variance(early) / early.len() as f64 + variance(late) / late.len() as f64).sqrt();
    if se == 0.0 {
        return 0.0;
    }
    (mean(early) - mean(late)) / se
}

/// Gelman–Rubin potential scale reduction factor `R̂` over parallel
/// chains' scalar traces (e.g. total energy).
///
/// Values near 1 indicate the chains have mixed into the same
/// distribution; `R̂ > 1.1` is the conventional "not converged" flag.
///
/// # Panics
///
/// Panics with fewer than two chains, chains of differing lengths, or
/// chains shorter than two samples.
pub fn potential_scale_reduction(chains: &[Vec<f64>]) -> f64 {
    assert!(chains.len() >= 2, "need at least two chains");
    let n = chains[0].len();
    assert!(n >= 2, "chains need at least two samples");
    assert!(
        chains.iter().all(|c| c.len() == n),
        "chains must have equal length"
    );
    let m = chains.len() as f64;
    let nf = n as f64;
    let chain_means: Vec<f64> = chains.iter().map(|c| mean(c)).collect();
    let grand_mean = mean(&chain_means);
    // Between-chain variance B and within-chain variance W.
    let b = nf / (m - 1.0)
        * chain_means
            .iter()
            .map(|x| (x - grand_mean) * (x - grand_mean))
            .sum::<f64>();
    let w = chains.iter().map(|c| variance(c)).sum::<f64>() / m;
    if w == 0.0 {
        return 1.0;
    }
    let var_plus = (nf - 1.0) / nf * w + b / nf;
    (var_plus / w).sqrt()
}

/// Split-R̂: every chain's trace is halved and
/// [`potential_scale_reduction`] is computed over the `2m` half-chains.
/// Splitting additionally detects within-chain drift — a single slowly
/// trending chain inflates split-R̂ even when the full-chain means agree
/// — and it gives a meaningful statistic for a *single* chain (its two
/// halves act as the "parallel chains"). Odd-length traces drop their
/// oldest sample so the halves match.
///
/// # Panics
///
/// Panics with no chains, with chains of differing lengths, or with
/// chains shorter than four samples (each half needs two).
pub fn split_potential_scale_reduction(chains: &[Vec<f64>]) -> f64 {
    assert!(!chains.is_empty(), "need at least one chain");
    let n = chains[0].len();
    assert!(n >= 4, "chains need at least four samples to split");
    assert!(
        chains.iter().all(|c| c.len() == n),
        "chains must have equal length"
    );
    let keep = n - (n % 2);
    let halves: Vec<Vec<f64>> = chains
        .iter()
        .flat_map(|c| {
            let (a, b) = c[n - keep..].split_at(keep / 2);
            [a.to_vec(), b.to_vec()]
        })
        .collect();
    potential_scale_reduction(&halves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn white_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen::<f64>() - 0.5).collect()
    }

    fn ar1(n: usize, phi: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = 0.0;
        (0..n)
            .map(|_| {
                x = phi * x + (rng.gen::<f64>() - 0.5);
                x
            })
            .collect()
    }

    #[test]
    fn autocorrelation_at_zero_is_one() {
        let s = white_noise(500, 1);
        assert!((autocorrelation(&s, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn white_noise_decorrelates_quickly() {
        let s = white_noise(5000, 2);
        assert!(autocorrelation(&s, 1).abs() < 0.05);
        let ess = effective_sample_size(&s);
        assert!(ess > 0.8 * s.len() as f64, "ESS {ess} of {}", s.len());
    }

    #[test]
    fn ar1_has_predictable_autocorrelation() {
        let phi = 0.8;
        let s = ar1(20_000, phi, 3);
        let rho1 = autocorrelation(&s, 1);
        assert!((rho1 - phi).abs() < 0.05, "lag-1 autocorr {rho1} vs {phi}");
    }

    #[test]
    fn correlated_chain_has_smaller_ess() {
        let fast = white_noise(2000, 4);
        let slow = ar1(2000, 0.9, 5);
        assert!(effective_sample_size(&slow) < effective_sample_size(&fast) / 2.0);
    }

    #[test]
    fn geweke_flags_trend() {
        let stationary = white_noise(2000, 6);
        let trending: Vec<f64> = (0..2000).map(|i| i as f64 * 0.01 + stationary[i]).collect();
        assert!(geweke_z(&stationary, 0.1, 0.5).abs() < 3.0);
        assert!(geweke_z(&trending, 0.1, 0.5).abs() > 5.0);
    }

    #[test]
    fn constant_series_edge_cases() {
        let s = vec![3.0; 100];
        assert_eq!(autocorrelation(&s, 1), 0.0);
        assert_eq!(geweke_z(&s, 0.1, 0.5), 0.0);
    }

    #[test]
    fn empty_series_behaviour() {
        assert!(mean(&[]).is_nan());
        assert_eq!(effective_sample_size(&[]), 0.0);
    }

    #[test]
    fn psrf_near_one_for_identical_distributions() {
        let chains: Vec<Vec<f64>> = (0..4).map(|i| white_noise(2000, 10 + i)).collect();
        let r = potential_scale_reduction(&chains);
        assert!(r < 1.05, "R-hat {r}");
    }

    #[test]
    fn psrf_flags_disagreeing_chains() {
        let mut a = white_noise(2000, 20);
        let b = white_noise(2000, 21);
        for x in &mut a {
            *x += 5.0; // chain a has a different mean: not mixed
        }
        let r = potential_scale_reduction(&[a, b]);
        assert!(r > 1.5, "R-hat {r}");
    }

    #[test]
    fn psrf_constant_chains_is_one() {
        let chains = vec![vec![2.0; 100], vec![2.0; 100]];
        assert_eq!(potential_scale_reduction(&chains), 1.0);
    }

    #[test]
    #[should_panic(expected = "need at least two chains")]
    fn psrf_rejects_single_chain() {
        potential_scale_reduction(&[vec![1.0, 2.0]]);
    }

    #[test]
    fn split_psrf_near_one_for_stationary_chains() {
        let chains: Vec<Vec<f64>> = (0..4).map(|i| white_noise(2000, 30 + i)).collect();
        let r = split_potential_scale_reduction(&chains);
        assert!(r < 1.05, "split R-hat {r}");
    }

    #[test]
    fn split_psrf_flags_within_chain_drift_that_plain_psrf_misses() {
        // Two chains drifting identically: their full-trace means agree,
        // so plain R-hat stays near 1 — but each chain's halves disagree.
        let chains: Vec<Vec<f64>> = (0..2)
            .map(|i| {
                white_noise(2000, 40 + i)
                    .into_iter()
                    .enumerate()
                    .map(|(t, x)| t as f64 * 0.01 + x)
                    .collect()
            })
            .collect();
        let plain = potential_scale_reduction(&chains);
        let split = split_potential_scale_reduction(&chains);
        assert!(plain < 1.2, "plain R-hat {plain} shouldn't flag");
        assert!(split > 1.5, "split R-hat {split} must flag the drift");
    }

    #[test]
    fn split_psrf_accepts_a_single_chain() {
        let r = split_potential_scale_reduction(&[white_noise(1000, 50)]);
        assert!(r < 1.05, "single stationary chain: split R-hat {r}");
    }

    #[test]
    fn split_psrf_drops_the_oldest_sample_of_odd_traces() {
        let even = vec![vec![1.0, 2.0, 1.5, 2.5]];
        let odd = vec![vec![99.0, 1.0, 2.0, 1.5, 2.5]];
        assert_eq!(
            split_potential_scale_reduction(&even),
            split_potential_scale_reduction(&odd)
        );
    }
}

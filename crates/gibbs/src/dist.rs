//! From-scratch continuous distribution samplers (the Table 1 baselines).
//!
//! The paper's Table 1 measures the cost of drawing one sample from the
//! C++11 `<random>` exponential, normal, and gamma distributions on an
//! Intel E5-2640 (588 / 633 / 800 cycles) to motivate hardware sampling.
//! This module reimplements the standard algorithms behind those library
//! facilities — inverse transform, Marsaglia's polar method, and
//! Marsaglia–Tsang squeeze — so the benchmark harness can regenerate the
//! table's shape on any machine.

use rand::Rng;

/// Exponential distribution sampled by inverse transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// An exponential with the given rate `λ > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        Exponential { rate }
    }

    /// The rate `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 1 - u ∈ (0, 1]: log is finite.
        -(1.0 - rng.gen::<f64>()).ln() / self.rate
    }
}

/// Normal distribution sampled by Marsaglia's polar method.
///
/// The polar method produces samples in pairs; the spare is cached, so the
/// sampler is stateful (mirroring `std::normal_distribution`'s behaviour).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
    spare: Option<f64>,
}

impl Normal {
    /// A normal with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is not strictly positive and finite or `mean` is
    /// not finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(mean.is_finite(), "mean must be finite");
        assert!(
            std_dev.is_finite() && std_dev > 0.0,
            "std dev must be positive"
        );
        Normal {
            mean,
            std_dev,
            spare: None,
        }
    }

    /// The standard normal.
    pub fn standard() -> Self {
        Normal::new(0.0, 1.0)
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return self.mean + self.std_dev * z;
        }
        loop {
            let u = 2.0 * rng.gen::<f64>() - 1.0;
            let v = 2.0 * rng.gen::<f64>() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * factor);
                return self.mean + self.std_dev * (u * factor);
            }
        }
    }
}

/// Gamma distribution sampled by the Marsaglia–Tsang (2000) squeeze method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// A gamma with shape `k > 0` and scale `θ > 0`.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not strictly positive and finite.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape.is_finite() && shape > 0.0, "shape must be positive");
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        Gamma { shape, scale }
    }

    /// The shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter `θ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.shape < 1.0 {
            // Boost: Gamma(k) = Gamma(k+1) · U^(1/k).
            let boosted = Gamma {
                shape: self.shape + 1.0,
                scale: self.scale,
            };
            let u: f64 = 1.0 - rng.gen::<f64>();
            return boosted.sample(rng) * u.powf(1.0 / self.shape);
        }
        let d = self.shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        let mut normal = Normal::standard();
        loop {
            let x = normal.sample(rng);
            let t = 1.0 + c * x;
            if t <= 0.0 {
                continue;
            }
            let v = t * t * t;
            let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
            let x2 = x * x;
            // Squeeze step accepts the vast majority without the log.
            if u < 1.0 - 0.0331 * x2 * x2 || u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
                return d * v * self.scale;
            }
        }
    }
}

/// Poisson distribution: Knuth's product method for small means, the
/// PTRS transformed-rejection method's simpler cousin (normal
/// approximation with correction) for large means.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    mean: f64,
}

impl Poisson {
    /// A Poisson with the given mean `λ > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn new(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        Poisson { mean }
    }

    /// The mean `λ`.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.mean < 30.0 {
            // Knuth: count exponential arrivals within unit time.
            let limit = (-self.mean).exp();
            let mut product: f64 = rng.gen();
            let mut count = 0u64;
            while product > limit {
                product *= rng.gen::<f64>();
                count += 1;
            }
            count
        } else {
            // Split λ recursively: λ = 16 + (λ − 16); the recursion keeps
            // every base draw in the accurate small-mean regime and the
            // sum of independent Poissons is Poisson.
            let head = Poisson::new(16.0).sample(rng);
            let tail = Poisson::new(self.mean - 16.0).sample(rng);
            head + tail
        }
    }
}

/// Walker's alias method: O(1) sampling from a fixed discrete
/// distribution after O(n) setup — the classical answer when the *same*
/// distribution is drawn from many times (contrast with Gibbs
/// conditionals, which change per site and are what the RSU-G
/// accelerates).
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds the table for the given non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, has a negative/non-finite entry, or
    /// sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one outcome");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = (0..n).filter(|&i| prob[i] < 1.0).collect();
        let mut large: Vec<usize> = (0..n).filter(|&i| prob[i] >= 1.0).collect();
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers pin to probability 1.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome index in O(1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const N: usize = 60_000;

    fn moments(samples: impl Iterator<Item = f64>) -> (f64, f64) {
        let xs: Vec<f64> = samples.collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn exponential_moments() {
        let d = Exponential::new(2.5);
        let mut rng = StdRng::seed_from_u64(1);
        let (mean, var) = moments((0..N).map(|_| d.sample(&mut rng)));
        assert!((mean - 0.4).abs() < 0.005, "mean {mean}");
        assert!((var - 0.16).abs() < 0.01, "var {var}");
    }

    #[test]
    fn exponential_is_nonnegative() {
        let d = Exponential::new(0.1);
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..10_000).all(|_| d.sample(&mut rng) >= 0.0));
    }

    #[test]
    fn normal_moments() {
        let mut d = Normal::new(3.0, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        let (mean, var) = moments((0..N).map(|_| d.sample(&mut rng)));
        assert!((mean - 3.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn normal_tail_symmetry() {
        let mut d = Normal::standard();
        let mut rng = StdRng::seed_from_u64(4);
        let above = (0..N).filter(|_| d.sample(&mut rng) > 0.0).count();
        let frac = above as f64 / N as f64;
        assert!((frac - 0.5).abs() < 0.01, "P(X>0) = {frac}");
    }

    #[test]
    fn gamma_moments_shape_above_one() {
        let d = Gamma::new(4.0, 0.5);
        let mut rng = StdRng::seed_from_u64(5);
        let (mean, var) = moments((0..N).map(|_| d.sample(&mut rng)));
        assert!((mean - 2.0).abs() < 0.02, "mean {mean}"); // kθ
        assert!((var - 1.0).abs() < 0.05, "var {var}"); // kθ²
    }

    #[test]
    fn gamma_moments_shape_below_one() {
        let d = Gamma::new(0.5, 2.0);
        let mut rng = StdRng::seed_from_u64(6);
        let (mean, var) = moments((0..N).map(|_| d.sample(&mut rng)));
        assert!((mean - 1.0).abs() < 0.03, "mean {mean}");
        assert!((var - 2.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn gamma_shape_one_is_exponential() {
        // Gamma(1, θ) ≡ Exponential(1/θ): compare empirical CDF at median.
        let g = Gamma::new(1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let below = (0..N)
            .filter(|_| g.sample(&mut rng) < std::f64::consts::LN_2)
            .count();
        let frac = below as f64 / N as f64;
        assert!((frac - 0.5).abs() < 0.01, "median check {frac}");
    }

    #[test]
    fn poisson_small_mean_moments() {
        let d = Poisson::new(3.5);
        let mut rng = StdRng::seed_from_u64(8);
        let (mean, var) = moments((0..N).map(|_| d.sample(&mut rng) as f64));
        assert!((mean - 3.5).abs() < 0.04, "mean {mean}");
        assert!((var - 3.5).abs() < 0.1, "var {var}");
    }

    #[test]
    fn poisson_large_mean_moments() {
        let d = Poisson::new(120.0);
        let mut rng = StdRng::seed_from_u64(9);
        let (mean, var) = moments((0..N).map(|_| d.sample(&mut rng) as f64));
        assert!((mean - 120.0).abs() < 0.3, "mean {mean}");
        assert!((var - 120.0).abs() < 3.0, "var {var}");
    }

    #[test]
    fn alias_table_matches_weights() {
        let table = AliasTable::new(&[1.0, 2.0, 0.0, 5.0]);
        let mut rng = StdRng::seed_from_u64(10);
        let mut counts = [0usize; 4];
        for _ in 0..N {
            counts[table.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[2], 0, "zero-weight outcome never drawn");
        for (i, expect) in [(0usize, 0.125), (1, 0.25), (3, 0.625)] {
            let p = counts[i] as f64 / N as f64;
            assert!((p - expect).abs() < 0.01, "outcome {i}: {p} vs {expect}");
        }
    }

    #[test]
    fn alias_table_uniform_case() {
        let table = AliasTable::new(&[1.0; 7]);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 7];
        for _ in 0..N {
            counts[table.sample(&mut rng)] += 1;
        }
        for c in counts {
            let p = c as f64 / N as f64;
            assert!((p - 1.0 / 7.0).abs() < 0.01, "{p}");
        }
    }

    #[test]
    fn alias_single_outcome() {
        let table = AliasTable::new(&[2.0]);
        let mut rng = StdRng::seed_from_u64(12);
        assert_eq!(table.sample(&mut rng), 0);
        assert_eq!(table.len(), 1);
    }

    #[test]
    #[should_panic(expected = "weights must not all be zero")]
    fn alias_rejects_zero_weights() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "mean must be positive")]
    fn poisson_rejects_zero_mean() {
        Poisson::new(0.0);
    }

    #[test]
    #[should_panic(expected = "shape must be positive")]
    fn gamma_rejects_zero_shape() {
        Gamma::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "std dev must be positive")]
    fn normal_rejects_zero_std() {
        Normal::new(0.0, 0.0);
    }
}

//! Chunk-batched sweep kernels: evaluate a whole chunk, then draw.
//!
//! The per-site [`LabelSampler`] contract is the right unit for fidelity
//! studies, but an engine hot loop pays for it per visit: one virtual-ish
//! call, one stack energy buffer, one branchy scan per site. A
//! [`SweepKernel`] amortizes that over a chunk of same-phase sites — the
//! caller evaluates all `M` conditional energies for every site of the
//! chunk into one flat structure-of-arrays buffer (`site`-major rows of
//! `m`), and the kernel draws every label in one pass, reusing
//! caller-owned scratch ([`KernelArena`]) so the inner loops are
//! branch-light and allocation-free.
//!
//! # Bit-identity contract
//!
//! `sample_chunk` must be **bit-identical** to the per-site reference
//! loop (the trait's default body): same labels out, same RNG consumption
//! order and count. Batched implementations split the work into RNG-free
//! evaluation passes (softmax weights, RSU intensity codes) followed by a
//! sequential per-site draw pass that consumes the RNG exactly as the
//! per-site path would. The engine's correctness gate (`repro
//! engine-bench`, the kernel-identity proptests) holds every
//! implementation to this.

use crate::sampler::LabelSampler;
use mogs_mrf::label::MAX_LABELS;
use mogs_mrf::Label;
use rand::Rng;

/// A unit-level device fault, as a physical RSU would exhibit it.
///
/// Faults are injected through [`SweepKernel::inject_unit_fault`]; kernels
/// without addressable units (the exact software samplers) ignore them.
/// The semantics are fixed here so every backend degrades the same way:
///
/// - [`Dead`](UnitFault::Dead): the unit's detector never fires — every
///   draw keeps the current label and consumes no randomness (the
///   hardware analogue of an all-saturated TTF window).
/// - [`Stuck`](UnitFault::Stuck): the selection stage latches one label
///   regardless of the energies, consuming no randomness.
/// - [`DarkCount`](UnitFault::DarkCount): the SPAD fires spuriously at
///   `rate_per_ns`; when the dark event beats every real label's
///   time-to-first-fire, the draw lands on a uniformly random label.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UnitFault {
    /// The unit never fires; draws keep the current label.
    Dead,
    /// The unit always returns this label.
    Stuck(Label),
    /// Spurious detector events competing with the real labels.
    DarkCount {
        /// Dark-count rate in events per nanosecond.
        rate_per_ns: f64,
    },
}

/// Reusable kernel-internal buffers (weights, intensity codes), owned by
/// the caller and grown on demand.
///
/// Separate from [`KernelArena`] so a kernel can borrow the scratch
/// mutably while reading the arena's energy/label buffers.
#[derive(Debug, Default, Clone)]
pub struct KernelScratch {
    /// Intensity codes, `site`-major rows of `m` (RSU-G kernels).
    pub codes: Vec<u8>,
}

impl KernelScratch {
    /// An empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        KernelScratch::default()
    }

    /// Grows the code buffer to at least `len` entries and returns it.
    pub fn codes_mut(&mut self, len: usize) -> &mut [u8] {
        if self.codes.len() < len {
            self.codes.resize(len, 0);
        }
        &mut self.codes[..len]
    }
}

/// Per-worker scratch arena for chunk-batched sweeps: the energy
/// structure-of-arrays, the chunk's current and output labels, and the
/// kernel-internal [`KernelScratch`]. One arena lives on each engine
/// worker thread and is reused across phases and jobs, so the hot path
/// never allocates after warm-up.
#[derive(Debug, Default, Clone)]
pub struct KernelArena {
    /// Conditional energies, `site`-major: entry `j * m + l` is label `l`
    /// of the chunk's `j`-th site.
    pub energies: Vec<f64>,
    /// The chunk's pre-phase labels, one per site.
    pub current: Vec<Label>,
    /// The kernel's drawn labels, one per site.
    pub out: Vec<Label>,
    /// Kernel-internal buffers.
    pub scratch: KernelScratch,
}

impl KernelArena {
    /// An empty arena; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        KernelArena::default()
    }

    /// Sizes the buffers for a chunk of `sites` sites with `m` labels.
    /// Growth-only, so a worker's arena settles at the largest chunk it
    /// has seen.
    pub fn prepare(&mut self, sites: usize, m: usize) {
        let cells = sites * m;
        if self.energies.len() < cells {
            self.energies.resize(cells, 0.0);
        }
        if self.current.len() < sites {
            self.current.resize(sites, Label::new(0));
            self.out.resize(self.current.len(), Label::new(0));
        }
    }

    /// Splits the arena into the borrows `sample_chunk` wants: energies
    /// and current labels (shared), output labels and scratch (mutable),
    /// each trimmed to the chunk's `sites` × `m` shape.
    pub fn split(
        &mut self,
        sites: usize,
        m: usize,
    ) -> (&[f64], &[Label], &mut [Label], &mut KernelScratch) {
        (
            &self.energies[..sites * m],
            &self.current[..sites],
            &mut self.out[..sites],
            &mut self.scratch,
        )
    }
}

/// A [`LabelSampler`] that can draw a whole chunk of same-phase sites
/// from a flat energy buffer.
///
/// The default body *is* the per-site reference loop, so every sampler
/// gets a correct (if unbatched) kernel for free; batched overrides must
/// preserve it bit for bit — see the module docs.
pub trait SweepKernel: LabelSampler {
    /// Draws new labels for a whole chunk.
    ///
    /// `energies` holds `current.len()` site-major rows of `m`
    /// conditional energies; `out[j]` receives the label drawn for the
    /// chunk's `j`-th site. Implementations consume `rng` site by site in
    /// chunk order, exactly like the reference loop.
    #[allow(clippy::too_many_arguments)] // the kernel ABI: buffers are flat slices on purpose
    fn sample_chunk<R: Rng + ?Sized>(
        &mut self,
        energies: &[f64],
        m: usize,
        temperature: f64,
        current: &[Label],
        out: &mut [Label],
        scratch: &mut KernelScratch,
        rng: &mut R,
    ) {
        let _ = scratch;
        debug_assert_eq!(energies.len(), current.len() * m);
        debug_assert_eq!(out.len(), current.len());
        for (j, (&cur, slot)) in current.iter().zip(out.iter_mut()).enumerate() {
            *slot = self.sample_label(&energies[j * m..(j + 1) * m], temperature, cur, rng);
        }
    }

    /// Number of addressable hardware units behind this kernel.
    ///
    /// Exact software samplers report `1`; an RSU pool reports its
    /// replica count. Unit indices passed to the other fault hooks are
    /// `0..unit_count()`.
    fn unit_count(&self) -> usize {
        1
    }

    /// Injects a device fault into one unit.
    ///
    /// Returns `true` when the kernel has addressable units and applied
    /// the fault; the default (exact samplers) ignores it and returns
    /// `false`.
    fn inject_unit_fault(&mut self, unit: usize, fault: UnitFault) -> bool {
        let _ = (unit, fault);
        false
    }

    /// Restricts the kernel's unit rotation to the units flagged live.
    ///
    /// Returns the number of units actually serving after the call. The
    /// default ignores the mask and keeps every unit live. Implementors
    /// must refuse an all-dead mask (return `0` without changing state)
    /// so callers can fail over instead of wedging the kernel.
    fn set_live_units(&mut self, live: &[bool]) -> usize {
        let _ = live;
        self.unit_count()
    }

    /// Draws `draws` labels for one fixed energy row on a single unit and
    /// returns the empirical label distribution (length [`MAX_LABELS`],
    /// indexed by label value), or `None` when the kernel has no
    /// per-unit probe (exact samplers).
    ///
    /// The probe uses its own RNG seeded from `seed` — it never touches
    /// a job's sampling stream — so for a fixed `(energies, draws,
    /// seed)` the result is a pure function of the unit's device state.
    fn probe_unit(&self, unit: usize, energies: &[f64], draws: u32, seed: u64) -> Option<Vec<f64>> {
        let _ = (unit, energies, draws, seed);
        None
    }

    /// Swaps this kernel for an exact software implementation, if it has
    /// one to fail over to. Returns `true` when the swap happened; the
    /// default (already-exact kernels, or kernels with no fallback)
    /// returns `false`.
    fn fail_over_to_exact(&mut self) -> bool {
        false
    }

    /// Exports the per-unit device-fault state, indexed by unit, for
    /// checkpointing. Kernels without addressable fault state (the exact
    /// software samplers) return an empty vector; a pool returns one
    /// entry per unit, `None` for healthy units. Re-injecting the
    /// returned faults through [`SweepKernel::inject_unit_fault`] into a
    /// pristine kernel must reproduce the exported device state exactly
    /// — that is what bit-identical restore relies on.
    fn unit_faults(&self) -> Vec<Option<UnitFault>> {
        Vec::new()
    }
}

/// Exact softmax Gibbs, batched: one fused pass per site row computes the
/// min-shifted Boltzmann weights and draws by inverse CDF.
///
/// Bit-identity with [`SoftmaxGibbs::sample_label`] is preserved
/// operation for operation, with one legitimate shortcut: when the row
/// minimum is finite and the temperature positive, the minimal energy's
/// weight is exactly `exp(-0.0/T) = 1.0` by IEEE-754, so the `exp` call
/// is skipped for it (at least one of the `M` exponentials per site).
impl SweepKernel for crate::sampler::SoftmaxGibbs {
    fn sample_chunk<R: Rng + ?Sized>(
        &mut self,
        energies: &[f64],
        m: usize,
        temperature: f64,
        current: &[Label],
        out: &mut [Label],
        _scratch: &mut KernelScratch,
        rng: &mut R,
    ) {
        debug_assert!(m > 0 && m <= usize::from(MAX_LABELS));
        debug_assert_eq!(energies.len(), current.len() * m);
        debug_assert_eq!(out.len(), current.len());
        // The shortcut needs `e - min == 0.0` and `0.0 / T == 0.0`; a
        // non-finite min (empty or all-infinite row) or a zero/NaN
        // temperature would break either step, so those rows take the
        // reference arithmetic unshortened.
        let shortcut = temperature > 0.0;
        // audit:allow(lossy-cast) — array lengths must be const-evaluable
        // and u16 -> usize widening is exact.
        let mut weights = [0.0f64; MAX_LABELS as usize];
        for (j, (&cur, slot)) in current.iter().zip(out.iter_mut()).enumerate() {
            let row = &energies[j * m..(j + 1) * m];
            let min = row.iter().copied().fold(f64::INFINITY, f64::min);
            let fast = shortcut && min.is_finite();
            let mut total = 0.0;
            for (w, e) in weights[..m].iter_mut().zip(row) {
                *w = if fast && *e == min {
                    1.0
                } else {
                    (-(e - min) / temperature).exp()
                };
                total += *w;
            }
            if total <= 0.0 {
                // Degenerate row (all weights underflowed): keep the
                // current label without consuming the RNG, like the
                // reference.
                *slot = cur;
                continue;
            }
            let mut u = rng.gen::<f64>() * total;
            // audit:allow(lossy-cast) — label indices are bounded by
            // `m <= MAX_LABELS (64)`, so they always fit a u8; this is the
            // reference scan cast for cast.
            *slot = 'drawn: {
                for (l, w) in weights[..m].iter().enumerate() {
                    if u < *w {
                        break 'drawn Label::new(l as u8);
                    }
                    u -= w;
                }
                Label::new((m - 1) as u8)
            };
        }
    }
}

/// Metropolis keeps the reference per-site loop: its draw consumes the
/// RNG for the proposal *and* (conditionally) the acceptance test, which
/// leaves nothing RNG-free to batch.
impl SweepKernel for crate::sampler::Metropolis {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{Metropolis, SoftmaxGibbs};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runs the trait's default body (the per-site reference loop) no
    /// matter what `sample_chunk` override `L` carries.
    fn reference_chunk<L: LabelSampler, R: Rng + ?Sized>(
        sampler: &mut L,
        energies: &[f64],
        m: usize,
        temperature: f64,
        current: &[Label],
        out: &mut [Label],
        rng: &mut R,
    ) {
        for (j, (&cur, slot)) in current.iter().zip(out.iter_mut()).enumerate() {
            *slot = sampler.sample_label(&energies[j * m..(j + 1) * m], temperature, cur, rng);
        }
    }

    fn assert_bit_identical<L: SweepKernel + Clone>(
        sampler: &L,
        energies: &[f64],
        m: usize,
        temperature: f64,
        current: &[Label],
        seed: u64,
    ) {
        let sites = current.len();
        let mut expect = vec![Label::new(0); sites];
        let mut got = vec![Label::new(0); sites];
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let mut reference = sampler.clone();
        let mut batched = sampler.clone();
        reference_chunk(
            &mut reference,
            energies,
            m,
            temperature,
            current,
            &mut expect,
            &mut rng_a,
        );
        let mut scratch = KernelScratch::new();
        batched.sample_chunk(
            energies,
            m,
            temperature,
            current,
            &mut got,
            &mut scratch,
            &mut rng_b,
        );
        assert_eq!(got, expect, "labels diverged");
        assert_eq!(
            rng_a.gen::<u64>(),
            rng_b.gen::<u64>(),
            "RNG consumption diverged"
        );
    }

    #[test]
    fn arena_growth_is_monotonic() {
        let mut arena = KernelArena::new();
        arena.prepare(10, 4);
        assert!(arena.energies.len() >= 40);
        arena.prepare(3, 2);
        assert!(arena.energies.len() >= 40, "arena must never shrink");
        let (e, c, o, _) = arena.split(3, 2);
        assert_eq!(e.len(), 6);
        assert_eq!(c.len(), 3);
        assert_eq!(o.len(), 3);
    }

    #[test]
    fn softmax_kernel_matches_reference_on_degenerate_rows() {
        // Energies so large every weight underflows: the reference keeps
        // the current label and consumes no RNG.
        let m = 3;
        let energies = vec![0.0, 1e300, 1e300, 1e300, 0.0, 1e300];
        let current = vec![Label::new(2), Label::new(1)];
        assert_bit_identical(&SoftmaxGibbs::new(), &energies, m, 1.0, &current, 7);
    }

    #[test]
    fn softmax_kernel_matches_reference_at_zero_temperature() {
        // T = 0 sends the shortcut's `0.0 / T` to NaN territory; the
        // kernel must fall back to the reference arithmetic.
        let energies = vec![1.0, 2.0, 1.0, 3.0];
        let current = vec![Label::new(1), Label::new(0)];
        assert_bit_identical(&SoftmaxGibbs::new(), &energies, 2, 0.0, &current, 9);
    }

    #[test]
    fn metropolis_default_body_is_the_reference() {
        let energies = vec![0.5, 1.5, 0.0, 2.0, 1.0, 0.25];
        let current = vec![Label::new(0), Label::new(1), Label::new(0)];
        assert_bit_identical(&Metropolis::new(), &energies, 2, 1.0, &current, 11);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn softmax_kernel_bit_identical(
            sites in 1usize..24,
            m in 2usize..=64,
            temperature in 0.05f64..8.0,
            seed in 0u64..u64::MAX,
        ) {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
            let energies: Vec<f64> =
                (0..sites * m).map(|_| rng.gen_range(-4.0..12.0)).collect();
            let current: Vec<Label> = (0..sites)
                // audit:allow(lossy-cast) — m <= 64 fits u8.
                .map(|_| Label::new(rng.gen_range(0..m) as u8))
                .collect();
            assert_bit_identical(
                &SoftmaxGibbs::new(), &energies, m, temperature, &current, seed,
            );
        }
    }
}

//! # mogs-gibbs — MCMC engine for MRF inference
//!
//! The software inference substrate of the `mogs` workspace: everything
//! needed to run Markov Chain Monte Carlo over a
//! [`mogs_mrf::MarkovRandomField`], independent of (and as the baseline
//! for) the RSU-G hardware sampler.
//!
//! * [`dist`] — from-scratch samplers for the exponential, normal and gamma
//!   distributions (the paper's Table 1 measures exactly these through the
//!   C++11 `<random>` library; we reimplement the textbook algorithms).
//! * [`sampler`] — the [`LabelSampler`](sampler::LabelSampler) abstraction:
//!   given the `M` conditional energies of a site, draw its new label.
//!   Software implementations: exact softmax Gibbs and Metropolis. The
//!   RSU-G unit in `mogs-core` implements the same trait, so chains can run
//!   on either back end unchanged.
//! * [`kernel`] — the chunk-batched [`SweepKernel`](kernel::SweepKernel)
//!   layer over [`LabelSampler`](sampler::LabelSampler): evaluate a whole
//!   chunk of same-phase sites from a flat energy buffer, then draw every
//!   label, bit-identically to the per-site loop. The engine's hot path.
//! * [`sweep`] — sequential and checkerboard-parallel full-grid sweeps.
//! * [`chain`] — the MCMC driver: iterations, annealing, marginal-MAP mode
//!   tracking, energy traces.
//! * [`schedule`] — temperature schedules (constant, geometric annealing).
//! * [`diagnostics`] — autocorrelation, effective sample size, convergence
//!   checks.
//!
//! ## Example: sampling a two-label field
//!
//! ```
//! use mogs_gibbs::{chain::{ChainConfig, McmcChain}, sampler::SoftmaxGibbs};
//! use mogs_mrf::{Grid2D, Label, LabelSpace, MarkovRandomField, SmoothnessPrior};
//!
//! let mrf = MarkovRandomField::builder(Grid2D::new(8, 8), LabelSpace::scalar(2))
//!     .prior(SmoothnessPrior::potts(0.8))
//!     .singleton(|_s: usize, _l: Label| 0.0)
//!     .build();
//! let config = ChainConfig { seed: 42, ..ChainConfig::default() };
//! let mut chain = McmcChain::new(&mrf, SoftmaxGibbs::new(), config);
//! chain.run(10);
//! assert_eq!(chain.labels().len(), 64);
//! ```

pub mod chain;
pub mod diagnostics;
pub mod dist;
pub mod kernel;
pub mod multichain;
pub mod sampler;
pub mod schedule;
pub mod sweep;
pub mod tempering;

pub use chain::{ChainConfig, ChainResult, McmcChain};
pub use kernel::{KernelArena, KernelScratch, SweepKernel, UnitFault};
pub use multichain::{run_chains, MultiChainResult};
pub use sampler::{LabelSampler, Metropolis, SoftmaxGibbs};
pub use schedule::TemperatureSchedule;
pub use sweep::{checkerboard_sweep, colored_sweep, sequential_sweep};
pub use tempering::{TemperedChains, TemperingConfig};

//! Multi-chain MCMC: independent replicas and convergence assessment.
//!
//! MCMC "converges to an exact result" only asymptotically (§1); the
//! standard practical check runs several independent chains from the same
//! initialization family and compares their between- and within-chain
//! variances (Gelman–Rubin R̂, in [`crate::diagnostics`]). This module
//! runs the replicas — optionally on OS threads, since chains are
//! embarrassingly parallel — and packages the verdict.

use crate::chain::{ChainConfig, ChainResult, McmcChain};
use crate::diagnostics::potential_scale_reduction;
use crate::sampler::LabelSampler;
use mogs_mrf::energy::SingletonPotential;
use mogs_mrf::MarkovRandomField;

/// Result of a multi-chain run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiChainResult {
    /// Per-chain results, in seed order.
    pub chains: Vec<ChainResult>,
    /// Gelman–Rubin R̂ over the post-burn-in energy traces.
    pub r_hat: f64,
}

impl MultiChainResult {
    /// Conventional convergence verdict: `R̂ < threshold` (1.1 is the
    /// usual choice).
    pub fn converged(&self, threshold: f64) -> bool {
        self.r_hat < threshold
    }
}

/// Runs `replicas` independent chains for `iterations` sweeps each, on
/// separate OS threads, and computes R̂ over their post-burn-in energy
/// traces.
///
/// Chain `k` uses `config.seed + k` as its seed; all other configuration
/// is shared. The `burn_in` prefix of each energy trace is discarded
/// before computing R̂.
///
/// # Panics
///
/// Panics if `replicas < 2` or `iterations <= config.burn_in`.
pub fn run_chains<S, L>(
    mrf: &MarkovRandomField<S>,
    sampler: &L,
    config: ChainConfig,
    replicas: usize,
    iterations: usize,
) -> MultiChainResult
where
    S: SingletonPotential + Sync,
    L: LabelSampler + Clone + Send + Sync,
{
    assert!(
        replicas >= 2,
        "convergence assessment needs at least two chains"
    );
    assert!(
        iterations > config.burn_in,
        "iterations must exceed burn-in to leave samples for R-hat"
    );
    let mut results: Vec<ChainResult> = Vec::new();
    crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..replicas)
            .map(|k| {
                let sampler = sampler.clone();
                let chain_config = ChainConfig {
                    seed: config.seed.wrapping_add(k as u64),
                    ..config
                };
                scope.spawn(move |_| {
                    let mut chain = McmcChain::new(mrf, sampler, chain_config);
                    chain.run(iterations);
                    chain.result()
                })
            })
            .collect();
        results = handles
            .into_iter()
            .map(|h| h.join().expect("chain worker"))
            .collect();
    })
    .expect("scoped threads");
    let traces: Vec<Vec<f64>> = results
        .iter()
        .map(|r| r.energy_trace[config.burn_in..].to_vec())
        .collect();
    let r_hat = potential_scale_reduction(&traces);
    MultiChainResult {
        chains: results,
        r_hat,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::SoftmaxGibbs;
    use mogs_mrf::{Grid2D, Label, LabelSpace, SmoothnessPrior};

    fn easy_mrf() -> MarkovRandomField<impl SingletonPotential> {
        // Strong data term: chains mix essentially immediately.
        MarkovRandomField::builder(Grid2D::new(8, 8), LabelSpace::scalar(2))
            .prior(SmoothnessPrior::potts(0.3))
            .singleton(|site: usize, label: Label| {
                let want = u8::from(site.is_multiple_of(2));
                if label.value() == want {
                    0.0
                } else {
                    4.0
                }
            })
            .build()
    }

    #[test]
    fn well_mixed_chains_pass_r_hat() {
        let mrf = easy_mrf();
        let config = ChainConfig {
            burn_in: 10,
            seed: 1,
            ..ChainConfig::default()
        };
        let result = run_chains(&mrf, &SoftmaxGibbs::new(), config, 4, 60);
        assert_eq!(result.chains.len(), 4);
        assert!(result.converged(1.1), "R-hat {}", result.r_hat);
    }

    #[test]
    fn chains_differ_by_seed() {
        let mrf = easy_mrf();
        let config = ChainConfig {
            burn_in: 0,
            seed: 7,
            ..ChainConfig::default()
        };
        let result = run_chains(&mrf, &SoftmaxGibbs::new(), config, 2, 5);
        assert_ne!(
            result.chains[0].energy_trace, result.chains[1].energy_trace,
            "independent chains must explore differently"
        );
    }

    #[test]
    fn frozen_cold_chains_flag_nonconvergence() {
        // At a tiny temperature from distinct random inits, chains freeze
        // into different local minima of a pure-prior model: R̂ must blow
        // up. Use a frustrated model (no data term, weak coupling) so the
        // energy depends strongly on the initial basin.
        let mrf = MarkovRandomField::builder(Grid2D::new(8, 8), LabelSpace::scalar(8))
            .prior(SmoothnessPrior::squared_difference(0.02))
            .singleton(mogs_mrf::energy::ZeroSingleton)
            .build();
        let config = ChainConfig {
            burn_in: 2,
            seed: 3,
            schedule: crate::schedule::TemperatureSchedule::constant(5.0),
            ..ChainConfig::default()
        };
        // A hot sampler mixes; with tiny coupling each chain's energy
        // wanders around a chain-specific level only slowly, so short
        // chains disagree more than their within-chain noise.
        let short = run_chains(&mrf, &SoftmaxGibbs::new(), config, 3, 8);
        let long = run_chains(&mrf, &SoftmaxGibbs::new(), config, 3, 120);
        assert!(
            long.r_hat < short.r_hat || long.r_hat < 1.1,
            "longer chains must not look worse: short {} long {}",
            short.r_hat,
            long.r_hat
        );
    }

    #[test]
    #[should_panic(expected = "at least two chains")]
    fn single_replica_rejected() {
        let mrf = easy_mrf();
        run_chains(&mrf, &SoftmaxGibbs::new(), ChainConfig::default(), 1, 10);
    }
}

//! The label-sampling abstraction and its software implementations.
//!
//! A [`LabelSampler`] turns the `M` full conditional energies of one site
//! into a new label. The software Gibbs sampler computes the softmax
//! distribution exactly; Metropolis proposes and accepts. The RSU-G
//! hardware model in `mogs-core` implements this same trait via
//! first-to-fire TTF competition, which lets the rest of the stack (sweeps,
//! chains, applications) run identically on software or emulated hardware.

use mogs_mrf::Label;
use rand::Rng;

/// Draws a new label for a site from its full conditional energies.
pub trait LabelSampler {
    /// Given `energies[m]` = conditional energy of label `m` and the
    /// temperature `T`, draw the site's new label.
    ///
    /// `current` is the site's present label (used by Metropolis-style
    /// samplers as the "stay" fallback).
    fn sample_label<R: Rng + ?Sized>(
        &mut self,
        energies: &[f64],
        temperature: f64,
        current: Label,
        rng: &mut R,
    ) -> Label;

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;

    /// The exact conditional probabilities this sampler draws from, when
    /// it can compute them in closed form (`None` otherwise).
    ///
    /// Samplers that expose this enable **Rao–Blackwellized** marginal
    /// estimation: accumulating the full conditional distribution at every
    /// visit has strictly lower variance than counting the sampled labels,
    /// so the marginal MAP stabilizes in fewer iterations. Hardware
    /// samplers (RSU-G) return `None` — the physical draw is all they
    /// emit, which is exactly the trade the paper makes.
    fn conditional_probabilities(&self, _energies: &[f64], _temperature: f64) -> Option<Vec<f64>> {
        None
    }
}

/// Exact Gibbs sampling: normalize `exp(-E/T)` and draw by inverse CDF.
///
/// This is the reference against which hardware fidelity is measured.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SoftmaxGibbs {
    _private: (),
}

impl SoftmaxGibbs {
    /// Creates the sampler.
    pub fn new() -> Self {
        SoftmaxGibbs { _private: () }
    }

    /// The exact conditional probabilities `softmax(-E/T)` (exposed for
    /// fidelity tests against hardware samplers).
    pub fn probabilities(energies: &[f64], temperature: f64) -> Vec<f64> {
        let min = energies.iter().copied().fold(f64::INFINITY, f64::min);
        let weights: Vec<f64> = energies
            .iter()
            .map(|e| (-(e - min) / temperature).exp())
            .collect();
        let total: f64 = weights.iter().sum();
        weights.into_iter().map(|w| w / total).collect()
    }
}

impl LabelSampler for SoftmaxGibbs {
    fn sample_label<R: Rng + ?Sized>(
        &mut self,
        energies: &[f64],
        temperature: f64,
        current: Label,
        rng: &mut R,
    ) -> Label {
        debug_assert!(!energies.is_empty());
        let min = energies.iter().copied().fold(f64::INFINITY, f64::min);
        // Subtracting the min keeps the exponentials in range; the
        // normalizer cancels it.
        let mut total = 0.0;
        let mut weights = [0.0f64; mogs_mrf::label::MAX_LABELS as usize];
        for (w, e) in weights.iter_mut().zip(energies) {
            *w = (-(e - min) / temperature).exp();
            total += *w;
        }
        if total <= 0.0 {
            return current;
        }
        let mut u = rng.gen::<f64>() * total;
        for (m, w) in weights[..energies.len()].iter().enumerate() {
            if u < *w {
                return Label::new(m as u8);
            }
            u -= w;
        }
        Label::new((energies.len() - 1) as u8)
    }

    fn name(&self) -> &'static str {
        "softmax-gibbs"
    }

    fn conditional_probabilities(&self, energies: &[f64], temperature: f64) -> Option<Vec<f64>> {
        Some(SoftmaxGibbs::probabilities(energies, temperature))
    }
}

/// Metropolis sampling: propose a uniform random label, accept with
/// probability `min(1, exp(-(E_new - E_old)/T))`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metropolis {
    _private: (),
}

impl Metropolis {
    /// Creates the sampler.
    pub fn new() -> Self {
        Metropolis { _private: () }
    }
}

impl LabelSampler for Metropolis {
    fn sample_label<R: Rng + ?Sized>(
        &mut self,
        energies: &[f64],
        temperature: f64,
        current: Label,
        rng: &mut R,
    ) -> Label {
        debug_assert!(!energies.is_empty());
        let m = energies.len();
        let proposal = rng.gen_range(0..m);
        let e_old = energies[usize::from(current.value())];
        let e_new = energies[proposal];
        if e_new <= e_old || rng.gen::<f64>() < ((e_old - e_new) / temperature).exp() {
            Label::new(proposal as u8)
        } else {
            current
        }
    }

    fn name(&self) -> &'static str {
        "metropolis"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frequencies<S: LabelSampler>(
        sampler: &mut S,
        energies: &[f64],
        t: f64,
        n: usize,
        seed: u64,
    ) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; energies.len()];
        let mut current = Label::new(0);
        for _ in 0..n {
            current = sampler.sample_label(energies, t, current, &mut rng);
            counts[usize::from(current.value())] += 1;
        }
        counts.into_iter().map(|c| c as f64 / n as f64).collect()
    }

    #[test]
    fn softmax_matches_boltzmann() {
        let energies = [0.0, 1.0, 2.0];
        let t = 1.0;
        let expect = SoftmaxGibbs::probabilities(&energies, t);
        let freq = frequencies(&mut SoftmaxGibbs::new(), &energies, t, 100_000, 1);
        for (f, e) in freq.iter().zip(&expect) {
            assert!((f - e).abs() < 0.005, "{f} vs {e}");
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let p = SoftmaxGibbs::probabilities(&[3.0, 5.0, 1.0, 1.0], 0.7);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn temperature_flattens_softmax() {
        let energies = [0.0, 4.0];
        let cold = SoftmaxGibbs::probabilities(&energies, 0.5);
        let hot = SoftmaxGibbs::probabilities(&energies, 10.0);
        assert!(cold[0] > hot[0], "low temperature sharpens the mode");
        assert!(hot[1] > cold[1]);
    }

    #[test]
    fn metropolis_converges_to_boltzmann() {
        // Metropolis is a valid MCMC kernel for the same stationary
        // distribution; after many steps the visit frequencies converge.
        let energies = [0.0, 1.5];
        let t = 1.0;
        let expect = SoftmaxGibbs::probabilities(&energies, t);
        let freq = frequencies(&mut Metropolis::new(), &energies, t, 200_000, 2);
        for (f, e) in freq.iter().zip(&expect) {
            assert!((f - e).abs() < 0.01, "{f} vs {e}");
        }
    }

    #[test]
    fn metropolis_always_accepts_downhill() {
        let mut m = Metropolis::new();
        let mut rng = StdRng::seed_from_u64(3);
        // From the high-energy label, any proposal is downhill or equal.
        let energies = [0.0, 100.0];
        for _ in 0..100 {
            let l = m.sample_label(&energies, 1.0, Label::new(1), &mut rng);
            // Proposal of label 1 keeps it (equal energy) — but label 0 must
            // always be accepted when proposed.
            if l.value() == 0 {
                return;
            }
        }
        panic!("label 0 was never reached in 100 downhill steps");
    }

    #[test]
    fn single_label_space_is_fixed_point() {
        let mut g = SoftmaxGibbs::new();
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(
            g.sample_label(&[2.0], 1.0, Label::new(0), &mut rng),
            Label::new(0)
        );
    }

    #[test]
    fn extreme_energies_do_not_overflow() {
        let mut g = SoftmaxGibbs::new();
        let mut rng = StdRng::seed_from_u64(5);
        // Energies this large would overflow exp() without min-shifting.
        let energies = [1e6, 1e6 + 1.0];
        for _ in 0..100 {
            let l = g.sample_label(&energies, 1.0, Label::new(0), &mut rng);
            assert!(l.value() < 2);
        }
    }
}

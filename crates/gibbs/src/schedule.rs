//! Temperature schedules for annealed MCMC.
//!
//! Gibbs sampling at fixed temperature draws from the posterior; annealing
//! the temperature toward zero turns the chain into a stochastic optimizer
//! (simulated annealing, Geman & Geman 1984 — the paper's image
//! segmentation reference). Both modes are useful: fixed `T` for marginal
//! MAP via mode tracking, annealing for direct energy minimization.

/// A temperature schedule `T(iteration)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TemperatureSchedule {
    /// Constant temperature (pure posterior sampling).
    Constant {
        /// The fixed temperature.
        temperature: f64,
    },
    /// Geometric annealing: `T(k) = max(t0 · factor^k, floor)`.
    Geometric {
        /// Starting temperature.
        t0: f64,
        /// Per-iteration multiplier in `(0, 1]`.
        factor: f64,
        /// Lower bound the temperature never crosses.
        floor: f64,
    },
    /// Logarithmic annealing `T(k) = c / ln(k + 2)` — the classical
    /// guaranteed-convergence schedule (slow in practice).
    Logarithmic {
        /// Numerator constant `c`.
        c: f64,
    },
}

impl TemperatureSchedule {
    /// A constant schedule.
    ///
    /// # Panics
    ///
    /// Panics if `temperature` is not strictly positive and finite.
    pub fn constant(temperature: f64) -> Self {
        assert!(
            temperature.is_finite() && temperature > 0.0,
            "temperature must be positive"
        );
        TemperatureSchedule::Constant { temperature }
    }

    /// A geometric schedule.
    ///
    /// # Panics
    ///
    /// Panics on non-positive `t0`/`floor` or `factor` outside `(0, 1]`.
    pub fn geometric(t0: f64, factor: f64, floor: f64) -> Self {
        assert!(t0.is_finite() && t0 > 0.0, "t0 must be positive");
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0, 1]");
        assert!(floor.is_finite() && floor > 0.0, "floor must be positive");
        TemperatureSchedule::Geometric { t0, factor, floor }
    }

    /// The temperature at `iteration` (0-based).
    pub fn temperature(&self, iteration: usize) -> f64 {
        match *self {
            TemperatureSchedule::Constant { temperature } => temperature,
            TemperatureSchedule::Geometric { t0, factor, floor } => {
                (t0 * factor.powi(iteration as i32)).max(floor)
            }
            TemperatureSchedule::Logarithmic { c } => c / ((iteration + 2) as f64).ln(),
        }
    }
}

impl Default for TemperatureSchedule {
    fn default() -> Self {
        TemperatureSchedule::Constant { temperature: 1.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = TemperatureSchedule::constant(2.5);
        assert_eq!(s.temperature(0), 2.5);
        assert_eq!(s.temperature(1000), 2.5);
    }

    #[test]
    fn geometric_decays_to_floor() {
        let s = TemperatureSchedule::geometric(4.0, 0.5, 0.1);
        assert_eq!(s.temperature(0), 4.0);
        assert_eq!(s.temperature(1), 2.0);
        assert_eq!(s.temperature(2), 1.0);
        assert_eq!(s.temperature(100), 0.1);
    }

    #[test]
    fn logarithmic_decreases_slowly() {
        let s = TemperatureSchedule::Logarithmic { c: 1.0 };
        assert!(s.temperature(0) > s.temperature(10));
        assert!(s.temperature(10) > s.temperature(1000));
        assert!(s.temperature(1000) > 0.0);
    }

    #[test]
    fn schedules_are_monotone_nonincreasing() {
        for s in [
            TemperatureSchedule::constant(1.0),
            TemperatureSchedule::geometric(2.0, 0.9, 0.05),
            TemperatureSchedule::Logarithmic { c: 3.0 },
        ] {
            let mut last = f64::INFINITY;
            for k in 0..200 {
                let t = s.temperature(k);
                assert!(t <= last + 1e-12);
                assert!(t > 0.0);
                last = t;
            }
        }
    }

    #[test]
    #[should_panic(expected = "factor must be in (0, 1]")]
    fn geometric_rejects_growing_factor() {
        TemperatureSchedule::geometric(1.0, 1.5, 0.1);
    }
}

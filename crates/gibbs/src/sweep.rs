//! Full-grid MCMC sweeps: sequential and checkerboard-parallel.
//!
//! One MCMC iteration updates every random variable once (paper §4.2). In a
//! first-order MRF, all sites of one checkerboard colour are conditionally
//! independent given the other colour, so they can be updated concurrently —
//! the parallelism the paper's GPU baselines and RSU arrays exploit. The
//! parallel sweep here uses scoped threads over per-thread sampler clones
//! and deterministically seeded RNG streams, so results are reproducible
//! for a fixed seed and thread count.

use crate::sampler::LabelSampler;
use mogs_mrf::energy::SingletonPotential;
use mogs_mrf::{Label, MarkovRandomField, Parity};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Updates every site once, in row-major order, in place.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the grid size.
pub fn sequential_sweep<S, L, R>(
    mrf: &MarkovRandomField<S>,
    labels: &mut [Label],
    sampler: &mut L,
    temperature: f64,
    rng: &mut R,
) where
    S: SingletonPotential,
    L: LabelSampler,
    R: Rng + ?Sized,
{
    assert_eq!(
        labels.len(),
        mrf.grid().len(),
        "labeling must cover the grid"
    );
    let m = mrf.space().count();
    let mut energies = vec![0.0; m];
    for site in mrf.grid().sites() {
        mrf.conditional_energies_into(labels, site, &mut energies);
        labels[site] = sampler.sample_label(&energies, temperature, labels[site], rng);
    }
}

/// Reusable buffers for repeated [`checkerboard_sweep`]/[`colored_sweep`]
/// calls.
///
/// Each parity phase of a parallel sweep needs an immutable snapshot of
/// the pre-phase labeling for neighbour reads. Allocating that snapshot
/// per phase (`labels.to_vec()`) dominates allocator traffic in the hot
/// loop of a long chain; a `SweepScratch` owns one snapshot buffer and
/// reuses it across phases and sweeps.
#[derive(Debug, Default, Clone)]
pub struct SweepScratch {
    snapshot: Vec<Label>,
}

impl SweepScratch {
    /// An empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        SweepScratch::default()
    }

    /// Refreshes the snapshot buffer from `labels` and returns it.
    fn refresh(&mut self, labels: &[Label]) -> &[Label] {
        self.snapshot.clear();
        self.snapshot.extend_from_slice(labels);
        &self.snapshot
    }
}

/// Updates every site once using the checkerboard schedule: all even-parity
/// sites (in parallel across `threads`), then all odd-parity sites.
///
/// Valid for first-order fields; for a field of either order use
/// [`colored_sweep`], which derives the independent groups from the
/// field's neighbourhood (two parities or four block colours).
///
/// Each (thread, parity) pair gets an RNG seeded as `seed ⊕ f(thread,
/// parity)`, so the sweep is deterministic for fixed `seed` and `threads`.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the grid size or `threads == 0`.
pub fn checkerboard_sweep<S, L>(
    mrf: &MarkovRandomField<S>,
    labels: &mut [Label],
    sampler: &L,
    temperature: f64,
    threads: usize,
    seed: u64,
) where
    S: SingletonPotential + Sync,
    L: LabelSampler + Clone + Send + Sync,
{
    let mut scratch = SweepScratch::new();
    checkerboard_sweep_with_scratch(
        mrf,
        labels,
        sampler,
        temperature,
        threads,
        seed,
        &mut scratch,
    );
}

/// [`checkerboard_sweep`] with caller-owned scratch buffers, for hot loops
/// that sweep many times. Bit-identical to the scratch-free entry point
/// for the same arguments.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the grid size or `threads == 0`.
pub fn checkerboard_sweep_with_scratch<S, L>(
    mrf: &MarkovRandomField<S>,
    labels: &mut [Label],
    sampler: &L,
    temperature: f64,
    threads: usize,
    seed: u64,
    scratch: &mut SweepScratch,
) where
    S: SingletonPotential + Sync,
    L: LabelSampler + Clone + Send + Sync,
{
    let groups: Vec<Vec<usize>> = Parity::BOTH
        .into_iter()
        .map(|p| mrf.grid().sites_of_parity(p).collect())
        .collect();
    sweep_groups(
        mrf,
        labels,
        sampler,
        temperature,
        threads,
        seed,
        &groups,
        scratch,
    );
}

/// Updates every site once using the field's own conditionally independent
/// groups ([`MarkovRandomField::independent_groups`]): checkerboard
/// parities for first-order fields, 2×2-block colours for second-order
/// fields.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the grid size or `threads == 0`.
pub fn colored_sweep<S, L>(
    mrf: &MarkovRandomField<S>,
    labels: &mut [Label],
    sampler: &L,
    temperature: f64,
    threads: usize,
    seed: u64,
) where
    S: SingletonPotential + Sync,
    L: LabelSampler + Clone + Send + Sync,
{
    let mut scratch = SweepScratch::new();
    colored_sweep_with_scratch(
        mrf,
        labels,
        sampler,
        temperature,
        threads,
        seed,
        &mut scratch,
    );
}

/// [`colored_sweep`] with caller-owned scratch buffers, for hot loops that
/// sweep many times. Bit-identical to the scratch-free entry point for the
/// same arguments.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the grid size or `threads == 0`.
pub fn colored_sweep_with_scratch<S, L>(
    mrf: &MarkovRandomField<S>,
    labels: &mut [Label],
    sampler: &L,
    temperature: f64,
    threads: usize,
    seed: u64,
    scratch: &mut SweepScratch,
) where
    S: SingletonPotential + Sync,
    L: LabelSampler + Clone + Send + Sync,
{
    let groups = mrf.independent_groups();
    sweep_groups(
        mrf,
        labels,
        sampler,
        temperature,
        threads,
        seed,
        &groups,
        scratch,
    );
}

#[allow(clippy::too_many_arguments)]
fn sweep_groups<S, L>(
    mrf: &MarkovRandomField<S>,
    labels: &mut [Label],
    sampler: &L,
    temperature: f64,
    threads: usize,
    seed: u64,
    groups: &[Vec<usize>],
    scratch: &mut SweepScratch,
) where
    S: SingletonPotential + Sync,
    L: LabelSampler + Clone + Send + Sync,
{
    assert_eq!(
        labels.len(),
        mrf.grid().len(),
        "labeling must cover the grid"
    );
    assert!(threads > 0, "need at least one thread");
    for (parity_idx, sites) in groups.iter().enumerate() {
        // Immutable snapshot for neighbour reads; same-parity sites never
        // read each other, so reading the pre-sweep labels is exact Gibbs.
        let snapshot = scratch.refresh(labels);
        let chunk = sites.len().div_ceil(threads);
        let mut updates: Vec<Vec<(usize, Label)>> = Vec::new();
        crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for (t, chunk_sites) in sites.chunks(chunk.max(1)).enumerate() {
                let snapshot = &snapshot;
                let mut local_sampler = sampler.clone();
                let handle = scope.spawn(move |_| {
                    let mut rng = StdRng::seed_from_u64(
                        seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            ^ ((parity_idx as u64) << 32),
                    );
                    let m = mrf.space().count();
                    let mut energies = vec![0.0; m];
                    let mut out = Vec::with_capacity(chunk_sites.len());
                    for &site in chunk_sites {
                        mrf.conditional_energies_into(snapshot, site, &mut energies);
                        let new = local_sampler.sample_label(
                            &energies,
                            temperature,
                            snapshot[site],
                            &mut rng,
                        );
                        out.push((site, new));
                    }
                    out
                });
                handles.push(handle);
            }
            updates = handles
                .into_iter()
                // audit:allow(unwrap-expect) — join fails only when the
                // worker panicked; re-panicking here just propagates it.
                .map(|h| h.join().expect("sweep worker"))
                .collect();
        })
        // audit:allow(unwrap-expect) — the scope errs only on a worker
        // panic, which this propagates.
        .expect("scoped threads");
        for (site, label) in updates.into_iter().flatten() {
            labels[site] = label;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::SoftmaxGibbs;
    use mogs_mrf::{Grid2D, LabelSpace, SmoothnessPrior};

    fn test_mrf() -> MarkovRandomField<impl SingletonPotential> {
        // Data pulls the left half to label 0 and the right half to 1.
        let grid = Grid2D::new(8, 8);
        let width = grid.width();
        MarkovRandomField::builder(grid, LabelSpace::scalar(2))
            .prior(SmoothnessPrior::potts(0.5))
            .singleton(move |site: usize, label: Label| {
                let x = site % width;
                let want = if x < width / 2 { 0 } else { 1 };
                if label.value() == want {
                    0.0
                } else {
                    3.0
                }
            })
            .build()
    }

    #[test]
    fn sequential_sweep_moves_toward_data() {
        let mrf = test_mrf();
        let mut labels = mrf.uniform_labeling();
        let mut sampler = SoftmaxGibbs::new();
        let mut rng = StdRng::seed_from_u64(1);
        let e0 = mrf.total_energy(&labels);
        for _ in 0..20 {
            sequential_sweep(&mrf, &mut labels, &mut sampler, 1.0, &mut rng);
        }
        assert!(
            mrf.total_energy(&labels) < e0,
            "energy should fall from uniform start"
        );
    }

    #[test]
    fn checkerboard_sweep_moves_toward_data() {
        let mrf = test_mrf();
        let mut labels = mrf.uniform_labeling();
        let sampler = SoftmaxGibbs::new();
        let e0 = mrf.total_energy(&labels);
        for i in 0..20 {
            checkerboard_sweep(&mrf, &mut labels, &sampler, 1.0, 4, 100 + i);
        }
        assert!(mrf.total_energy(&labels) < e0);
    }

    #[test]
    fn checkerboard_deterministic_for_fixed_seed() {
        let mrf = test_mrf();
        let sampler = SoftmaxGibbs::new();
        let mut a = mrf.uniform_labeling();
        let mut b = mrf.uniform_labeling();
        for i in 0..5 {
            checkerboard_sweep(&mrf, &mut a, &sampler, 1.0, 3, i);
            checkerboard_sweep(&mrf, &mut b, &sampler, 1.0, 3, i);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn single_thread_checkerboard_works() {
        let mrf = test_mrf();
        let sampler = SoftmaxGibbs::new();
        let mut labels = mrf.uniform_labeling();
        checkerboard_sweep(&mrf, &mut labels, &sampler, 1.0, 1, 7);
        assert_eq!(labels.len(), mrf.grid().len());
    }

    #[test]
    fn both_sweeps_converge_to_same_segmentation() {
        // Statistically, both kernels should find the left/right split.
        let mrf = test_mrf();
        let sampler = SoftmaxGibbs::new();
        let mut seq = mrf.uniform_labeling();
        let mut par = mrf.uniform_labeling();
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = sampler;
        for i in 0..50 {
            sequential_sweep(&mrf, &mut seq, &mut s, 0.3, &mut rng);
            checkerboard_sweep(&mrf, &mut par, &sampler, 0.3, 2, 1000 + i);
        }
        let agree = |labels: &[Label]| {
            let w = mrf.grid().width();
            mrf.grid()
                .sites()
                .filter(|&site| {
                    let want = if site % w < w / 2 { 0 } else { 1 };
                    labels[site].value() == want
                })
                .count() as f64
                / mrf.grid().len() as f64
        };
        assert!(agree(&seq) > 0.9, "sequential accuracy {}", agree(&seq));
        assert!(agree(&par) > 0.9, "parallel accuracy {}", agree(&par));
    }

    #[test]
    fn colored_sweep_handles_second_order_fields() {
        use mogs_mrf::Neighborhood;
        let grid = Grid2D::new(8, 8);
        let width = grid.width();
        let mrf = MarkovRandomField::builder(grid, LabelSpace::scalar(2))
            .prior(SmoothnessPrior::potts(0.5))
            .neighborhood(Neighborhood::SecondOrder)
            .singleton(move |site: usize, label: Label| {
                let want = u8::from(site % width >= width / 2);
                if label.value() == want {
                    0.0
                } else {
                    3.0
                }
            })
            .build();
        let sampler = SoftmaxGibbs::new();
        let mut labels = mrf.uniform_labeling();
        let e0 = mrf.total_energy(&labels);
        for i in 0..25 {
            colored_sweep(&mrf, &mut labels, &sampler, 0.5, 3, 500 + i);
        }
        assert!(mrf.total_energy(&labels) < e0);
        // The diagonal coupling should still allow the data split through.
        let accuracy = mrf
            .grid()
            .sites()
            .filter(|&s| {
                let want = u8::from(s % width >= width / 2);
                labels[s].value() == want
            })
            .count() as f64
            / mrf.grid().len() as f64;
        assert!(accuracy > 0.85, "second-order accuracy {accuracy}");
    }

    #[test]
    fn colored_sweep_matches_checkerboard_for_first_order() {
        let mrf = test_mrf();
        let sampler = SoftmaxGibbs::new();
        let mut a = mrf.uniform_labeling();
        let mut b = mrf.uniform_labeling();
        for i in 0..5 {
            checkerboard_sweep(&mrf, &mut a, &sampler, 1.0, 2, i);
            colored_sweep(&mrf, &mut b, &sampler, 1.0, 2, i);
        }
        // First-order independent groups ARE the parities, in the same
        // order, so the two entry points are bit-identical.
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "labeling must cover the grid")]
    fn wrong_labeling_size_panics() {
        let mrf = test_mrf();
        let mut labels = vec![Label::new(0); 3];
        let mut sampler = SoftmaxGibbs::new();
        let mut rng = StdRng::seed_from_u64(0);
        sequential_sweep(&mrf, &mut labels, &mut sampler, 1.0, &mut rng);
    }
}

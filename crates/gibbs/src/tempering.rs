//! Parallel tempering (replica exchange) over an MRF posterior.
//!
//! A single Gibbs chain at low temperature freezes in local minima; a
//! ladder of replicas at increasing temperatures, with Metropolis swaps of
//! neighbouring replicas' states, lets hot replicas ferry the cold one
//! across energy barriers. The swap acceptance
//! `min(1, exp((1/Tᵢ − 1/Tⱼ)(Eᵢ − Eⱼ)))` preserves each replica's target
//! distribution, so the coldest replica still samples its Boltzmann
//! posterior — with far better mixing on multimodal energy landscapes
//! than the paper's plain fixed-temperature chain.

use crate::sampler::LabelSampler;
use crate::sweep::sequential_sweep;
use mogs_mrf::energy::SingletonPotential;
use mogs_mrf::{Label, MarkovRandomField};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a tempering ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct TemperingConfig {
    /// Replica temperatures, coldest first, strictly increasing.
    pub temperatures: Vec<f64>,
    /// Swap attempts between each pair of adjacent replicas per iteration.
    pub swaps_per_iteration: usize,
    /// Master RNG seed.
    pub seed: u64,
}

impl TemperingConfig {
    /// A geometric ladder: `replicas` temperatures from `t_cold` to
    /// `t_hot`.
    ///
    /// # Panics
    ///
    /// Panics if `replicas < 2` or the temperature bounds are not ordered
    /// and positive.
    pub fn geometric_ladder(t_cold: f64, t_hot: f64, replicas: usize) -> Self {
        assert!(replicas >= 2, "tempering needs at least two replicas");
        assert!(t_cold > 0.0 && t_hot > t_cold, "need 0 < t_cold < t_hot");
        let ratio = (t_hot / t_cold).powf(1.0 / (replicas - 1) as f64);
        let temperatures = (0..replicas)
            .map(|k| t_cold * ratio.powi(k as i32))
            .collect();
        TemperingConfig {
            temperatures,
            swaps_per_iteration: 1,
            seed: 0,
        }
    }
}

/// A parallel-tempering run over a borrowed field.
#[derive(Debug)]
pub struct TemperedChains<'a, S, L> {
    mrf: &'a MarkovRandomField<S>,
    sampler: L,
    config: TemperingConfig,
    /// One labeling per replica, index-aligned with `temperatures`.
    replicas: Vec<Vec<Label>>,
    energies: Vec<f64>,
    swaps_attempted: usize,
    swaps_accepted: usize,
    rng: StdRng,
}

impl<'a, S, L> TemperedChains<'a, S, L>
where
    S: SingletonPotential + Sync,
    L: LabelSampler + Clone + Send + Sync,
{
    /// Creates the ladder with every replica at the all-zero labeling.
    ///
    /// # Panics
    ///
    /// Panics if the temperature ladder is not strictly increasing.
    pub fn new(mrf: &'a MarkovRandomField<S>, sampler: L, config: TemperingConfig) -> Self {
        assert!(
            config.temperatures.windows(2).all(|w| w[0] < w[1]),
            "temperatures must be strictly increasing"
        );
        assert!(
            config.temperatures.len() >= 2,
            "tempering needs at least two replicas"
        );
        let replicas: Vec<Vec<Label>> = (0..config.temperatures.len())
            .map(|_| mrf.uniform_labeling())
            .collect();
        let energies = replicas.iter().map(|r| mrf.total_energy(r)).collect();
        TemperedChains {
            mrf,
            sampler,
            rng: StdRng::seed_from_u64(config.seed),
            config,
            replicas,
            energies,
            swaps_attempted: 0,
            swaps_accepted: 0,
        }
    }

    /// The coldest replica's current labeling.
    pub fn coldest(&self) -> &[Label] {
        &self.replicas[0]
    }

    /// The coldest replica's current energy.
    pub fn coldest_energy(&self) -> f64 {
        self.energies[0]
    }

    /// Fraction of attempted swaps accepted so far (ladder-health
    /// indicator: healthy ladders sit around 20–60%).
    pub fn swap_acceptance(&self) -> f64 {
        if self.swaps_attempted == 0 {
            return 0.0;
        }
        self.swaps_accepted as f64 / self.swaps_attempted as f64
    }

    /// One tempering iteration: every replica performs a full Gibbs sweep
    /// at its own temperature, then adjacent replicas attempt state swaps.
    pub fn step(&mut self) {
        for (replica, &t) in self.replicas.iter_mut().zip(&self.config.temperatures) {
            sequential_sweep(self.mrf, replica, &mut self.sampler, t, &mut self.rng);
        }
        for (i, e) in self.energies.iter_mut().enumerate() {
            *e = self.mrf.total_energy(&self.replicas[i]);
        }
        for _ in 0..self.config.swaps_per_iteration {
            for i in 0..self.replicas.len() - 1 {
                self.attempt_swap(i);
            }
        }
    }

    /// Runs `n` iterations.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    fn attempt_swap(&mut self, i: usize) {
        self.swaps_attempted += 1;
        let (ti, tj) = (self.config.temperatures[i], self.config.temperatures[i + 1]);
        let (ei, ej) = (self.energies[i], self.energies[i + 1]);
        let log_alpha = (1.0 / ti - 1.0 / tj) * (ei - ej);
        if log_alpha >= 0.0 || self.rng.gen::<f64>() < log_alpha.exp() {
            self.replicas.swap(i, i + 1);
            self.energies.swap(i, i + 1);
            self.swaps_accepted += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::SoftmaxGibbs;
    use mogs_mrf::energy::ZeroSingleton;
    use mogs_mrf::{Grid2D, LabelSpace, SmoothnessPrior};

    #[test]
    fn geometric_ladder_shape() {
        let c = TemperingConfig::geometric_ladder(0.5, 8.0, 5);
        assert_eq!(c.temperatures.len(), 5);
        assert!((c.temperatures[0] - 0.5).abs() < 1e-12);
        assert!((c.temperatures[4] - 8.0).abs() < 1e-9);
        let r1 = c.temperatures[1] / c.temperatures[0];
        let r2 = c.temperatures[2] / c.temperatures[1];
        assert!((r1 - r2).abs() < 1e-9, "geometric spacing");
    }

    #[test]
    fn tempering_beats_cold_chain_on_frustrated_model() {
        // Strong Potts coupling at a cold temperature: a single chain
        // freezes into domain walls; tempering melts them.
        let mrf = MarkovRandomField::builder(Grid2D::new(12, 12), LabelSpace::scalar(4))
            .prior(SmoothnessPrior::potts(2.0))
            .singleton(ZeroSingleton)
            .build();
        let iterations = 40;
        // Plain cold chain.
        let mut cold_labels = mrf.uniform_labeling();
        // Start from a frustrated random state.
        for (i, l) in cold_labels.iter_mut().enumerate() {
            *l = Label::new((i % 4) as u8);
        }
        let mut sampler = SoftmaxGibbs::new();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..iterations {
            sequential_sweep(&mrf, &mut cold_labels, &mut sampler, 0.4, &mut rng);
        }
        let cold_energy = mrf.total_energy(&cold_labels);
        // Tempered ladder with the same cold temperature.
        let config = TemperingConfig {
            seed: 1,
            ..TemperingConfig::geometric_ladder(0.4, 4.0, 5)
        };
        let mut ladder = TemperedChains::new(&mrf, SoftmaxGibbs::new(), config);
        // Give the ladder the same frustrated start on every replica.
        for replica in &mut ladder.replicas {
            for (i, l) in replica.iter_mut().enumerate() {
                *l = Label::new((i % 4) as u8);
            }
        }
        ladder.run(iterations);
        assert!(
            ladder.coldest_energy() <= cold_energy,
            "tempered {} vs plain {}",
            ladder.coldest_energy(),
            cold_energy
        );
    }

    #[test]
    fn swap_acceptance_is_healthy() {
        let mrf = MarkovRandomField::builder(Grid2D::new(8, 8), LabelSpace::scalar(3))
            .prior(SmoothnessPrior::potts(1.0))
            .singleton(ZeroSingleton)
            .build();
        let config = TemperingConfig {
            seed: 2,
            ..TemperingConfig::geometric_ladder(0.8, 3.0, 4)
        };
        let mut ladder = TemperedChains::new(&mrf, SoftmaxGibbs::new(), config);
        ladder.run(30);
        let acc = ladder.swap_acceptance();
        assert!(
            acc > 0.05,
            "swap acceptance {acc} too low — ladder too sparse"
        );
    }

    #[test]
    fn coldest_accessors_work() {
        let mrf = MarkovRandomField::builder(Grid2D::new(4, 4), LabelSpace::scalar(2))
            .singleton(ZeroSingleton)
            .build();
        let config = TemperingConfig::geometric_ladder(1.0, 2.0, 2);
        let mut ladder = TemperedChains::new(&mrf, SoftmaxGibbs::new(), config);
        ladder.step();
        assert_eq!(ladder.coldest().len(), 16);
        assert!(ladder.coldest_energy().is_finite());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unordered_ladder_rejected() {
        let mrf = MarkovRandomField::builder(Grid2D::new(2, 2), LabelSpace::scalar(2))
            .singleton(ZeroSingleton)
            .build();
        let config = TemperingConfig {
            temperatures: vec![2.0, 1.0],
            swaps_per_iteration: 1,
            seed: 0,
        };
        TemperedChains::new(&mrf, SoftmaxGibbs::new(), config);
    }
}

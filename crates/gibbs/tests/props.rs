//! Property-based invariants of the MCMC engine.

use mogs_gibbs::diagnostics::{autocorrelation, effective_sample_size};
use mogs_gibbs::dist::AliasTable;
use mogs_gibbs::sampler::{LabelSampler, Metropolis, SoftmaxGibbs};
use mogs_gibbs::schedule::TemperatureSchedule;
use mogs_mrf::Label;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Softmax probabilities are a valid distribution for any finite
    /// energy vector and temperature, including extreme magnitudes.
    #[test]
    fn softmax_is_a_distribution(
        energies in prop::collection::vec(-1e6f64..1e6, 1..16),
        t in 0.01f64..100.0,
    ) {
        let p = SoftmaxGibbs::probabilities(&energies, t);
        prop_assert_eq!(p.len(), energies.len());
        for v in &p {
            prop_assert!((0.0..=1.0).contains(v), "probability {}", v);
            prop_assert!(v.is_finite());
        }
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    /// Lower-energy labels never have lower softmax probability.
    #[test]
    fn softmax_orders_by_energy(
        energies in prop::collection::vec(0.0f64..50.0, 2..8),
        t in 0.1f64..20.0,
    ) {
        let p = SoftmaxGibbs::probabilities(&energies, t);
        for i in 0..energies.len() {
            for j in 0..energies.len() {
                if energies[i] < energies[j] {
                    prop_assert!(p[i] >= p[j] - 1e-12);
                }
            }
        }
    }

    /// Both samplers always return an in-range label.
    #[test]
    fn samplers_are_total(
        energies in prop::collection::vec(0.0f64..100.0, 1..16),
        t in 0.1f64..10.0,
        seed in 0u64..1000,
        current_pick in 0usize..16,
    ) {
        let current = Label::new((current_pick % energies.len()) as u8);
        let mut rng = StdRng::seed_from_u64(seed);
        let m = energies.len() as u8;
        let mut gibbs = SoftmaxGibbs::new();
        prop_assert!(gibbs.sample_label(&energies, t, current, &mut rng).value() < m);
        let mut metropolis = Metropolis::new();
        prop_assert!(metropolis.sample_label(&energies, t, current, &mut rng).value() < m);
    }

    /// Temperature schedules are positive and non-increasing for all
    /// parameters in range.
    #[test]
    fn schedules_positive_nonincreasing(
        t0 in 0.1f64..50.0,
        factor in 0.5f64..1.0,
        floor_frac in 0.01f64..0.5,
    ) {
        let schedule = TemperatureSchedule::geometric(t0, factor, t0 * floor_frac);
        let mut last = f64::INFINITY;
        for k in 0..100 {
            let t = schedule.temperature(k);
            prop_assert!(t > 0.0);
            prop_assert!(t <= last + 1e-12);
            last = t;
        }
    }

    /// Alias tables assign zero frequency to zero weights and build for
    /// any valid weight vector.
    #[test]
    fn alias_respects_support(
        mut weights in prop::collection::vec(0.0f64..10.0, 2..12),
        seed in 0u64..100,
    ) {
        // Ensure at least one positive weight.
        weights[0] += 1.0;
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..500 {
            let i = table.sample(&mut rng);
            prop_assert!(weights[i] > 0.0, "outcome {} has zero weight", i);
        }
    }

    /// ESS never exceeds the sample count (up to truncation noise) and
    /// lag-0 autocorrelation is one.
    #[test]
    fn diagnostics_bounds(series in prop::collection::vec(-10.0f64..10.0, 10..200)) {
        prop_assert!((autocorrelation(&series, 0) - 1.0).abs() < 1e-9);
        let ess = effective_sample_size(&series);
        prop_assert!(ess >= 0.0);
        // Geyer truncation can slightly exceed n on pathological series;
        // allow 2x slack.
        prop_assert!(ess <= 2.0 * series.len() as f64);
    }
}

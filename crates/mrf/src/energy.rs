//! Clique potential energies: smoothness doubletons and data singletons.
//!
//! The paper's MRFs (Eq. 1) combine one **singleton** potential per site
//! (tying the variable to observed data) with four **doubleton** potentials
//! (penalizing label disagreement between neighbours). This module provides
//! the standard smoothness-prior doubleton family and the trait applications
//! implement for their singletons.

use crate::label::{Label, LabelSpace};

/// The family of smoothness doubleton potentials (Szeliski et al. 2008).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DoubletonKind {
    /// `w · d²(a, b)` — the paper's Eq. 2 squared-difference norm.
    SquaredDifference,
    /// `w · min(d²(a, b), cap)` — truncated quadratic, robust to
    /// discontinuities (object boundaries).
    TruncatedQuadratic {
        /// Cap applied to the squared distance before weighting.
        cap: f64,
    },
    /// `w · [a ≠ b]` — the Potts model: constant penalty for any mismatch.
    Potts,
}

/// A weighted smoothness prior over neighbouring labels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoothnessPrior {
    weight: f64,
    kind: DoubletonKind,
}

impl SmoothnessPrior {
    /// Squared-difference prior with the given weight (the paper's default).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or non-finite.
    pub fn squared_difference(weight: f64) -> Self {
        Self::new(weight, DoubletonKind::SquaredDifference)
    }

    /// Truncated-quadratic prior.
    ///
    /// # Panics
    ///
    /// Panics if `weight` or `cap` is negative or non-finite.
    pub fn truncated_quadratic(weight: f64, cap: f64) -> Self {
        assert!(cap.is_finite() && cap >= 0.0, "cap must be non-negative");
        Self::new(weight, DoubletonKind::TruncatedQuadratic { cap })
    }

    /// Potts prior.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or non-finite.
    pub fn potts(weight: f64) -> Self {
        Self::new(weight, DoubletonKind::Potts)
    }

    fn new(weight: f64, kind: DoubletonKind) -> Self {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weight must be non-negative"
        );
        SmoothnessPrior { weight, kind }
    }

    /// The prior's weight.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The doubleton family.
    pub fn kind(&self) -> DoubletonKind {
        self.kind
    }

    /// Doubleton energy between two labels under `space`'s interpretation.
    pub fn energy(&self, space: &LabelSpace, a: Label, b: Label) -> f64 {
        let d2 = f64::from(space.distance_sq(a, b));
        match self.kind {
            DoubletonKind::SquaredDifference => self.weight * d2,
            DoubletonKind::TruncatedQuadratic { cap } => self.weight * d2.min(cap),
            DoubletonKind::Potts => {
                if a == b {
                    0.0
                } else {
                    self.weight
                }
            }
        }
    }
}

/// A singleton clique potential: the application-specific energy tying a
/// site's label to the observed data.
///
/// Implemented for closures, so simple models need no new types:
///
/// ```
/// use mogs_mrf::energy::SingletonPotential;
/// use mogs_mrf::Label;
///
/// let flat = |_site: usize, _label: Label| 0.0;
/// assert_eq!(flat.energy(3, Label::new(1)), 0.0);
/// ```
pub trait SingletonPotential: Send + Sync {
    /// Energy of assigning `label` at `site` given the observed data the
    /// implementation captured.
    fn energy(&self, site: usize, label: Label) -> f64;
}

impl<F> SingletonPotential for F
where
    F: Fn(usize, Label) -> f64 + Send + Sync,
{
    fn energy(&self, site: usize, label: Label) -> f64 {
        self(site, label)
    }
}

/// A singleton that is zero everywhere: pure-prior fields (useful for
/// sampling from the prior and in tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZeroSingleton;

impl SingletonPotential for ZeroSingleton {
    fn energy(&self, _site: usize, _label: Label) -> f64 {
        0.0
    }
}

/// The hardware singleton form of the RSU-G (paper §4.3): the squared
/// difference of two 6-bit data values, `(data1 - data2)²`, optionally
/// pre-weighted. Applications that fit this form map directly onto the
/// RSU-G datapath; others precompute their singleton externally.
#[derive(Debug, Clone, PartialEq)]
pub struct SquaredDataSingleton {
    /// `data1[site]`: the per-site observation (6-bit range).
    pub data1: Vec<u8>,
    /// `data2[site][label]`: the comparison value per label
    /// (e.g. destination-frame intensity for motion estimation).
    pub data2: Vec<Vec<u8>>,
    /// Scalar weight pre-factored into the energy.
    pub weight: f64,
}

impl SingletonPotential for SquaredDataSingleton {
    fn energy(&self, site: usize, label: Label) -> f64 {
        let a = f64::from(self.data1[site]);
        let b = f64::from(self.data2[site][usize::from(label.value())]);
        let d = a - b;
        self.weight * d * d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_difference_energy() {
        let prior = SmoothnessPrior::squared_difference(2.0);
        let space = LabelSpace::scalar(8);
        let e = prior.energy(&space, Label::new(1), Label::new(4));
        assert_eq!(e, 2.0 * 9.0);
    }

    #[test]
    fn truncated_quadratic_caps() {
        let prior = SmoothnessPrior::truncated_quadratic(1.0, 4.0);
        let space = LabelSpace::scalar(8);
        assert_eq!(prior.energy(&space, Label::new(0), Label::new(1)), 1.0);
        assert_eq!(prior.energy(&space, Label::new(0), Label::new(7)), 4.0);
    }

    #[test]
    fn potts_is_binary() {
        let prior = SmoothnessPrior::potts(3.0);
        let space = LabelSpace::scalar(8);
        assert_eq!(prior.energy(&space, Label::new(2), Label::new(2)), 0.0);
        assert_eq!(prior.energy(&space, Label::new(2), Label::new(3)), 3.0);
        assert_eq!(prior.energy(&space, Label::new(2), Label::new(7)), 3.0);
    }

    #[test]
    fn identical_labels_cost_nothing() {
        let space = LabelSpace::window(7, 7);
        for prior in [
            SmoothnessPrior::squared_difference(1.5),
            SmoothnessPrior::truncated_quadratic(1.5, 9.0),
            SmoothnessPrior::potts(1.5),
        ] {
            for l in space.labels() {
                assert_eq!(prior.energy(&space, l, l), 0.0);
            }
        }
    }

    #[test]
    fn closure_singleton() {
        let data = [10u8, 200u8];
        let s = move |site: usize, label: Label| {
            (f64::from(data[site]) - f64::from(label.value()) * 40.0).abs()
        };
        assert_eq!(s.energy(0, Label::new(0)), 10.0);
        assert_eq!(s.energy(1, Label::new(5)), 0.0);
    }

    #[test]
    fn squared_data_singleton_matches_hardware_form() {
        let s = SquaredDataSingleton {
            data1: vec![10, 20],
            data2: vec![vec![10, 13], vec![25, 20]],
            weight: 0.5,
        };
        assert_eq!(s.energy(0, Label::new(0)), 0.0);
        assert_eq!(s.energy(0, Label::new(1)), 0.5 * 9.0);
        assert_eq!(s.energy(1, Label::new(0)), 0.5 * 25.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        SmoothnessPrior::squared_difference(-1.0);
    }
}

//! Error type for MRF construction.

use std::error::Error;
use std::fmt;

/// Errors raised while building MRF models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrfError {
    /// A label value exceeded the 6-bit hardware representation.
    LabelTooLarge {
        /// The offending value.
        value: u16,
    },
    /// A label space was requested with zero or more than 64 labels.
    InvalidLabelCount {
        /// The offending count.
        count: u16,
    },
    /// A vector label space's window does not fit 3-bit components.
    WindowTooLarge {
        /// Window width requested.
        width: u8,
        /// Window height requested.
        height: u8,
    },
    /// A labeling's length does not match the grid size.
    LabelingSizeMismatch {
        /// Expected number of sites.
        expected: usize,
        /// Actual labeling length.
        actual: usize,
    },
    /// Grid dimensions were zero.
    EmptyGrid,
    /// A topology edge list contained a self-loop `(s, s)`.
    SelfLoopEdge {
        /// The site that referenced itself.
        site: usize,
    },
    /// A topology edge referenced a site outside `0..sites`.
    EdgeOutOfRange {
        /// First endpoint.
        a: usize,
        /// Second endpoint.
        b: usize,
        /// Number of sites in the topology.
        sites: usize,
    },
}

impl fmt::Display for MrfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrfError::LabelTooLarge { value } => {
                write!(f, "label value {value} does not fit in 6 bits")
            }
            MrfError::InvalidLabelCount { count } => {
                write!(f, "label count {count} outside the supported range 1..=64")
            }
            MrfError::WindowTooLarge { width, height } => {
                write!(
                    f,
                    "window {width}x{height} has components beyond 3-bit range"
                )
            }
            MrfError::LabelingSizeMismatch { expected, actual } => {
                write!(
                    f,
                    "labeling has {actual} entries but the grid has {expected} sites"
                )
            }
            MrfError::EmptyGrid => write!(f, "grid dimensions must be non-zero"),
            MrfError::SelfLoopEdge { site } => {
                write!(f, "edge ({site}, {site}) is a self-loop")
            }
            MrfError::EdgeOutOfRange { a, b, sites } => {
                write!(f, "edge ({a}, {b}) references a site outside 0..{sites}")
            }
        }
    }
}

impl Error for MrfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        for e in [
            MrfError::LabelTooLarge { value: 100 },
            MrfError::InvalidLabelCount { count: 0 },
            MrfError::WindowTooLarge {
                width: 9,
                height: 9,
            },
            MrfError::LabelingSizeMismatch {
                expected: 4,
                actual: 5,
            },
            MrfError::EmptyGrid,
            MrfError::SelfLoopEdge { site: 3 },
            MrfError::EdgeOutOfRange {
                a: 0,
                b: 9,
                sites: 4,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}

//! The Markov Random Field itself: grid + potentials + temperature.
//!
//! [`MarkovRandomField`] bundles everything Eq. 1 of the paper needs: the
//! lattice, the label space, the smoothness prior, the application
//! singleton, and the temperature `T`. Its central operation is computing
//! the **full conditional energies** of one site — the `M` numbers that
//! parameterize a Gibbs draw, and exactly what an RSU-G computes in
//! hardware.

use crate::energy::{SingletonPotential, SmoothnessPrior};
use crate::error::MrfError;
use crate::grid::Grid2D;
use crate::label::{Label, LabelSpace};

/// The clique neighbourhood of the field.
///
/// The paper's RSU-G targets first-order (4-neighbour) MRFs; second-order
/// (8-neighbour) fields are its §9 "other MRF problems" extension —
/// supported here at the model/software level, with diagonal doubletons
/// weighted by `1/√2` (inverse distance, the standard geometric
/// correction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Neighborhood {
    /// 4-neighbour cliques (paper Fig. 4).
    #[default]
    FirstOrder,
    /// 8-neighbour cliques (axis + diagonal).
    SecondOrder,
}

/// Weight applied to diagonal doubletons in a second-order field.
pub const DIAGONAL_WEIGHT: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// A first- or second-order MRF with a smoothness prior.
///
/// Generic over the singleton potential so application models monomorphize;
/// use `Box<dyn SingletonPotential>` when type erasure is more convenient.
#[derive(Debug, Clone)]
pub struct MarkovRandomField<S> {
    grid: Grid2D,
    space: LabelSpace,
    singleton: S,
    prior: SmoothnessPrior,
    temperature: f64,
    neighborhood: Neighborhood,
}

impl MarkovRandomField<()> {
    /// Starts building a field over `grid` with `space` labels per site.
    pub fn builder(grid: Grid2D, space: LabelSpace) -> MrfBuilder {
        MrfBuilder {
            grid,
            space,
            prior: SmoothnessPrior::squared_difference(1.0),
            temperature: 1.0,
            neighborhood: Neighborhood::FirstOrder,
        }
    }
}

/// Builder returned by [`MarkovRandomField::builder`].
#[derive(Debug, Clone)]
pub struct MrfBuilder {
    grid: Grid2D,
    space: LabelSpace,
    prior: SmoothnessPrior,
    temperature: f64,
    neighborhood: Neighborhood,
}

impl MrfBuilder {
    /// Sets the smoothness prior (default: squared difference, weight 1).
    pub fn prior(mut self, prior: SmoothnessPrior) -> Self {
        self.prior = prior;
        self
    }

    /// Sets the clique neighbourhood (default: first order).
    pub fn neighborhood(mut self, neighborhood: Neighborhood) -> Self {
        self.neighborhood = neighborhood;
        self
    }

    /// Sets the temperature `T` (default 1).
    ///
    /// # Panics
    ///
    /// Panics if `temperature` is not strictly positive and finite.
    pub fn temperature(mut self, temperature: f64) -> Self {
        assert!(
            temperature.is_finite() && temperature > 0.0,
            "temperature must be positive"
        );
        self.temperature = temperature;
        self
    }

    /// Supplies the singleton potential and finishes the build.
    pub fn singleton<S: SingletonPotential>(self, singleton: S) -> MrfBuilderWithSingleton<S> {
        MrfBuilderWithSingleton {
            inner: self,
            singleton,
        }
    }
}

/// Builder state once the singleton is known.
#[derive(Debug, Clone)]
pub struct MrfBuilderWithSingleton<S> {
    inner: MrfBuilder,
    singleton: S,
}

impl<S: SingletonPotential> MrfBuilderWithSingleton<S> {
    /// Sets the smoothness prior (default: squared difference, weight 1).
    pub fn prior(mut self, prior: SmoothnessPrior) -> Self {
        self.inner = self.inner.prior(prior);
        self
    }

    /// Sets the clique neighbourhood (default: first order).
    pub fn neighborhood(mut self, neighborhood: Neighborhood) -> Self {
        self.inner = self.inner.neighborhood(neighborhood);
        self
    }

    /// Sets the temperature `T` (default 1).
    ///
    /// # Panics
    ///
    /// Panics if `temperature` is not strictly positive and finite.
    pub fn temperature(mut self, temperature: f64) -> Self {
        self.inner = self.inner.temperature(temperature);
        self
    }

    /// Builds the field.
    pub fn build(self) -> MarkovRandomField<S> {
        MarkovRandomField {
            grid: self.inner.grid,
            space: self.inner.space,
            singleton: self.singleton,
            prior: self.inner.prior,
            temperature: self.inner.temperature,
            neighborhood: self.inner.neighborhood,
        }
    }
}

impl<S: SingletonPotential> MarkovRandomField<S> {
    /// The lattice.
    pub fn grid(&self) -> &Grid2D {
        &self.grid
    }

    /// The label space.
    pub fn space(&self) -> &LabelSpace {
        &self.space
    }

    /// The smoothness prior.
    pub fn prior(&self) -> &SmoothnessPrior {
        &self.prior
    }

    /// The singleton potential.
    pub fn singleton(&self) -> &S {
        &self.singleton
    }

    /// The temperature `T`.
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// A labeling with every site set to label 0, sized for this grid.
    pub fn uniform_labeling(&self) -> Vec<Label> {
        vec![Label::new(0); self.grid.len()]
    }

    /// Checks that `labels` has one in-space entry per site.
    ///
    /// # Errors
    ///
    /// Returns [`MrfError::LabelingSizeMismatch`] on a length mismatch or
    /// [`MrfError::LabelTooLarge`] if an entry is outside the label space.
    pub fn validate_labeling(&self, labels: &[Label]) -> Result<(), MrfError> {
        if labels.len() != self.grid.len() {
            return Err(MrfError::LabelingSizeMismatch {
                expected: self.grid.len(),
                actual: labels.len(),
            });
        }
        for l in labels {
            if !self.space.contains(*l) {
                return Err(MrfError::LabelTooLarge {
                    value: u16::from(l.value()),
                });
            }
        }
        Ok(())
    }

    /// The clique neighbourhood.
    pub fn neighborhood(&self) -> Neighborhood {
        self.neighborhood
    }

    /// The conditionally independent site groups for parallel sweeps:
    /// the two checkerboard parities for a first-order field, the four
    /// 2×2-block colours for a second-order field.
    pub fn independent_groups(&self) -> Vec<Vec<usize>> {
        match self.neighborhood {
            Neighborhood::FirstOrder => crate::grid::Parity::BOTH
                .into_iter()
                .map(|p| self.grid.sites_of_parity(p).collect())
                .collect(),
            Neighborhood::SecondOrder => (0..4)
                .map(|c| self.grid.sites_of_block_color(c).collect())
                .collect(),
        }
    }

    /// Energy of assigning `label` at `site` given the current labels of
    /// its neighbours: singleton plus the doubletons of the configured
    /// neighbourhood (Eq. 1's bracketed sum for one candidate label);
    /// diagonal doubletons carry the `1/√2` geometric weight.
    pub fn site_energy(&self, labels: &[Label], site: usize, label: Label) -> f64 {
        let mut e = self.singleton.energy(site, label);
        for n in self.grid.neighbors4(site).into_iter().flatten() {
            e += self.prior.energy(&self.space, label, labels[n]);
        }
        if self.neighborhood == Neighborhood::SecondOrder {
            for n in self.grid.neighbors_diagonal(site).into_iter().flatten() {
                e += DIAGONAL_WEIGHT * self.prior.energy(&self.space, label, labels[n]);
            }
        }
        e
    }

    /// Full conditional energies of `site`: one entry per label in the
    /// space. Allocates; use [`MarkovRandomField::conditional_energies_into`]
    /// in hot loops.
    pub fn conditional_energies(&self, labels: &[Label], site: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.space.count()];
        self.conditional_energies_into(labels, site, &mut out);
        out
    }

    /// Fills `out` (length `M`) with the full conditional energies of
    /// `site`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the label count.
    pub fn conditional_energies_into(&self, labels: &[Label], site: usize, out: &mut [f64]) {
        assert_eq!(
            out.len(),
            self.space.count(),
            "output buffer must have M entries"
        );
        for (slot, label) in out.iter_mut().zip(self.space.labels()) {
            *slot = self.site_energy(labels, site, label);
        }
    }

    /// Total energy of a labeling: all singletons plus each doubleton
    /// counted once.
    pub fn total_energy(&self, labels: &[Label]) -> f64 {
        let mut e = 0.0;
        for site in self.grid.sites() {
            e += self.singleton.energy(site, labels[site]);
            // Count right/down (and for second order, both down diagonals)
            // only: each doubleton once.
            let (x, y) = self.grid.coords(site);
            if x + 1 < self.grid.width() {
                let n = self.grid.index(x + 1, y);
                e += self.prior.energy(&self.space, labels[site], labels[n]);
            }
            if y + 1 < self.grid.height() {
                let n = self.grid.index(x, y + 1);
                e += self.prior.energy(&self.space, labels[site], labels[n]);
            }
            if self.neighborhood == Neighborhood::SecondOrder && y + 1 < self.grid.height() {
                if x > 0 {
                    let n = self.grid.index(x - 1, y + 1);
                    e += DIAGONAL_WEIGHT * self.prior.energy(&self.space, labels[site], labels[n]);
                }
                if x + 1 < self.grid.width() {
                    let n = self.grid.index(x + 1, y + 1);
                    e += DIAGONAL_WEIGHT * self.prior.energy(&self.space, labels[site], labels[n]);
                }
            }
        }
        e
    }

    /// Mean energy per site: [`MarkovRandomField::total_energy`] divided
    /// by the site count. The scale-free form is what convergence checks
    /// should compare against tolerances, so the same threshold means the
    /// same thing on a 64×64 smoke grid and a megapixel field.
    pub fn energy_per_site(&self, labels: &[Label]) -> f64 {
        self.total_energy(labels) / self.grid.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::ZeroSingleton;

    fn small_field() -> MarkovRandomField<ZeroSingleton> {
        MarkovRandomField::builder(Grid2D::new(4, 4), LabelSpace::scalar(3))
            .prior(SmoothnessPrior::squared_difference(1.0))
            .singleton(ZeroSingleton)
            .build()
    }

    #[test]
    fn uniform_labeling_has_zero_prior_energy() {
        let mrf = small_field();
        let labels = mrf.uniform_labeling();
        assert_eq!(mrf.total_energy(&labels), 0.0);
    }

    #[test]
    fn single_flip_changes_total_by_conditional_delta() {
        let mrf = small_field();
        let mut labels = mrf.uniform_labeling();
        let site = mrf.grid().index(1, 1);
        let before = mrf.total_energy(&labels);
        let e_old = mrf.site_energy(&labels, site, labels[site]);
        let new_label = Label::new(2);
        let e_new = mrf.site_energy(&labels, site, new_label);
        labels[site] = new_label;
        let after = mrf.total_energy(&labels);
        assert!(
            ((after - before) - (e_new - e_old)).abs() < 1e-12,
            "site-energy delta must equal total-energy delta"
        );
    }

    #[test]
    fn energy_per_site_is_total_over_site_count() {
        let mrf = small_field();
        let mut labels = mrf.uniform_labeling();
        labels[5] = Label::new(2);
        let total = mrf.total_energy(&labels);
        assert!((mrf.energy_per_site(&labels) - total / 16.0).abs() < 1e-15);
    }

    #[test]
    fn conditional_energies_cover_all_labels() {
        let mrf = small_field();
        let labels = mrf.uniform_labeling();
        let e = mrf.conditional_energies(&labels, 5);
        assert_eq!(e.len(), 3);
        // With all neighbours at 0, energy of label k is 4·k² here.
        assert_eq!(e, vec![0.0, 4.0, 16.0]);
    }

    #[test]
    fn boundary_sites_have_fewer_doubletons() {
        let mrf = small_field();
        let labels = mrf.uniform_labeling();
        let corner = mrf.grid().index(0, 0);
        let e = mrf.conditional_energies(&labels, corner);
        // Corner has 2 neighbours: energy of label k is 2·k².
        assert_eq!(e, vec![0.0, 2.0, 8.0]);
    }

    #[test]
    fn singleton_feeds_into_conditionals() {
        let mrf = MarkovRandomField::builder(Grid2D::new(2, 2), LabelSpace::scalar(2))
            .singleton(|site: usize, label: Label| {
                if site == 0 && label.value() == 1 {
                    5.0
                } else {
                    0.0
                }
            })
            .build();
        let labels = mrf.uniform_labeling();
        assert_eq!(mrf.conditional_energies(&labels, 0), vec![0.0, 7.0]);
        assert_eq!(mrf.conditional_energies(&labels, 3), vec![0.0, 2.0]);
    }

    #[test]
    fn validate_labeling_checks_size_and_range() {
        let mrf = small_field();
        assert!(mrf.validate_labeling(&mrf.uniform_labeling()).is_ok());
        assert!(matches!(
            mrf.validate_labeling(&[Label::new(0)]),
            Err(MrfError::LabelingSizeMismatch { .. })
        ));
        let mut bad = mrf.uniform_labeling();
        bad[3] = Label::new(7); // space only has 3 labels
        assert!(matches!(
            mrf.validate_labeling(&bad),
            Err(MrfError::LabelTooLarge { .. })
        ));
    }

    fn second_order_field() -> MarkovRandomField<ZeroSingleton> {
        MarkovRandomField::builder(Grid2D::new(4, 4), LabelSpace::scalar(3))
            .prior(SmoothnessPrior::squared_difference(1.0))
            .neighborhood(Neighborhood::SecondOrder)
            .singleton(ZeroSingleton)
            .build()
    }

    #[test]
    fn second_order_flip_delta_matches_total() {
        let mrf = second_order_field();
        let mut labels = mrf.uniform_labeling();
        labels[5] = Label::new(1); // perturb so diagonals matter
        let site = mrf.grid().index(2, 2);
        let before = mrf.total_energy(&labels);
        let e_old = mrf.site_energy(&labels, site, labels[site]);
        let new_label = Label::new(2);
        let e_new = mrf.site_energy(&labels, site, new_label);
        labels[site] = new_label;
        let after = mrf.total_energy(&labels);
        assert!(
            ((after - before) - (e_new - e_old)).abs() < 1e-12,
            "second-order delta mismatch"
        );
    }

    #[test]
    fn second_order_interior_energy_includes_diagonals() {
        let mrf = second_order_field();
        let labels = mrf.uniform_labeling();
        let site = mrf.grid().index(1, 1);
        // 4 axis neighbours at distance² = k², 4 diagonal at weight 1/√2.
        let e = mrf.site_energy(&labels, site, Label::new(1));
        let expect = 4.0 + 4.0 * DIAGONAL_WEIGHT;
        assert!((e - expect).abs() < 1e-12, "{e} vs {expect}");
    }

    #[test]
    fn independent_groups_cover_and_separate() {
        for mrf_groups in [
            small_field().independent_groups(),
            second_order_field().independent_groups(),
        ] {
            let total: usize = mrf_groups.iter().map(Vec::len).sum();
            assert_eq!(total, 16);
        }
        assert_eq!(small_field().independent_groups().len(), 2);
        assert_eq!(second_order_field().independent_groups().len(), 4);
        // No second-order group may contain two 8-adjacent sites.
        let mrf = second_order_field();
        for group in mrf.independent_groups() {
            for &s in &group {
                let neighbors: Vec<usize> = mrf
                    .grid()
                    .neighbors4(s)
                    .into_iter()
                    .chain(mrf.grid().neighbors_diagonal(s))
                    .flatten()
                    .collect();
                for &other in &group {
                    assert!(!neighbors.contains(&other), "{s} and {other} share a group");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn zero_temperature_rejected() {
        let _ =
            MarkovRandomField::builder(Grid2D::new(2, 2), LabelSpace::scalar(2)).temperature(0.0);
    }
}

//! 2-D lattices, 4-neighbourhoods, and checkerboard parity.
//!
//! The paper's first-order MRF (Fig. 4) places one random variable per
//! pixel with the four axis-aligned neighbours as its Markov blanket. Sites
//! of equal checkerboard parity are conditionally independent given the
//! other parity, which exposes the parallelism both the GPU baselines and
//! the RSU-augmented sweeps exploit.

use serde::{Deserialize, Serialize};

/// Checkerboard colour of a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Parity {
    /// Sites where `(x + y)` is even.
    Even,
    /// Sites where `(x + y)` is odd.
    Odd,
}

impl Parity {
    /// The other colour.
    pub fn flipped(self) -> Parity {
        match self {
            Parity::Even => Parity::Odd,
            Parity::Odd => Parity::Even,
        }
    }

    /// Both colours, in sweep order.
    pub const BOTH: [Parity; 2] = [Parity::Even, Parity::Odd];
}

/// A rectangular lattice of sites addressed either by `(x, y)` coordinates
/// or by flat row-major index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Grid2D {
    width: usize,
    height: usize,
}

impl Grid2D {
    /// Creates a `width × height` grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero; use [`Grid2D::try_new`] for a
    /// fallible constructor.
    pub fn new(width: usize, height: usize) -> Self {
        Self::try_new(width, height).expect("grid dimensions must be non-zero")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`crate::MrfError::EmptyGrid`] if either dimension is zero.
    pub fn try_new(width: usize, height: usize) -> Result<Self, crate::MrfError> {
        if width == 0 || height == 0 {
            Err(crate::MrfError::EmptyGrid)
        } else {
            Ok(Grid2D { width, height })
        }
    }

    /// Grid width in sites.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height in sites.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of sites.
    pub fn len(&self) -> usize {
        self.width * self.height
    }

    /// Whether the grid has no sites (never true for a constructed grid).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat index of `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the coordinates are out of range.
    pub fn index(&self, x: usize, y: usize) -> usize {
        debug_assert!(
            x < self.width && y < self.height,
            "({x}, {y}) out of bounds"
        );
        y * self.width + x
    }

    /// Coordinates of a flat index.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the index is out of range.
    pub fn coords(&self, site: usize) -> (usize, usize) {
        debug_assert!(site < self.len(), "site {site} out of bounds");
        (site % self.width, site / self.width)
    }

    /// Checkerboard parity of a site.
    pub fn parity(&self, site: usize) -> Parity {
        let (x, y) = self.coords(site);
        if (x + y) % 2 == 0 {
            Parity::Even
        } else {
            Parity::Odd
        }
    }

    /// The up-to-four axis neighbours of a site, in (left, right, up, down)
    /// order; boundary sites have fewer (`None` entries).
    pub fn neighbors4(&self, site: usize) -> [Option<usize>; 4] {
        let (x, y) = self.coords(site);
        [
            (x > 0).then(|| self.index(x - 1, y)),
            (x + 1 < self.width).then(|| self.index(x + 1, y)),
            (y > 0).then(|| self.index(x, y - 1)),
            (y + 1 < self.height).then(|| self.index(x, y + 1)),
        ]
    }

    /// The up-to-four diagonal neighbours of a site, in (up-left, up-right,
    /// down-left, down-right) order — the additional cliques of a
    /// second-order MRF (paper §9 future work).
    pub fn neighbors_diagonal(&self, site: usize) -> [Option<usize>; 4] {
        let (x, y) = self.coords(site);
        [
            (x > 0 && y > 0).then(|| self.index(x - 1, y - 1)),
            (x + 1 < self.width && y > 0).then(|| self.index(x + 1, y - 1)),
            (x > 0 && y + 1 < self.height).then(|| self.index(x - 1, y + 1)),
            (x + 1 < self.width && y + 1 < self.height).then(|| self.index(x + 1, y + 1)),
        ]
    }

    /// The 2×2-block colour of a site, in `0..4`: `(x % 2) + 2·(y % 2)`.
    ///
    /// In an 8-neighbourhood no two sites of the same block colour are
    /// adjacent, so the four colour classes are the conditionally
    /// independent update groups of a second-order MRF (the 8-neighbour
    /// analogue of checkerboard parity).
    pub fn block_color(&self, site: usize) -> u8 {
        let (x, y) = self.coords(site);
        u8::from(x % 2 == 1) + 2 * u8::from(y % 2 == 1)
    }

    /// Iterator over the sites of one 2×2-block colour (`0..4`).
    ///
    /// # Panics
    ///
    /// Panics if `color >= 4`.
    pub fn sites_of_block_color(&self, color: u8) -> impl Iterator<Item = usize> + '_ {
        assert!(color < 4, "block colours are 0..4");
        let grid = *self;
        grid.sites().filter(move |&s| grid.block_color(s) == color)
    }

    /// Iterator over all site indices in row-major order.
    pub fn sites(&self) -> std::ops::Range<usize> {
        0..self.len()
    }

    /// Iterator over the sites of one checkerboard colour.
    pub fn sites_of_parity(&self, parity: Parity) -> impl Iterator<Item = usize> + '_ {
        let grid = *self;
        grid.sites().filter(move |&s| grid.parity(s) == parity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        let g = Grid2D::new(7, 5);
        for site in g.sites() {
            let (x, y) = g.coords(site);
            assert_eq!(g.index(x, y), site);
        }
    }

    #[test]
    fn corner_neighbors() {
        let g = Grid2D::new(3, 3);
        let n = g.neighbors4(g.index(0, 0));
        assert_eq!(n, [None, Some(1), None, Some(3)]);
        let n = g.neighbors4(g.index(2, 2));
        assert_eq!(n, [Some(7), None, Some(5), None]);
    }

    #[test]
    fn interior_site_has_four_neighbors() {
        let g = Grid2D::new(3, 3);
        let n = g.neighbors4(g.index(1, 1));
        assert!(n.iter().all(Option::is_some));
    }

    #[test]
    fn neighborhood_is_symmetric() {
        let g = Grid2D::new(6, 4);
        for s in g.sites() {
            for n in g.neighbors4(s).into_iter().flatten() {
                assert!(
                    g.neighbors4(n).into_iter().flatten().any(|b| b == s),
                    "site {s} lists {n} but not vice versa"
                );
            }
        }
    }

    #[test]
    fn parity_partitions_all_sites() {
        let g = Grid2D::new(5, 5);
        let even: Vec<_> = g.sites_of_parity(Parity::Even).collect();
        let odd: Vec<_> = g.sites_of_parity(Parity::Odd).collect();
        assert_eq!(even.len() + odd.len(), g.len());
        assert_eq!(even.len(), 13); // 5x5 has 13 even, 12 odd sites
    }

    #[test]
    fn neighbors_always_have_opposite_parity() {
        let g = Grid2D::new(8, 6);
        for s in g.sites() {
            for n in g.neighbors4(s).into_iter().flatten() {
                assert_eq!(g.parity(n), g.parity(s).flipped());
            }
        }
    }

    #[test]
    fn diagonal_neighbors_at_corners() {
        let g = Grid2D::new(3, 3);
        let n = g.neighbors_diagonal(g.index(0, 0));
        assert_eq!(n, [None, None, None, Some(g.index(1, 1))]);
        let n = g.neighbors_diagonal(g.index(1, 1));
        assert!(n.iter().all(Option::is_some));
    }

    #[test]
    fn diagonal_neighborhood_is_symmetric() {
        let g = Grid2D::new(5, 4);
        for s in g.sites() {
            for n in g.neighbors_diagonal(s).into_iter().flatten() {
                assert!(
                    g.neighbors_diagonal(n)
                        .into_iter()
                        .flatten()
                        .any(|b| b == s),
                    "site {s} lists {n} but not vice versa"
                );
            }
        }
    }

    #[test]
    fn block_colors_partition_sites() {
        let g = Grid2D::new(6, 6);
        let total: usize = (0..4).map(|c| g.sites_of_block_color(c).count()).sum();
        assert_eq!(total, g.len());
        assert_eq!(g.sites_of_block_color(0).count(), 9);
    }

    #[test]
    fn same_block_color_sites_are_never_8_adjacent() {
        // The conditional-independence property the 4-colour schedule
        // relies on.
        let g = Grid2D::new(7, 5);
        for s in g.sites() {
            let color = g.block_color(s);
            let axis = g.neighbors4(s);
            let diag = g.neighbors_diagonal(s);
            for n in axis.into_iter().chain(diag).flatten() {
                assert_ne!(g.block_color(n), color, "sites {s} and {n} share a colour");
            }
        }
    }

    #[test]
    fn try_new_rejects_empty() {
        assert!(Grid2D::try_new(0, 5).is_err());
        assert!(Grid2D::try_new(5, 0).is_err());
        assert!(Grid2D::try_new(1, 1).is_ok());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn new_panics_on_empty() {
        Grid2D::new(0, 0);
    }
}

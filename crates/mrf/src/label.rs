//! 6-bit labels and label spaces (paper §4.4, §5.1).
//!
//! Random variables take one of `M ≤ 64` labels, carried in hardware as
//! 6-bit unsigned integers. A label is interpreted either as a **scalar**
//! (3 significant bits in the energy datapath) or as a **2-vector** whose
//! components occupy 3 bits each — the encoding used by dense motion
//! estimation, where a label is a `(dx, dy)` displacement in a search
//! window.

use crate::error::MrfError;
use serde::{Deserialize, Serialize};

/// Maximum number of labels a 6-bit variable can take.
pub const MAX_LABELS: u16 = 64;

/// Bits available per vector component.
pub const COMPONENT_BITS: u32 = 3;

/// A 6-bit label value.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Label(u8);

impl Label {
    /// Creates a label.
    ///
    /// # Panics
    ///
    /// Panics if `value >= 64` (does not fit in 6 bits). Use
    /// [`Label::try_new`] for a fallible constructor.
    pub fn new(value: u8) -> Self {
        Label::try_new(value).expect("label must fit in 6 bits")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`MrfError::LabelTooLarge`] if `value >= 64`.
    pub fn try_new(value: u8) -> Result<Self, MrfError> {
        if u16::from(value) >= MAX_LABELS {
            Err(MrfError::LabelTooLarge {
                value: u16::from(value),
            })
        } else {
            Ok(Label(value))
        }
    }

    /// The raw 6-bit value.
    pub fn value(self) -> u8 {
        self.0
    }

    /// Splits the label into its two 3-bit components `(lo, hi)`:
    /// bits `[2:0]` and `[5:3]`.
    pub fn components(self) -> (u8, u8) {
        (self.0 & 0b111, self.0 >> COMPONENT_BITS)
    }

    /// Builds a label from two 3-bit components.
    ///
    /// # Panics
    ///
    /// Panics if either component exceeds 7.
    pub fn from_components(lo: u8, hi: u8) -> Self {
        assert!(lo < 8 && hi < 8, "components must fit in 3 bits");
        Label((hi << COMPONENT_BITS) | lo)
    }
}

impl From<Label> for u8 {
    fn from(l: Label) -> u8 {
        l.0
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Whether labels are interpreted as scalars or 2-vectors in the energy
/// datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LabelKind {
    /// Scalar labels: only the low 3 bits enter the doubleton distance.
    Scalar,
    /// 2-vector labels: both 3-bit components enter the distance.
    Vector2,
}

/// A label space: how many labels exist and how they are interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LabelSpace {
    count: u8,
    kind: LabelKind,
}

impl LabelSpace {
    /// A scalar label space with `count` labels.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or exceeds [`MAX_LABELS`]. Use
    /// [`LabelSpace::try_scalar`] for a fallible constructor.
    pub fn scalar(count: u16) -> Self {
        Self::try_scalar(count).expect("label count must be in 1..=64")
    }

    /// Fallible scalar constructor.
    ///
    /// # Errors
    ///
    /// Returns [`MrfError::InvalidLabelCount`] for counts outside `1..=64`.
    pub fn try_scalar(count: u16) -> Result<Self, MrfError> {
        if count == 0 || count > MAX_LABELS {
            Err(MrfError::InvalidLabelCount { count })
        } else {
            Ok(LabelSpace {
                // The guard above proves count <= MAX_LABELS (64).
                count: u8::try_from(count).unwrap_or(u8::MAX),
                kind: LabelKind::Scalar,
            })
        }
    }

    /// A vector label space enumerating a `width × height` search window:
    /// label `k` encodes displacement `(k % width, k / width)` in its two
    /// 3-bit components.
    ///
    /// # Errors
    ///
    /// Returns [`MrfError::WindowTooLarge`] if either dimension exceeds 8
    /// (3-bit components) or [`MrfError::InvalidLabelCount`] if the window
    /// has more than 64 cells or is empty.
    pub fn try_window(width: u8, height: u8) -> Result<Self, MrfError> {
        if width > 8 || height > 8 {
            return Err(MrfError::WindowTooLarge { width, height });
        }
        let count = u16::from(width) * u16::from(height);
        if count == 0 || count > MAX_LABELS {
            return Err(MrfError::InvalidLabelCount { count });
        }
        Ok(LabelSpace {
            // The guard above proves count <= MAX_LABELS (64).
            count: u8::try_from(count).unwrap_or(u8::MAX),
            kind: LabelKind::Vector2,
        })
    }

    /// Infallible window constructor.
    ///
    /// # Panics
    ///
    /// Panics under the conditions [`LabelSpace::try_window`] reports.
    pub fn window(width: u8, height: u8) -> Self {
        Self::try_window(width, height).expect("window must fit 3-bit components")
    }

    /// Number of labels `M`.
    pub fn count(&self) -> usize {
        usize::from(self.count)
    }

    /// Scalar or vector interpretation.
    pub fn kind(&self) -> LabelKind {
        self.kind
    }

    /// Iterator over every label in the space.
    pub fn labels(&self) -> impl Iterator<Item = Label> + 'static {
        (0..self.count).map(Label)
    }

    /// Whether `label` belongs to this space.
    pub fn contains(&self, label: Label) -> bool {
        label.0 < self.count
    }

    /// The exact integer squared distance `d²(a, b)` of the paper's Eq. 2
    /// with unit weights: scalar spaces use the low 3-bit component only,
    /// vector spaces sum both component differences.
    ///
    /// Maximum value: `49` for scalars (7²), `98` for vectors — both fit
    /// comfortably in the 8-bit energy budget before weighting.
    pub fn distance_sq(&self, a: Label, b: Label) -> u16 {
        match self.kind {
            LabelKind::Scalar => {
                let (a0, _) = a.components();
                let (b0, _) = b.components();
                let d = u16::from(a0.abs_diff(b0));
                d * d
            }
            LabelKind::Vector2 => {
                let (a0, a1) = a.components();
                let (b0, b1) = b.components();
                let d0 = u16::from(a0.abs_diff(b0));
                let d1 = u16::from(a1.abs_diff(b1));
                d0 * d0 + d1 * d1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_component_round_trip() {
        for lo in 0..8 {
            for hi in 0..8 {
                let l = Label::from_components(lo, hi);
                assert_eq!(l.components(), (lo, hi));
            }
        }
    }

    #[test]
    fn label_rejects_seven_bits() {
        assert!(Label::try_new(63).is_ok());
        assert!(Label::try_new(64).is_err());
    }

    #[test]
    fn scalar_space_counts() {
        let s = LabelSpace::scalar(5);
        assert_eq!(s.count(), 5);
        assert_eq!(s.labels().count(), 5);
        assert!(s.contains(Label::new(4)));
        assert!(!s.contains(Label::new(5)));
    }

    #[test]
    fn window_space_for_motion() {
        // The paper's dense motion estimation: 7×7 window, 49 labels.
        let s = LabelSpace::window(7, 7);
        assert_eq!(s.count(), 49);
        assert_eq!(s.kind(), LabelKind::Vector2);
    }

    #[test]
    fn window_limits() {
        assert!(LabelSpace::try_window(9, 1).is_err());
        assert!(LabelSpace::try_window(0, 4).is_err());
        assert!(LabelSpace::try_window(8, 8).is_ok()); // exactly 64 labels
    }

    #[test]
    fn scalar_distance_ignores_high_bits() {
        let s = LabelSpace::scalar(64);
        // Labels 1 and 9 share the low component (1): scalar distance 0.
        assert_eq!(s.distance_sq(Label::new(1), Label::new(9)), 0);
        assert_eq!(s.distance_sq(Label::new(0), Label::new(7)), 49);
    }

    #[test]
    fn vector_distance_is_euclidean_squared() {
        let s = LabelSpace::window(8, 8);
        let a = Label::from_components(1, 2);
        let b = Label::from_components(4, 6);
        assert_eq!(s.distance_sq(a, b), 9 + 16);
        assert_eq!(s.distance_sq(a, a), 0);
    }

    #[test]
    fn distance_is_symmetric() {
        let s = LabelSpace::window(7, 7);
        for a in s.labels() {
            for b in s.labels() {
                assert_eq!(s.distance_sq(a, b), s.distance_sq(b, a));
            }
        }
    }

    #[test]
    fn max_distances_fit_energy_budget() {
        let scalar = LabelSpace::scalar(64);
        let vector = LabelSpace::window(8, 8);
        let max_s = scalar
            .labels()
            .flat_map(|a| scalar.labels().map(move |b| scalar.distance_sq(a, b)))
            .max()
            .unwrap();
        let max_v = vector
            .labels()
            .flat_map(|a| vector.labels().map(move |b| vector.distance_sq(a, b)))
            .max()
            .unwrap();
        assert_eq!(max_s, 49);
        assert_eq!(max_v, 98);
    }
}

//! Persistent labelings: a sized label map with binary I/O.
//!
//! Inference results (segmentations, flow fields, disparity maps) are
//! labelings over a grid; this module gives them a durable on-disk form so
//! long runs can be checkpointed and results compared across sessions.
//! Format: magic `MOGL`, version byte, `u32` LE width and height, then one
//! byte per site in row-major order.

use crate::error::MrfError;
use crate::grid::Grid2D;
use crate::label::Label;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"MOGL";
const VERSION: u8 = 1;

/// A labeling bound to its grid dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Labeling {
    grid: Grid2D,
    labels: Vec<Label>,
}

impl Labeling {
    /// Wraps a label vector with its grid.
    ///
    /// # Errors
    ///
    /// Returns [`MrfError::LabelingSizeMismatch`] if the lengths disagree.
    pub fn new(grid: Grid2D, labels: Vec<Label>) -> Result<Self, MrfError> {
        if labels.len() != grid.len() {
            return Err(MrfError::LabelingSizeMismatch {
                expected: grid.len(),
                actual: labels.len(),
            });
        }
        Ok(Labeling { grid, labels })
    }

    /// The grid.
    pub fn grid(&self) -> &Grid2D {
        &self.grid
    }

    /// The labels, row-major.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Consumes the labeling into its label vector.
    pub fn into_labels(self) -> Vec<Label> {
        self.labels
    }

    /// Fraction of sites where two labelings agree.
    ///
    /// # Panics
    ///
    /// Panics if the grids differ.
    pub fn agreement(&self, other: &Labeling) -> f64 {
        assert_eq!(self.grid, other.grid, "labelings must share a grid");
        let same = self
            .labels
            .iter()
            .zip(&other.labels)
            .filter(|(a, b)| a == b)
            .count();
        same as f64 / self.labels.len() as f64
    }

    /// Writes the binary representation.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&[VERSION])?;
        w.write_all(&(self.grid.width() as u32).to_le_bytes())?;
        w.write_all(&(self.grid.height() as u32).to_le_bytes())?;
        let bytes: Vec<u8> = self.labels.iter().map(|l| l.value()).collect();
        w.write_all(&bytes)
    }

    /// Reads a labeling back.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for a bad magic/version, impossible
    /// dimensions, out-of-range labels, or truncated data.
    pub fn read<R: Read>(mut r: R) -> io::Result<Self> {
        let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_owned());
        let mut header = [0u8; 13];
        r.read_exact(&mut header)?;
        if &header[0..4] != MAGIC {
            return Err(bad("not a labeling file (bad magic)"));
        }
        if header[4] != VERSION {
            return Err(bad("unsupported labeling version"));
        }
        let mut quad = [0u8; 4];
        quad.copy_from_slice(&header[5..9]);
        let width = u32::from_le_bytes(quad) as usize;
        quad.copy_from_slice(&header[9..13]);
        let height = u32::from_le_bytes(quad) as usize;
        let grid =
            Grid2D::try_new(width, height).map_err(|_| bad("labeling has empty dimensions"))?;
        // Guard absurd headers before allocating.
        if grid.len() > 1 << 28 {
            return Err(bad("labeling dimensions implausibly large"));
        }
        let mut bytes = vec![0u8; grid.len()];
        r.read_exact(&mut bytes)?;
        let labels = bytes
            .into_iter()
            .map(|b| Label::try_new(b).map_err(|_| bad("label value out of 6-bit range")))
            .collect::<io::Result<Vec<Label>>>()?;
        Ok(Labeling { grid, labels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> Labeling {
        let grid = Grid2D::new(5, 3);
        let labels = (0..15).map(|i| Label::new(i % 8)).collect();
        Labeling::new(grid, labels).unwrap()
    }

    #[test]
    fn round_trip() {
        let original = sample();
        let mut buf = Vec::new();
        original.write(&mut buf).unwrap();
        let restored = Labeling::read(Cursor::new(buf)).unwrap();
        assert_eq!(original, restored);
    }

    #[test]
    fn agreement_measures_overlap() {
        let a = sample();
        let mut labels = a.labels().to_vec();
        labels[0] = Label::new(7);
        labels[1] = Label::new(7);
        let b = Labeling::new(*a.grid(), labels).unwrap();
        let agreement = a.agreement(&b);
        assert!((agreement - 13.0 / 15.0).abs() < 1e-12);
        assert_eq!(a.agreement(&a), 1.0);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut buf = Vec::new();
        sample().write(&mut buf).unwrap();
        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(Labeling::read(Cursor::new(bad_magic)).is_err());
        let mut bad_version = buf.clone();
        bad_version[4] = 9;
        assert!(Labeling::read(Cursor::new(bad_version)).is_err());
    }

    #[test]
    fn rejects_out_of_range_labels() {
        let mut buf = Vec::new();
        sample().write(&mut buf).unwrap();
        let last = buf.len() - 1;
        buf[last] = 200; // not a 6-bit label
        assert!(Labeling::read(Cursor::new(buf)).is_err());
    }

    #[test]
    fn rejects_truncation_and_absurd_headers() {
        let mut buf = Vec::new();
        sample().write(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(Labeling::read(Cursor::new(buf)).is_err());
        // Implausibly large dimensions fail before allocation.
        let mut huge = Vec::new();
        huge.extend_from_slice(b"MOGL");
        huge.push(1);
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Labeling::read(Cursor::new(huge)).is_err());
    }

    #[test]
    fn size_mismatch_rejected() {
        let grid = Grid2D::new(2, 2);
        assert!(matches!(
            Labeling::new(grid, vec![Label::new(0)]),
            Err(MrfError::LabelingSizeMismatch { .. })
        ));
    }
}

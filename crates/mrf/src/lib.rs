//! # mogs-mrf — first-order Markov Random Fields on 2-D lattices
//!
//! The modelling substrate for the `mogs` workspace (Wang et al., ISCA 2016,
//! §4.1–§4.2). A **Markov Random Field** here is a grid of discrete random
//! variables (one per pixel), each taking one of `M ≤ 64` labels, whose
//! joint distribution is given by clique potential energies:
//!
//! ```text
//! p(Xᵢⱼ = x | neighbours, D) ∝ exp( −(1/T) · [ Ec(x, D)            singleton
//!                                            + Σₙ Ec(x, xₙ) ] )     doubletons
//! ```
//!
//! The paper restricts to first-order MRFs (4-neighbourhood) with
//! **smoothness-based priors**: the doubleton energy is a distance between
//! labels (squared difference, Eq. 2), optionally truncated, and the
//! singleton ties a variable to observed data. This crate provides:
//!
//! * [`grid::Grid2D`] — the lattice, 4-neighbourhoods, checkerboard parity;
//! * [`label::Label`] / [`label::LabelSpace`] — 6-bit labels, scalar (3-bit)
//!   or 2-vector (3+3-bit) component views;
//! * [`energy`] — smoothness doubletons and the
//!   [`SingletonPotential`](energy::SingletonPotential) trait;
//! * [`field::MarkovRandomField`] — full conditionals and total energy;
//! * [`precision`] — the paper's limited-precision (8-bit energy)
//!   quantization and redundant-label collapsing (§4.4).
//!
//! ## Example: a tiny denoising field
//!
//! ```
//! use mogs_mrf::{Grid2D, Label, LabelSpace, MarkovRandomField, SmoothnessPrior};
//!
//! // Observed noisy data: one byte per site.
//! let grid = Grid2D::new(8, 8);
//! let data: Vec<u8> = (0..64).map(|i| if i % 2 == 0 { 10 } else { 200 }).collect();
//! let space = LabelSpace::scalar(2);
//! let mrf = MarkovRandomField::builder(grid, space)
//!     .singleton(move |site: usize, label: Label| {
//!         let target = if label.value() == 0 { 0.0 } else { 255.0 };
//!         let d = f64::from(data[site]) - target;
//!         d * d / 255.0
//!     })
//!     .prior(SmoothnessPrior::squared_difference(1.0))
//!     .temperature(1.0)
//!     .build();
//! let labels = vec![Label::new(0); 64];
//! let energies = mrf.conditional_energies(&labels, 9);
//! assert_eq!(energies.len(), 2);
//! ```

pub mod energy;
pub mod error;
pub mod field;
pub mod grid;
pub mod label;
pub mod labeling;
pub mod precision;
pub mod topology;

pub use energy::{DoubletonKind, SingletonPotential, SmoothnessPrior};
pub use error::MrfError;
pub use field::{MarkovRandomField, MrfBuilder, Neighborhood};
pub use grid::{Grid2D, Parity};
pub use label::{Label, LabelKind, LabelSpace};
pub use labeling::Labeling;
pub use precision::EnergyQuantizer;
pub use topology::Topology;

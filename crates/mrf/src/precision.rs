//! Limited-precision energy arithmetic (paper §4.4).
//!
//! The RSU-G datapath carries energies as **8-bit unsigned integers** (a
//! saturating sum of five clique potentials), labels as 6-bit values with
//! 3-bit components. The paper observes that beyond 8 bits the energies of
//! different labels overlap into equal selection probabilities, and
//! recommends *collapsing* redundant labels before execution. This module
//! provides the float→fixed quantizer and the collapsing analysis.

use crate::label::Label;

/// Maximum representable quantized energy (8 bits).
pub const ENERGY_MAX: u8 = u8::MAX;

/// Quantizes model-level (f64) energies into the 8-bit hardware range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyQuantizer {
    scale: f64,
}

impl EnergyQuantizer {
    /// A quantizer mapping energy `e` to `round(e · scale)`, saturating at
    /// 255.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive and finite.
    pub fn new(scale: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        EnergyQuantizer { scale }
    }

    /// A quantizer that maps `max_energy` to the top of the 8-bit range, so
    /// the full dynamic range is used.
    ///
    /// # Panics
    ///
    /// Panics if `max_energy` is not strictly positive and finite.
    pub fn for_max_energy(max_energy: f64) -> Self {
        assert!(
            max_energy.is_finite() && max_energy > 0.0,
            "max energy must be positive"
        );
        EnergyQuantizer {
            scale: f64::from(ENERGY_MAX) / max_energy,
        }
    }

    /// The multiplicative scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Quantizes one energy, saturating at 255. Negative energies clamp to
    /// zero (the hardware datapath is unsigned).
    pub fn quantize(&self, energy: f64) -> u8 {
        let scaled = (energy * self.scale).round();
        if scaled <= 0.0 {
            0
        } else if scaled >= f64::from(ENERGY_MAX) {
            ENERGY_MAX
        } else {
            // audit:allow(lossy-cast) — float-to-int has no From path; the
            // two guards above pin `scaled` inside (0, 255), so the cast
            // is exact for the rounded value.
            scaled as u8
        }
    }

    /// Quantizes a slice of energies.
    pub fn quantize_all(&self, energies: &[f64]) -> Vec<u8> {
        energies.iter().map(|&e| self.quantize(e)).collect()
    }

    /// The model-level energy a quantized value represents (midpoint
    /// inverse).
    pub fn dequantize(&self, q: u8) -> f64 {
        f64::from(q) / self.scale
    }
}

/// Saturating 8-bit sum of clique potential energies — the exact operation
/// of the RSU-G energy stage (five terms: one singleton, four doubletons).
pub fn saturating_energy_sum(terms: &[u8]) -> u8 {
    terms.iter().fold(0u8, |acc, &t| acc.saturating_add(t))
}

/// Groups labels whose quantized energies are identical — the candidates
/// the paper recommends collapsing into a single label (§4.4).
///
/// Returns the groups in first-seen order; singleton groups mean no
/// redundancy at this precision.
pub fn redundant_label_groups(quantized: &[u8]) -> Vec<Vec<Label>> {
    let mut groups: Vec<(u8, Vec<Label>)> = Vec::new();
    for (i, &q) in quantized.iter().enumerate() {
        // Quantized slices hold at most MAX_LABELS (64) energies.
        let label = Label::new(u8::try_from(i).unwrap_or(u8::MAX));
        match groups.iter_mut().find(|(energy, _)| *energy == q) {
            Some((_, members)) => members.push(label),
            None => groups.push((q, vec![label])),
        }
    }
    groups.into_iter().map(|(_, members)| members).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_rounds_and_saturates() {
        let q = EnergyQuantizer::new(1.0);
        assert_eq!(q.quantize(0.4), 0);
        assert_eq!(q.quantize(0.6), 1);
        assert_eq!(q.quantize(254.7), 255);
        assert_eq!(q.quantize(1000.0), 255);
        assert_eq!(q.quantize(-5.0), 0);
    }

    #[test]
    fn for_max_energy_uses_full_range() {
        let q = EnergyQuantizer::for_max_energy(10.0);
        assert_eq!(q.quantize(10.0), 255);
        assert_eq!(q.quantize(0.0), 0);
        assert_eq!(q.quantize(5.0), 128); // round(127.5) = 128
    }

    #[test]
    fn dequantize_inverts_within_half_step() {
        let q = EnergyQuantizer::for_max_energy(100.0);
        for e in [0.0, 12.5, 50.0, 99.0] {
            let round_trip = q.dequantize(q.quantize(e));
            assert!((round_trip - e).abs() <= 0.5 / q.scale() + 1e-12, "e={e}");
        }
    }

    #[test]
    fn saturating_sum_matches_paper_budget() {
        // Five max terms saturate rather than wrap.
        assert_eq!(saturating_energy_sum(&[200, 200, 200, 200, 200]), 255);
        assert_eq!(saturating_energy_sum(&[10, 20, 30, 40, 50]), 150);
        assert_eq!(saturating_energy_sum(&[]), 0);
    }

    #[test]
    fn redundant_groups_found() {
        // Labels 0 and 2 quantize identically.
        let groups = redundant_label_groups(&[7, 3, 7, 9]);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0], vec![Label::new(0), Label::new(2)]);
        assert_eq!(groups[1], vec![Label::new(1)]);
        assert_eq!(groups[2], vec![Label::new(3)]);
    }

    #[test]
    fn no_redundancy_yields_singletons() {
        let groups = redundant_label_groups(&[1, 2, 3]);
        assert!(groups.iter().all(|g| g.len() == 1));
    }

    #[test]
    fn quantize_all_maps_each() {
        let q = EnergyQuantizer::new(2.0);
        assert_eq!(q.quantize_all(&[1.0, 2.0, 200.0]), vec![2, 4, 255]);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_rejected() {
        EnergyQuantizer::new(0.0);
    }
}

//! Sparse interference topologies: CSR adjacency over arbitrary graphs.
//!
//! Everything upstream of this module models a 2-D lattice; everything
//! downstream (the audit layer's schedule prover, the engine's phase
//! sharding) only ever needs the *interference graph* — which sites read
//! which other sites' labels during a Gibbs update. A [`Topology`] is
//! that graph in compressed-sparse-row form, with two constructors:
//!
//! * [`Topology::from_grid`] — the lattice under a clique
//!   [`Neighborhood`], the degenerate case every existing workload uses;
//! * [`Topology::from_edges`] — an arbitrary undirected, self-loop-free
//!   edge list, the general case (sparse factor graphs, MaxSAT-as-MRF
//!   encodings, RBM bipartite layers).
//!
//! The adjacency is canonical: each row lists neighbours in ascending
//! order, duplicates collapsed, every edge stored in both rows. Two
//! topologies over the same interference graph therefore have the same
//! [`fingerprint`](Topology::fingerprint) no matter how they were built,
//! which is what lets a schedule certificate be bound to the adjacency
//! it was proved against rather than to a constructor path.

use crate::field::Neighborhood;
use crate::grid::Grid2D;
use crate::MrfError;

/// An undirected interference graph in CSR form.
///
/// Sites are `0..len()`; `neighbors(site)` is a sorted, duplicate-free
/// slice. Self-loops are structurally excluded: a site that interfered
/// with itself could never be scheduled in any phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// `offsets[site]..offsets[site + 1]` indexes `neighbors`.
    offsets: Vec<usize>,
    /// Concatenated adjacency rows, each sorted ascending.
    neighbors: Vec<usize>,
    /// The originating lattice, when there is one — used only to render
    /// sites as `(x, y)` coordinates in audit reports.
    layout: Option<Grid2D>,
}

impl Topology {
    /// The interference graph of `grid` under `neighborhood` cliques:
    /// 4-neighbour rook adjacency first order, plus the diagonals second
    /// order.
    #[must_use]
    pub fn from_grid(grid: Grid2D, neighborhood: Neighborhood) -> Self {
        let n = grid.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        offsets.push(0);
        let mut row = Vec::with_capacity(8);
        for site in 0..n {
            row.clear();
            row.extend(grid.neighbors4(site).into_iter().flatten());
            if neighborhood == Neighborhood::SecondOrder {
                row.extend(grid.neighbors_diagonal(site).into_iter().flatten());
            }
            row.sort_unstable();
            neighbors.extend_from_slice(&row);
            offsets.push(neighbors.len());
        }
        Topology {
            offsets,
            neighbors,
            layout: Some(grid),
        }
    }

    /// A topology over `sites` vertices from an undirected edge list.
    /// Edges may appear in either orientation and repeatedly; the
    /// adjacency is symmetrized and deduplicated. Isolated sites are
    /// fine (they can join any phase).
    ///
    /// # Errors
    ///
    /// [`MrfError::EmptyGrid`] when `sites == 0`;
    /// [`MrfError::SelfLoopEdge`] for an `(s, s)` edge;
    /// [`MrfError::EdgeOutOfRange`] when an endpoint is `>= sites`.
    pub fn from_edges(sites: usize, edges: &[(usize, usize)]) -> Result<Self, MrfError> {
        if sites == 0 {
            return Err(MrfError::EmptyGrid);
        }
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); sites];
        for &(a, b) in edges {
            if a == b {
                return Err(MrfError::SelfLoopEdge { site: a });
            }
            if a >= sites || b >= sites {
                return Err(MrfError::EdgeOutOfRange { a, b, sites });
            }
            rows[a].push(b);
            rows[b].push(a);
        }
        let mut offsets = Vec::with_capacity(sites + 1);
        let mut neighbors = Vec::new();
        offsets.push(0);
        for row in &mut rows {
            row.sort_unstable();
            row.dedup();
            neighbors.extend_from_slice(row);
            offsets.push(neighbors.len());
        }
        Ok(Topology {
            offsets,
            neighbors,
            layout: None,
        })
    }

    /// Number of sites.
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the topology has no sites (never true for a constructed
    /// one — both constructors reject or cannot express zero sites).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The neighbours of `site`, sorted ascending, without `site` itself.
    #[must_use]
    pub fn neighbors(&self, site: usize) -> &[usize] {
        &self.neighbors[self.offsets[site]..self.offsets[site + 1]]
    }

    /// The degree of `site`.
    #[must_use]
    pub fn degree(&self, site: usize) -> usize {
        self.offsets[site + 1] - self.offsets[site]
    }

    /// The largest degree over all sites (0 for an edgeless graph).
    #[must_use]
    pub fn max_degree(&self) -> usize {
        (0..self.len()).map(|s| self.degree(s)).max().unwrap_or(0)
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// The originating lattice, when the topology was built from one.
    #[must_use]
    pub fn layout(&self) -> Option<&Grid2D> {
        self.layout.as_ref()
    }

    /// `(x, y)` coordinates for report rendering: lattice coordinates
    /// when a layout exists, `(site, 0)` otherwise.
    #[must_use]
    pub fn coords(&self, site: usize) -> (usize, usize) {
        match &self.layout {
            Some(grid) => grid.coords(site),
            None => (site, 0),
        }
    }

    /// FNV-1a fingerprint of the canonical adjacency (site count,
    /// offsets, neighbour lists). Two topologies fingerprint equal iff
    /// they are the same interference graph; the lattice layout tag does
    /// not participate, so `from_grid` and an equivalent `from_edges`
    /// agree.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        let mut mix = |value: usize| {
            let mut v = value as u64;
            for _ in 0..8 {
                hash ^= v & 0xff;
                hash = hash.wrapping_mul(PRIME);
                v >>= 8;
            }
        };
        mix(self.len());
        for &o in &self.offsets {
            mix(o);
        }
        for &n in &self.neighbors {
            mix(n);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_topology_matches_neighbor_queries() {
        let grid = Grid2D::new(4, 3);
        let first = Topology::from_grid(grid, Neighborhood::FirstOrder);
        assert_eq!(first.len(), 12);
        // Interior site 5 = (1, 1): left 4, right 6, up 1, down 9.
        assert_eq!(first.neighbors(5), &[1, 4, 6, 9]);
        // Corner site 0: right 1, down 4.
        assert_eq!(first.neighbors(0), &[1, 4]);
        let second = Topology::from_grid(grid, Neighborhood::SecondOrder);
        assert_eq!(second.neighbors(5), &[0, 1, 2, 4, 6, 8, 9, 10]);
        // Edge counts: 3·3 horizontal + 4·2 vertical (+ 2·3·2 diagonal).
        assert_eq!(first.edge_count(), 9 + 8);
        assert_eq!(second.edge_count(), 9 + 8 + 12);
        assert_eq!(first.coords(5), (1, 1));
        assert!(first.layout().is_some());
    }

    #[test]
    fn edge_list_is_symmetrized_and_deduplicated() {
        let topo =
            Topology::from_edges(4, &[(0, 1), (1, 0), (0, 1), (2, 1), (3, 0)]).expect("valid");
        assert_eq!(topo.neighbors(0), &[1, 3]);
        assert_eq!(topo.neighbors(1), &[0, 2]);
        assert_eq!(topo.neighbors(2), &[1]);
        assert_eq!(topo.neighbors(3), &[0]);
        assert_eq!(topo.edge_count(), 3);
        assert_eq!(topo.max_degree(), 2);
        assert_eq!(topo.coords(2), (2, 0));
        assert!(topo.layout().is_none());
    }

    #[test]
    fn isolated_sites_and_empty_edge_lists_are_allowed() {
        let topo = Topology::from_edges(3, &[]).expect("edgeless graph");
        assert_eq!(topo.len(), 3);
        assert_eq!(topo.edge_count(), 0);
        assert_eq!(topo.max_degree(), 0);
        assert!(topo.neighbors(1).is_empty());
    }

    #[test]
    fn invalid_edge_lists_are_rejected() {
        assert_eq!(
            Topology::from_edges(0, &[]),
            Err(MrfError::EmptyGrid),
            "zero sites"
        );
        assert_eq!(
            Topology::from_edges(3, &[(1, 1)]),
            Err(MrfError::SelfLoopEdge { site: 1 })
        );
        assert_eq!(
            Topology::from_edges(3, &[(0, 7)]),
            Err(MrfError::EdgeOutOfRange {
                a: 0,
                b: 7,
                sites: 3
            })
        );
    }

    #[test]
    fn fingerprint_is_constructor_independent_and_adjacency_sensitive() {
        let grid = Grid2D::new(3, 2);
        let from_grid = Topology::from_grid(grid, Neighborhood::FirstOrder);
        let mut edges = Vec::new();
        for site in 0..grid.len() {
            for n in grid.neighbors4(site).into_iter().flatten() {
                if n > site {
                    edges.push((site, n));
                }
            }
        }
        let from_edges = Topology::from_edges(grid.len(), &edges).expect("grid edges");
        assert_eq!(from_grid.fingerprint(), from_edges.fingerprint());
        assert_ne!(
            from_grid.fingerprint(),
            Topology::from_grid(grid, Neighborhood::SecondOrder).fingerprint()
        );
        let mut fewer = edges.clone();
        fewer.pop();
        assert_ne!(
            from_edges.fingerprint(),
            Topology::from_edges(grid.len(), &fewer)
                .expect("still valid")
                .fingerprint()
        );
    }
}

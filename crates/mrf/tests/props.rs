//! Property-based invariants of the MRF substrate.

use mogs_mrf::energy::ZeroSingleton;
use mogs_mrf::precision::{redundant_label_groups, saturating_energy_sum, EnergyQuantizer};
use mogs_mrf::{Grid2D, Label, LabelSpace, MarkovRandomField, Neighborhood, SmoothnessPrior};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Index ↔ coordinate round trip for arbitrary grid sizes.
    #[test]
    fn grid_index_round_trip(w in 1usize..40, h in 1usize..40) {
        let g = Grid2D::new(w, h);
        for site in g.sites() {
            let (x, y) = g.coords(site);
            prop_assert_eq!(g.index(x, y), site);
        }
    }

    /// Neighbourhoods are symmetric and never self-referential, for both
    /// orders.
    #[test]
    fn neighborhoods_symmetric(w in 1usize..20, h in 1usize..20) {
        let g = Grid2D::new(w, h);
        for s in g.sites() {
            for n in g.neighbors4(s).into_iter().chain(g.neighbors_diagonal(s)).flatten() {
                prop_assert_ne!(n, s);
                let back: Vec<usize> = g
                    .neighbors4(n)
                    .into_iter()
                    .chain(g.neighbors_diagonal(n))
                    .flatten()
                    .collect();
                prop_assert!(back.contains(&s));
            }
        }
    }

    /// The label distance is a symmetric, zero-diagonal, non-negative form
    /// for every space kind.
    #[test]
    fn distance_is_a_premetric(m in 1u16..=64, a in 0u8..64, b in 0u8..64) {
        let space = LabelSpace::scalar(m);
        let (a, b) = (a % m as u8, b % m as u8);
        let (la, lb) = (Label::new(a), Label::new(b));
        prop_assert_eq!(space.distance_sq(la, lb), space.distance_sq(lb, la));
        prop_assert_eq!(space.distance_sq(la, la), 0);
    }

    /// Quantization is monotone: larger energies never produce smaller
    /// codes.
    #[test]
    fn quantizer_is_monotone(scale in 0.01f64..100.0, a in 0.0f64..1000.0, b in 0.0f64..1000.0) {
        let q = EnergyQuantizer::new(scale);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(q.quantize(lo) <= q.quantize(hi));
    }

    /// The saturating sum is permutation-invariant and bounded.
    #[test]
    fn saturating_sum_invariants(mut terms in prop::collection::vec(0u8..=255, 0..6)) {
        let forward = saturating_energy_sum(&terms);
        terms.reverse();
        let backward = saturating_energy_sum(&terms);
        prop_assert_eq!(forward, backward);
    }

    /// Redundant-label groups partition the label set exactly.
    #[test]
    fn redundant_groups_partition(quantized in prop::collection::vec(0u8..=255, 1..32)) {
        let groups = redundant_label_groups(&quantized);
        let total: usize = groups.iter().map(Vec::len).sum();
        prop_assert_eq!(total, quantized.len());
        let mut seen = vec![false; quantized.len()];
        for group in &groups {
            for label in group {
                let idx = usize::from(label.value());
                prop_assert!(!seen[idx], "label {} appears twice", idx);
                seen[idx] = true;
            }
        }
    }

    /// Single-site energy deltas equal total-energy deltas for random
    /// flips, in both neighbourhoods — the core consistency property that
    /// makes Gibbs sampling correct.
    #[test]
    fn flip_delta_consistency(
        w in 2usize..8,
        h in 2usize..8,
        site_pick in 0usize..64,
        new_label in 0u8..4,
        second_order in proptest::bool::ANY,
    ) {
        let neighborhood = if second_order {
            Neighborhood::SecondOrder
        } else {
            Neighborhood::FirstOrder
        };
        let mrf = MarkovRandomField::builder(Grid2D::new(w, h), LabelSpace::scalar(4))
            .prior(SmoothnessPrior::squared_difference(1.3))
            .neighborhood(neighborhood)
            .singleton(ZeroSingleton)
            .build();
        let mut labels: Vec<Label> =
            (0..w * h).map(|i| Label::new((i % 4) as u8)).collect();
        let site = site_pick % (w * h);
        let before = mrf.total_energy(&labels);
        let e_old = mrf.site_energy(&labels, site, labels[site]);
        let e_new = mrf.site_energy(&labels, site, Label::new(new_label));
        labels[site] = Label::new(new_label);
        let after = mrf.total_energy(&labels);
        prop_assert!(((after - before) - (e_new - e_old)).abs() < 1e-9);
    }

    /// Independent groups never contain adjacent sites (w.r.t. the field's
    /// own neighbourhood).
    #[test]
    fn independent_groups_are_independent(
        w in 2usize..10,
        h in 2usize..10,
        second_order in proptest::bool::ANY,
    ) {
        let neighborhood = if second_order {
            Neighborhood::SecondOrder
        } else {
            Neighborhood::FirstOrder
        };
        let mrf = MarkovRandomField::builder(Grid2D::new(w, h), LabelSpace::scalar(2))
            .neighborhood(neighborhood)
            .singleton(ZeroSingleton)
            .build();
        let grid = mrf.grid();
        for group in mrf.independent_groups() {
            let members: std::collections::HashSet<usize> = group.iter().copied().collect();
            for &s in &group {
                let axis = grid.neighbors4(s).into_iter().flatten();
                let diag: Vec<usize> = if second_order {
                    grid.neighbors_diagonal(s).into_iter().flatten().collect()
                } else {
                    Vec::new()
                };
                for n in axis.chain(diag) {
                    prop_assert!(!members.contains(&n), "{} adjacent to {} in group", s, n);
                }
            }
        }
    }
}

proptest! {
    /// Labeling round trip for arbitrary grids and contents, and the
    /// parser never panics on arbitrary byte soup.
    #[test]
    fn labeling_round_trip(w in 1usize..20, h in 1usize..20, fill in 0u8..64) {
        use mogs_mrf::labeling::Labeling;
        let grid = Grid2D::new(w, h);
        let labels = vec![Label::new(fill); w * h];
        let original = Labeling::new(grid, labels).unwrap();
        let mut buf = Vec::new();
        original.write(&mut buf).unwrap();
        prop_assert_eq!(Labeling::read(std::io::Cursor::new(buf)).unwrap(), original);
    }

    #[test]
    fn labeling_parser_never_panics(bytes in prop::collection::vec(0u8..=255, 0..64)) {
        use mogs_mrf::labeling::Labeling;
        let _ = Labeling::read(std::io::Cursor::new(bytes)); // may Err, must not panic
    }
}

//! The proprietary laser-controller interface, emulated (paper §7).
//!
//! The bench prototype's wall-clock time is dominated not by optics but by
//! the serial command interface of the proprietary laser controller —
//! 60 seconds per image iteration against ~2 µs of actual sampling per
//! pixel. This module models that interface as a command queue with
//! per-command latencies, so experiment scripts can be *costed* before
//! they are run (the paper's team learned this the slow way) and so the
//! gap closed by electro-optical CMOS integration is derived rather than
//! asserted.

use std::time::Duration;

/// One command to the bench controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Command {
    /// Set a channel's laser power code (slow: serial protocol + settle).
    SetIntensity {
        /// Channel index (0 or 1).
        channel: u8,
        /// 8-bit power code.
        code: u8,
    },
    /// Arm the FPGA timestamp capture.
    Arm,
    /// Read back a captured timestamp pair.
    ReadTimestamps,
}

/// Per-command latencies of the bench interface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerLatency {
    /// Seconds per intensity write (serial protocol, power settle).
    pub set_intensity_s: f64,
    /// Seconds per arm command.
    pub arm_s: f64,
    /// Seconds per timestamp readback.
    pub read_s: f64,
}

impl Default for ControllerLatency {
    fn default() -> Self {
        // Calibrated so a 50×67 image iteration (one SetIntensity pair +
        // Arm + Read per pixel) costs the paper's ~60 s.
        ControllerLatency {
            set_intensity_s: 8.0e-3,
            arm_s: 0.45e-3,
            read_s: 0.45e-3,
        }
    }
}

/// A costed command session against the bench controller.
#[derive(Debug, Clone, Default)]
pub struct ControllerSession {
    commands: Vec<Command>,
}

impl ControllerSession {
    /// Starts an empty session.
    pub fn new() -> Self {
        ControllerSession {
            commands: Vec::new(),
        }
    }

    /// Queues one command.
    pub fn push(&mut self, command: Command) -> &mut Self {
        self.commands.push(command);
        self
    }

    /// Queues the per-pixel sequence of the Figure 7 experiment: program
    /// both channels for the pixel's label distribution, arm, read.
    pub fn push_pixel_evaluation(&mut self, code0: u8, code1: u8) -> &mut Self {
        self.push(Command::SetIntensity {
            channel: 0,
            code: code0,
        })
        .push(Command::SetIntensity {
            channel: 1,
            code: code1,
        })
        .push(Command::Arm)
        .push(Command::ReadTimestamps)
    }

    /// Commands queued so far.
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// Whether the session is empty.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Total interface time of the session under the given latencies.
    pub fn duration(&self, latency: &ControllerLatency) -> Duration {
        let seconds: f64 = self
            .commands
            .iter()
            .map(|c| match c {
                Command::SetIntensity { .. } => latency.set_intensity_s,
                Command::Arm => latency.arm_s,
                Command::ReadTimestamps => latency.read_s,
            })
            .sum();
        Duration::from_secs_f64(seconds)
    }

    /// Convenience: the session for one full image iteration of
    /// `pixels` pixel evaluations.
    pub fn image_iteration(pixels: usize) -> Self {
        let mut session = ControllerSession::new();
        for _ in 0..pixels {
            session.push_pixel_evaluation(255, 128);
        }
        session
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_iteration_costs_about_sixty_seconds() {
        let session = ControllerSession::image_iteration(50 * 67);
        let t = session
            .duration(&ControllerLatency::default())
            .as_secs_f64();
        assert!((55.0..65.0).contains(&t), "iteration interface time {t} s");
    }

    #[test]
    fn intensity_writes_dominate() {
        let latency = ControllerLatency::default();
        let mut only_reads = ControllerSession::new();
        let mut only_sets = ControllerSession::new();
        for _ in 0..1000 {
            only_reads.push(Command::ReadTimestamps);
            only_sets.push(Command::SetIntensity {
                channel: 0,
                code: 1,
            });
        }
        assert!(only_sets.duration(&latency) > 10 * only_reads.duration(&latency));
    }

    #[test]
    fn pixel_evaluation_is_four_commands() {
        let mut s = ControllerSession::new();
        s.push_pixel_evaluation(255, 3);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn integration_would_remove_the_interface() {
        // An integrated RSU-G2 evaluates the same pixel in ~8 cycles at
        // 1 GHz; the bench interface is ~9 ms per pixel: a >10⁵ gap — the
        // §7 argument for electro-optical CMOS integration, derived.
        let bench_per_pixel = ControllerSession::image_iteration(1)
            .duration(&ControllerLatency::default())
            .as_secs_f64();
        let integrated_per_pixel = 8e-9;
        assert!(bench_per_pixel / integrated_per_pixel > 1e5);
    }
}

//! The two prototype experiments of §7.

use crate::rig::{PrototypeRig, RigSampler};
use mogs_vision::image::GrayImage;
use mogs_vision::segmentation::{Segmentation, SegmentationConfig};
use mogs_vision::synthetic;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One point of the ratio-parameterization sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioPoint {
    /// Target relative probability.
    pub target: f64,
    /// Measured win ratio over the trials.
    pub measured: f64,
    /// Relative error `|measured − target| / target`.
    pub relative_error: f64,
}

/// Sweeps target ratios from 1 to 255 and measures the achieved pairwise
/// relative probabilities (§7, first experiment).
///
/// `trials` first-to-fire draws are taken per point; 50k reproduces the
/// paper's error bands comfortably.
pub fn ratio_sweep(
    rig: &mut PrototypeRig,
    targets: &[f64],
    trials: usize,
    seed: u64,
) -> Vec<RatioPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    targets
        .iter()
        .map(|&target| {
            rig.set_ratio(target);
            let measured = rig.measured_ratio(trials, &mut rng);
            RatioPoint {
                target,
                measured,
                relative_error: (measured - target).abs() / target,
            }
        })
        .collect()
}

/// The standard sweep targets (powers-of-two-ish ladder over 1..=255).
pub fn standard_targets() -> Vec<f64> {
    vec![
        1.0, 2.0, 4.0, 8.0, 15.0, 30.0, 60.0, 100.0, 150.0, 200.0, 255.0,
    ]
}

/// Result of the Figure 7 segmentation demonstration.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Result {
    /// The 50×67 input image.
    pub input: GrayImage,
    /// The MCMC sample after 10 iterations, rendered as an image.
    pub sample: GrayImage,
    /// Fraction of pixels matching the generating ground truth.
    pub accuracy: f64,
}

/// Runs the Figure 7 demonstration: a two-label MRF over a 50×67 synthetic
/// scene, energies computed "on the PC", the prototype RSU-G2 sampling the
/// output label distribution, sampled for 10 MCMC iterations.
pub fn segment_demo(rig: PrototypeRig, seed: u64) -> Fig7Result {
    // Figure 7's input is 50 wide × 67 tall.
    let scene = synthetic::region_scene(50, 67, 2, 20.0, seed);
    let app = Segmentation::new(
        scene.image.clone(),
        SegmentationConfig {
            num_labels: 2,
            // Mode tracking needs post-burn-in samples within 10 iterations.
            burn_in_fraction: 0.0,
            ..SegmentationConfig::default()
        },
    );
    let result = app.run(RigSampler::new(rig), 10, seed);
    let accuracy = mogs_vision::metrics::label_accuracy(&result.labels, &scene.truth);
    Fig7Result {
        input: scene.image,
        sample: app.labels_to_image(&result.labels),
        accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rig::RigConfig;

    #[test]
    fn sweep_reproduces_paper_error_bands() {
        // Paper §7: within 10% for ratios below 30, ~24% above.
        let mut rig = PrototypeRig::new(RigConfig::default());
        let points = ratio_sweep(&mut rig, &standard_targets(), 60_000, 42);
        for p in &points {
            if p.target <= 30.0 {
                assert!(
                    p.relative_error < 0.10,
                    "ratio {}: error {:.3}",
                    p.target,
                    p.relative_error
                );
            } else {
                assert!(
                    p.relative_error < 0.40,
                    "ratio {}: error {:.3} beyond even the degraded band",
                    p.target,
                    p.relative_error
                );
            }
        }
        // At least one high-ratio point should show the degradation the
        // paper reports.
        let worst_high = points
            .iter()
            .filter(|p| p.target > 30.0)
            .map(|p| p.relative_error)
            .fold(0.0, f64::max);
        assert!(
            worst_high > 0.10,
            "high ratios should degrade, worst {worst_high:.3}"
        );
    }

    #[test]
    fn figure7_recovers_regions_in_ten_iterations() {
        let result = segment_demo(PrototypeRig::default(), 7);
        assert_eq!(result.input.width(), 50);
        assert_eq!(result.input.height(), 67);
        assert!(result.accuracy > 0.85, "accuracy {}", result.accuracy);
    }

    #[test]
    fn sweep_is_deterministic_for_a_seed() {
        let mut rig1 = PrototypeRig::default();
        let mut rig2 = PrototypeRig::default();
        let a = ratio_sweep(&mut rig1, &[4.0, 16.0], 5_000, 9);
        let b = ratio_sweep(&mut rig2, &[4.0, 16.0], 5_000, 9);
        assert_eq!(a, b);
    }
}

//! # mogs-proto — the macro-scale RSU-G2 hardware prototype, emulated
//!
//! The paper's §7 demonstrates a rudimentary RSU-G with bench-top parts:
//! two laser sources illuminate two RET networks (cuvettes), two discrete
//! SPADs detect the output fluorescence, and an FPGA timestamps photon
//! arrivals with 250 ps resolution; a PC parameterizes the distribution by
//! setting relative laser intensities. Two experiments run on it:
//!
//! 1. **Ratio parameterization** — sweep the target relative probability
//!    of the two channels from 1 to 255 and measure the achieved ratio.
//!    The paper reports ≤10% error below ratio 30 and ~24% above.
//! 2. **Image segmentation** — a two-label MRF over a 50×67 image, with
//!    energies computed in software and the prototype sampling the output
//!    label distribution; Figure 7 shows the sample at the 10th iteration.
//!
//! We cannot ship lasers, so [`rig`] emulates the bench: an 8-bit laser
//! power DAC with systematic calibration error, SPAD dark counts at a
//! macro-scale level, and the FPGA's 250 ps timer. Those three
//! imperfections *derive* the paper's error profile — the weak channel of
//! a high ratio lands between DAC codes and rides on the dark-count floor.
//! [`experiments`] packages both paper experiments, and [`timing`] records
//! why the prototype is functionally interesting but performance-wise
//! meaningless (~2 µs per sample, 60 s per image-iteration through the
//! proprietary laser-controller interface).

pub mod controller;
pub mod experiments;
pub mod rig;
pub mod timing;

pub use controller::{Command, ControllerLatency, ControllerSession};
pub use experiments::{ratio_sweep, segment_demo, Fig7Result, RatioPoint};
pub use rig::{PrototypeRig, RigConfig, RigSampler};
pub use timing::PrototypeTiming;

//! The emulated two-channel bench rig (paper Fig. 6).
//!
//! Each channel is laser → RET network → SPAD → FPGA timestamp. The
//! emulation keeps the three imperfections that shape the prototype's
//! measured accuracy:
//!
//! * **8-bit laser power DAC** — a requested relative power lands on the
//!   nearest of 255 codes, so the weak channel of a large ratio suffers
//!   large relative quantization error;
//! * **systematic calibration error** — each DAC code's true output power
//!   deviates by a fixed (seeded) few-percent factor, as an imperfectly
//!   characterized bench supply would;
//! * **dark counts** — each SPAD fires spuriously at a small fraction of
//!   the full-scale detection rate, flooring how improbable the weak
//!   channel can get.
//!
//! First-to-fire between the two channels implements a Bernoulli draw with
//! the programmed relative probability — the operation the RSU-G2 performs
//! per pixel in the Figure 7 segmentation.

use mogs_gibbs::LabelSampler;
use mogs_mrf::Label;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of laser power codes (8-bit DAC; code 0 = off).
pub const DAC_CODES: u16 = 255;

/// FPGA timestamp resolution in seconds (250 ps, §7).
pub const FPGA_RESOLUTION_S: f64 = 250e-12;

/// Configuration of the emulated rig.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RigConfig {
    /// Full-scale detected-photon rate of a channel at DAC code 255, in
    /// counts/s. Bench-top macro optics: ~10⁶ counts/s.
    pub full_scale_rate: f64,
    /// SPAD dark-count rate as a fraction of the full-scale rate.
    pub dark_fraction: f64,
    /// Standard deviation of the per-code systematic calibration error.
    pub calibration_sigma: f64,
    /// Seed for the (fixed) calibration table.
    pub calibration_seed: u64,
}

impl Default for RigConfig {
    fn default() -> Self {
        RigConfig {
            full_scale_rate: 1e6,
            dark_fraction: 1.2e-3,
            calibration_sigma: 0.03,
            calibration_seed: 0x38,
        }
    }
}

/// The emulated two-channel prototype.
#[derive(Debug, Clone)]
pub struct PrototypeRig {
    config: RigConfig,
    /// Systematic gain factor per DAC code (drawn once at "calibration").
    gain: Vec<f64>,
    /// Current DAC codes of the two channels.
    codes: [u16; 2],
}

impl PrototypeRig {
    /// Builds the rig and performs its one-time calibration draw.
    pub fn new(config: RigConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.calibration_seed);
        let gain = (0..=DAC_CODES)
            .map(|_| 1.0 + gaussian(&mut rng) * config.calibration_sigma)
            .collect();
        PrototypeRig {
            config,
            gain,
            codes: [DAC_CODES, DAC_CODES],
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RigConfig {
        &self.config
    }

    /// Programs a target relative probability `ratio = P(ch0) / P(ch1)`:
    /// channel 0 runs at full scale, channel 1 at the nearest DAC code to
    /// `255 / ratio` (floored at code 1 — the laser cannot emit "a
    /// quarter of a code").
    ///
    /// # Panics
    ///
    /// Panics if `ratio < 1` (swap the channels instead) or is not finite.
    pub fn set_ratio(&mut self, ratio: f64) {
        assert!(
            ratio.is_finite() && ratio >= 1.0,
            "ratio must be at least 1"
        );
        self.codes[0] = DAC_CODES;
        let target = f64::from(DAC_CODES) / ratio;
        self.codes[1] = (target.round() as u16).clamp(1, DAC_CODES);
    }

    /// Programs both channels' DAC codes directly.
    ///
    /// # Panics
    ///
    /// Panics if a code exceeds 255.
    pub fn set_codes(&mut self, ch0: u16, ch1: u16) {
        assert!(ch0 <= DAC_CODES && ch1 <= DAC_CODES, "codes are 8-bit");
        self.codes = [ch0, ch1];
    }

    /// The currently programmed codes.
    pub fn codes(&self) -> [u16; 2] {
        self.codes
    }

    /// The actual detected-photon rate (counts/s) of a channel, including
    /// calibration error and dark counts.
    pub fn channel_rate(&self, channel: usize) -> f64 {
        let code = self.codes[channel];
        let optical = if code == 0 {
            0.0
        } else {
            self.config.full_scale_rate * f64::from(code) / f64::from(DAC_CODES)
                * self.gain[usize::from(code)]
        };
        optical + self.config.full_scale_rate * self.config.dark_fraction
    }

    /// One first-to-fire trial: returns the channel whose SPAD fired
    /// first (FPGA-quantized; exact 250 ps ties re-arm and repeat, which
    /// is what the bench procedure did).
    pub fn sample_winner<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        loop {
            let t0 = quantize(sample_exp(rng, self.channel_rate(0)));
            let t1 = quantize(sample_exp(rng, self.channel_rate(1)));
            if t0 < t1 {
                return 0;
            }
            if t1 < t0 {
                return 1;
            }
        }
    }

    /// Measures the achieved win ratio `wins(ch0) / wins(ch1)` over `n`
    /// trials.
    pub fn measured_ratio<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> f64 {
        let wins0 = (0..n).filter(|_| self.sample_winner(rng) == 0).count();
        let wins1 = n - wins0;
        wins0 as f64 / (wins1.max(1)) as f64
    }
}

impl Default for PrototypeRig {
    fn default() -> Self {
        PrototypeRig::new(RigConfig::default())
    }
}

/// Adapter exposing the two-channel rig as a [`LabelSampler`] for
/// two-label MRFs — the role it plays in the Figure 7 segmentation, where
/// the PC computes energies and the prototype samples the output label.
#[derive(Debug, Clone)]
pub struct RigSampler {
    rig: PrototypeRig,
}

impl RigSampler {
    /// Wraps a rig.
    pub fn new(rig: PrototypeRig) -> Self {
        RigSampler { rig }
    }
}

impl LabelSampler for RigSampler {
    fn sample_label<R: Rng + ?Sized>(
        &mut self,
        energies: &[f64],
        temperature: f64,
        _current: Label,
        rng: &mut R,
    ) -> Label {
        assert_eq!(energies.len(), 2, "the RSU-G2 prototype has two channels");
        // Software parameterization (done on the PC in §7): Boltzmann
        // weights → a ratio → laser codes. Channel 0 carries the more
        // probable label.
        let (lo, hi): (u8, u8) = if energies[0] <= energies[1] {
            (0, 1)
        } else {
            (1, 0)
        };
        let ratio = ((energies[usize::from(hi)] - energies[usize::from(lo)]) / temperature).exp();
        let mut rig = self.rig.clone();
        rig.set_ratio(ratio.clamp(1.0, 255.0));
        let winner = rig.sample_winner(rng);
        Label::new(if winner == 0 { lo } else { hi })
    }

    fn name(&self) -> &'static str {
        "rsu-g2-prototype"
    }
}

fn quantize(t: f64) -> u64 {
    (t / FPGA_RESOLUTION_S) as u64
}

fn sample_exp<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    -(1.0 - rng.gen::<f64>()).ln() / rate
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_codes_give_even_odds() {
        let rig = PrototypeRig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let r = rig.measured_ratio(40_000, &mut rng);
        assert!((r - 1.0).abs() < 0.1, "measured {r}");
    }

    #[test]
    fn small_ratios_are_accurate() {
        let mut rig = PrototypeRig::default();
        let mut rng = StdRng::seed_from_u64(2);
        for target in [2.0, 5.0, 10.0, 20.0] {
            rig.set_ratio(target);
            let measured = rig.measured_ratio(60_000, &mut rng);
            let err = (measured - target).abs() / target;
            assert!(err < 0.10, "ratio {target}: measured {measured} ({err:.3})");
        }
    }

    #[test]
    fn large_ratios_degrade() {
        // Target 150 lands between DAC codes (255/150 = 1.7 → code 2 ⇒
        // achieved ≈ 127) and rides the dark floor; the paper saw ~24%
        // error in this regime. (Individual targets can get lucky — e.g.
        // 200 rounds up to a ratio the dark floor pulls back down — so we
        // test a known-bad point, and the sweep test covers the band.)
        let mut rig = PrototypeRig::default();
        let mut rng = StdRng::seed_from_u64(3);
        rig.set_ratio(150.0);
        let measured = rig.measured_ratio(200_000, &mut rng);
        let err = (measured - 150.0_f64).abs() / 150.0;
        assert!(err > 0.10 && err < 0.5, "error {err}");
    }

    #[test]
    fn dac_quantization_is_the_high_ratio_error_source() {
        let mut rig = PrototypeRig::new(RigConfig {
            dark_fraction: 0.0,
            calibration_sigma: 0.0,
            ..RigConfig::default()
        });
        // Target 100 → code round(2.55) = 3 → achieved 85.
        rig.set_ratio(100.0);
        assert_eq!(rig.codes(), [255, 3]);
        let achieved = rig.channel_rate(0) / rig.channel_rate(1);
        assert!((achieved - 85.0).abs() < 1.0, "achieved {achieved}");
    }

    #[test]
    fn dark_counts_floor_the_weak_channel() {
        let rig_dark = {
            let mut r = PrototypeRig::new(RigConfig {
                dark_fraction: 0.01,
                calibration_sigma: 0.0,
                ..RigConfig::default()
            });
            r.set_codes(255, 1);
            r
        };
        let ideal = 255.0;
        let achieved = rig_dark.channel_rate(0) / rig_dark.channel_rate(1);
        assert!(
            achieved < 0.5 * ideal,
            "dark floor should compress the ratio, got {achieved}"
        );
    }

    #[test]
    fn rig_sampler_follows_boltzmann_for_two_labels() {
        use mogs_gibbs::SoftmaxGibbs;
        let mut sampler = RigSampler::new(PrototypeRig::default());
        let energies = [0.0, 1.2];
        let t = 1.0;
        let expect = SoftmaxGibbs::probabilities(&energies, t);
        let mut rng = StdRng::seed_from_u64(4);
        let n = 40_000;
        let wins0 = (0..n)
            .filter(|_| {
                sampler.sample_label(&energies, t, Label::new(0), &mut rng) == Label::new(0)
            })
            .count();
        let p0 = wins0 as f64 / f64::from(n);
        assert!((p0 - expect[0]).abs() < 0.03, "p0 {p0} vs {}", expect[0]);
    }

    #[test]
    fn calibration_is_deterministic_per_seed() {
        let a = PrototypeRig::new(RigConfig::default());
        let b = PrototypeRig::new(RigConfig::default());
        assert_eq!(a.channel_rate(0), b.channel_rate(0));
    }

    #[test]
    #[should_panic(expected = "ratio must be at least 1")]
    fn sub_unity_ratio_rejected() {
        PrototypeRig::default().set_ratio(0.5);
    }
}

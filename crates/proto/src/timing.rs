//! Prototype timing facts (§7).
//!
//! The paper is explicit that the macro prototype's performance is
//! meaningless — discrete components and a proprietary laser-controller
//! interface dominate — but the numbers are still worth carrying: they
//! motivate the integrated design and quantify the gap electro-optical
//! CMOS integration closes.

/// Timing parameters of the bench prototype.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrototypeTiming {
    /// Worst-case sampling time per pixel in microseconds (§7: "no longer
    /// than ~2 µs per pixel").
    pub per_pixel_sample_us: f64,
    /// Proprietary laser-controller interface delay per image iteration,
    /// in seconds (§7: 60 s/image-iteration).
    pub controller_delay_s: f64,
}

impl Default for PrototypeTiming {
    fn default() -> Self {
        PrototypeTiming {
            per_pixel_sample_us: 2.0,
            controller_delay_s: 60.0,
        }
    }
}

impl PrototypeTiming {
    /// Wall-clock seconds for one MCMC iteration over an image.
    pub fn iteration_seconds(&self, pixels: usize) -> f64 {
        self.controller_delay_s + pixels as f64 * self.per_pixel_sample_us * 1e-6
    }

    /// Wall-clock seconds for the Figure 7 demonstration (10 iterations of
    /// a 50×67 image).
    pub fn figure7_seconds(&self) -> f64 {
        10.0 * self.iteration_seconds(50 * 67)
    }

    /// How many times faster an integrated RSU-G1 samples one pixel than
    /// the bench prototype, given the integrated per-pixel latency in ns.
    pub fn integration_gain(&self, integrated_ns_per_pixel: f64) -> f64 {
        self.per_pixel_sample_us * 1000.0 / integrated_ns_per_pixel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controller_dominates_iteration_time() {
        let t = PrototypeTiming::default();
        let iter = t.iteration_seconds(50 * 67);
        assert!(iter > 60.0 && iter < 61.0, "iteration {iter}");
        // The sampling itself is under 7 ms of those 60 s.
        assert!((iter - 60.0) < 0.01);
    }

    #[test]
    fn figure7_takes_about_ten_minutes() {
        let t = PrototypeTiming::default().figure7_seconds();
        assert!(t > 600.0 && t < 620.0, "fig 7 demo {t} s");
    }

    #[test]
    fn integration_closes_three_orders_of_magnitude() {
        // An RSU-G1 samples a 5-label pixel in 11 cycles ≈ 11 ns at 1 GHz.
        let gain = PrototypeTiming::default().integration_gain(11.0);
        assert!(gain > 100.0, "gain {gain}");
    }
}

//! Chromophore photophysics.
//!
//! A chromophore is an optically active molecule characterized by its
//! absorption and emission bands, excited-state lifetime, and fluorescence
//! quantum yield. RET networks are built by placing chromophores a few
//! nanometres apart so that excitons hop between them.

use crate::error::RetError;
use crate::spectra::GaussianBand;

/// An optically active molecule participating in a RET network.
#[derive(Debug, Clone, PartialEq)]
pub struct Chromophore {
    name: String,
    absorption: GaussianBand,
    emission: GaussianBand,
    /// Excited-state (fluorescence) lifetime in nanoseconds.
    lifetime_ns: f64,
    /// Fluorescence quantum yield in `[0, 1]`: probability an excited
    /// molecule emits a photon rather than decaying non-radiatively.
    quantum_yield: f64,
}

impl Chromophore {
    /// Creates a chromophore from its photophysical parameters.
    ///
    /// # Errors
    ///
    /// Returns [`RetError::InvalidChromophore`] if `lifetime_ns` is not
    /// strictly positive and finite or `quantum_yield` is outside `[0, 1]`.
    pub fn new(
        name: impl Into<String>,
        absorption: GaussianBand,
        emission: GaussianBand,
        lifetime_ns: f64,
        quantum_yield: f64,
    ) -> Result<Self, RetError> {
        if !(lifetime_ns.is_finite() && lifetime_ns > 0.0) {
            return Err(RetError::InvalidChromophore {
                what: "lifetime must be positive",
            });
        }
        if !(0.0..=1.0).contains(&quantum_yield) {
            return Err(RetError::InvalidChromophore {
                what: "quantum yield must be in [0, 1]",
            });
        }
        Ok(Chromophore {
            name: name.into(),
            absorption,
            emission,
            lifetime_ns,
            quantum_yield,
        })
    }

    /// A typical cyanine-family donor dye (Cy3-like): absorbs ~550 nm,
    /// emits ~570 nm, lifetime ≈ 1.5 ns.
    ///
    /// # Panics
    ///
    /// Panics if the built-in dye parameters fail validation (they never
    /// do).
    pub fn cy3_like() -> Self {
        Chromophore::new(
            "Cy3",
            GaussianBand::new(550.0, 20.0),
            GaussianBand::new(570.0, 30.0),
            1.5,
            0.25,
        )
        .expect("library dye parameters are valid")
    }

    /// A typical cyanine-family acceptor dye (Cy5-like): absorbs ~650 nm,
    /// emits ~670 nm, lifetime ≈ 1.0 ns.
    ///
    /// # Panics
    ///
    /// Panics if the built-in dye parameters fail validation (they never
    /// do).
    pub fn cy5_like() -> Self {
        Chromophore::new(
            "Cy5",
            GaussianBand::new(650.0, 25.0),
            GaussianBand::new(670.0, 30.0),
            1.0,
            0.30,
        )
        .expect("library dye parameters are valid")
    }

    /// An intermediate relay dye (Cy3.5-like) used in longer cascades.
    ///
    /// # Panics
    ///
    /// Panics if the built-in dye parameters fail validation (they never
    /// do).
    pub fn cy35_like() -> Self {
        Chromophore::new(
            "Cy3.5",
            GaussianBand::new(590.0, 20.0),
            GaussianBand::new(610.0, 30.0),
            1.3,
            0.28,
        )
        .expect("library dye parameters are valid")
    }

    /// The chromophore's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Absorption band.
    pub fn absorption(&self) -> &GaussianBand {
        &self.absorption
    }

    /// Emission band.
    pub fn emission(&self) -> &GaussianBand {
        &self.emission
    }

    /// Excited-state lifetime in nanoseconds.
    pub fn lifetime_ns(&self) -> f64 {
        self.lifetime_ns
    }

    /// Total excited-state decay rate `1/τ` in ns⁻¹ (radiative plus
    /// non-radiative).
    pub fn decay_rate(&self) -> f64 {
        1.0 / self.lifetime_ns
    }

    /// Radiative (photon-emitting) decay rate in ns⁻¹: `Φ/τ`.
    pub fn radiative_rate(&self) -> f64 {
        self.quantum_yield / self.lifetime_ns
    }

    /// Non-radiative decay rate in ns⁻¹: `(1-Φ)/τ`.
    pub fn nonradiative_rate(&self) -> f64 {
        (1.0 - self.quantum_yield) / self.lifetime_ns
    }

    /// Fluorescence quantum yield.
    pub fn quantum_yield(&self) -> f64 {
        self.quantum_yield
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_partition_total_decay() {
        let c = Chromophore::cy3_like();
        let total = c.radiative_rate() + c.nonradiative_rate();
        assert!((total - c.decay_rate()).abs() < 1e-12);
    }

    #[test]
    fn library_dyes_are_stokes_shifted() {
        for c in [
            Chromophore::cy3_like(),
            Chromophore::cy5_like(),
            Chromophore::cy35_like(),
        ] {
            assert!(
                c.emission().peak_nm > c.absorption().peak_nm,
                "{} must emit red-shifted from absorption",
                c.name()
            );
        }
    }

    #[test]
    fn invalid_lifetime_rejected() {
        let band = GaussianBand::new(550.0, 20.0);
        let err = Chromophore::new("bad", band, band, 0.0, 0.5).unwrap_err();
        assert!(matches!(err, RetError::InvalidChromophore { .. }));
        let err = Chromophore::new("bad", band, band, f64::NAN, 0.5).unwrap_err();
        assert!(matches!(err, RetError::InvalidChromophore { .. }));
    }

    #[test]
    fn invalid_quantum_yield_rejected() {
        let band = GaussianBand::new(550.0, 20.0);
        assert!(Chromophore::new("bad", band, band, 1.0, -0.1).is_err());
        assert!(Chromophore::new("bad", band, band, 1.0, 1.1).is_err());
        assert!(Chromophore::new("ok", band, band, 1.0, 1.0).is_ok());
        assert!(Chromophore::new("ok", band, band, 1.0, 0.0).is_ok());
    }
}

//! RET circuits: QD-LED excitation + chromophore network ensemble + SPAD.
//!
//! A **RET circuit** is the physical sampling element of an RSU (paper §2.3,
//! §5): four binary on/off quantum-dot LEDs provide 16 excitation intensity
//! levels (a 4-bit code), the light pumps an ensemble of identical RET
//! networks, and a single-photon avalanche detector timestamps the first
//! fluorescent photon. The elapsed **time to fluorescence (TTF)** is the
//! sample.
//!
//! In the excitation-limited regime the first-detection time is
//! (approximately) exponential with rate proportional to the LED intensity —
//! so the 4-bit code *is* the distribution parameter. This module models
//! that contract at two fidelities:
//!
//! * [`Fidelity::Ideal`] — draw TTF from the matched exponential directly.
//! * [`Fidelity::Physics`] — Poisson excitation arrivals, per-exciton
//!   Gillespie walks through the network, SPAD efficiency/jitter/dark
//!   counts. Slower, but exposes every non-ideality.

use crate::ctmc::simulate_exciton;
use crate::network::{Outcome, RetNetwork};
use crate::phase_type::sample_exp;
use rand::Rng;

/// Number of intensity levels a 4-bit LED code can select (including off).
pub const INTENSITY_LEVELS: u8 = 16;

/// Simulation fidelity for a RET circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fidelity {
    /// Draw from the matched exponential directly (fast; used for
    /// application-scale runs).
    #[default]
    Ideal,
    /// Simulate excitation arrivals and exciton trajectories (slow; used for
    /// substrate validation and the hardware prototype).
    Physics,
}

/// Single-photon avalanche detector parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpadConfig {
    /// Photon detection efficiency in `[0, 1]`.
    pub efficiency: f64,
    /// Dark count rate in counts per ns (false detections with no photon).
    pub dark_rate_per_ns: f64,
    /// Gaussian timing jitter standard deviation in ns.
    pub jitter_sigma_ns: f64,
}

impl Default for SpadConfig {
    fn default() -> Self {
        // Representative of an integrated CMOS SPAD: ~40% PDE, ~100 dark
        // counts/s (negligible at ns scale), ~50 ps jitter.
        SpadConfig {
            efficiency: 0.4,
            dark_rate_per_ns: 1e-7,
            jitter_sigma_ns: 0.05,
        }
    }
}

/// A SPAD: turns emission events into (possibly missed, jittered)
/// detection timestamps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spad {
    config: SpadConfig,
}

impl Spad {
    /// Creates a SPAD from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if efficiency is outside `[0, 1]` or rates/jitter are negative.
    pub fn new(config: SpadConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.efficiency),
            "SPAD efficiency must be in [0, 1]"
        );
        assert!(
            config.dark_rate_per_ns >= 0.0,
            "dark rate must be non-negative"
        );
        assert!(config.jitter_sigma_ns >= 0.0, "jitter must be non-negative");
        Spad { config }
    }

    /// The configuration this SPAD was built with.
    pub fn config(&self) -> &SpadConfig {
        &self.config
    }

    /// Attempts to detect a photon emitted at `emission_ns`. Returns the
    /// jittered detection timestamp, or `None` if the photon is missed.
    pub fn detect<R: Rng + ?Sized>(&self, emission_ns: f64, rng: &mut R) -> Option<f64> {
        if rng.gen::<f64>() >= self.config.efficiency {
            return None;
        }
        let jitter = gaussian(rng) * self.config.jitter_sigma_ns;
        Some((emission_ns + jitter).max(0.0))
    }

    /// Draws the time of the next dark count, or `None` if dark counts are
    /// disabled.
    pub fn next_dark_count<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<f64> {
        if self.config.dark_rate_per_ns <= 0.0 {
            None
        } else {
            Some(sample_exp(rng, self.config.dark_rate_per_ns))
        }
    }
}

/// Configuration of a RET circuit.
#[derive(Debug, Clone)]
pub struct RetCircuitConfig {
    /// The chromophore network replicated across the ensemble.
    pub network: RetNetwork,
    /// Number of identical networks in the ensemble.
    pub ensemble_size: usize,
    /// Ensemble excitation rate (excitons per ns) contributed by *one* LED
    /// intensity level at full ensemble health.
    pub excitation_rate_per_level: f64,
    /// Detector model.
    pub spad: SpadConfig,
    /// Simulation fidelity.
    pub fidelity: Fidelity,
    /// Observation window in ns; detections after this are reported as
    /// `None` (the TTF capture register has saturated).
    pub window_ns: f64,
    /// Time for the circuit to return to a quiescent state after a sampling
    /// operation (paper §5.3: four 1 ns cycles).
    pub quiescence_ns: f64,
}

impl Default for RetCircuitConfig {
    fn default() -> Self {
        RetCircuitConfig {
            network: RetNetwork::donor_acceptor(4.0),
            ensemble_size: 64,
            excitation_rate_per_level: 0.35,
            spad: SpadConfig::default(),
            fidelity: Fidelity::Ideal,
            // 8-bit TTF register clocked at 8 GHz: 256 × 125 ps = 32 ns.
            window_ns: 32.0,
            quiescence_ns: 4.0,
        }
    }
}

/// A RET circuit: intensity-parameterized TTF sampler.
#[derive(Debug, Clone)]
pub struct RetCircuit {
    config: RetCircuitConfig,
    intensity_code: u8,
    /// Fraction of the ensemble still photoactive (see [`crate::wearout`]).
    alive_fraction: f64,
    /// Probability an excitation yields a *detected* photon
    /// (emission probability × SPAD efficiency); cached at construction.
    detect_per_excitation: f64,
    /// Mean exciton transit time conditioned on emission, in ns; cached.
    mean_transit_ns: f64,
    /// Total excitations delivered over the circuit's lifetime.
    excitations_delivered: u64,
}

impl RetCircuit {
    /// Creates a circuit from its configuration.
    ///
    /// # Panics
    ///
    /// Panics on non-physical parameters (zero ensemble, non-positive
    /// excitation rate or window, invalid SPAD settings).
    pub fn new(config: RetCircuitConfig) -> Self {
        assert!(
            config.ensemble_size > 0,
            "ensemble must contain at least one network"
        );
        assert!(
            config.excitation_rate_per_level > 0.0,
            "excitation rate must be positive"
        );
        assert!(
            config.window_ns > 0.0,
            "observation window must be positive"
        );
        assert!(
            config.quiescence_ns >= 0.0,
            "quiescence must be non-negative"
        );
        let _ = Spad::new(config.spad); // validates SPAD fields
        let emission = config
            .network
            .emission_probabilities(0)
            .expect("network has node 0 by construction");
        let mean_transit_ns = config
            .network
            .mean_emission_time(0)
            .expect("circuit networks must be able to emit");
        RetCircuit {
            detect_per_excitation: emission.total * config.spad.efficiency,
            mean_transit_ns,
            config,
            intensity_code: 0,
            alive_fraction: 1.0,
            excitations_delivered: 0,
        }
    }

    /// The configuration this circuit was built with.
    pub fn config(&self) -> &RetCircuitConfig {
        &self.config
    }

    /// Sets the 4-bit LED intensity code (0 = all LEDs off).
    ///
    /// # Panics
    ///
    /// Panics if `code >= 16` — the DAC physically has 4 bits.
    pub fn set_intensity_code(&mut self, code: u8) {
        assert!(
            code < INTENSITY_LEVELS,
            "intensity code {code} does not fit in 4 bits"
        );
        self.intensity_code = code;
    }

    /// The currently latched intensity code.
    pub fn intensity_code(&self) -> u8 {
        self.intensity_code
    }

    /// Fraction of the ensemble still photoactive.
    pub fn alive_fraction(&self) -> f64 {
        self.alive_fraction
    }

    /// Overrides the photoactive fraction (driven by
    /// [`crate::wearout::EnsembleWearout`]).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn set_alive_fraction(&mut self, fraction: f64) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "alive fraction must be in [0, 1]"
        );
        self.alive_fraction = fraction;
    }

    /// Total excitations delivered to the ensemble so far (wear-out input).
    pub fn excitations_delivered(&self) -> u64 {
        self.excitations_delivered
    }

    /// Time to return to quiescence after a sampling operation (ns).
    pub fn quiescence_ns(&self) -> f64 {
        self.config.quiescence_ns
    }

    /// The exponential rate (ns⁻¹) that [`Fidelity::Ideal`] sampling uses
    /// for a given intensity code, *excluding* dark counts.
    ///
    /// Matches the mean of the physical first-detection process: excitation
    /// inter-arrival stretched by the per-excitation detection probability,
    /// plus the exciton transit time.
    pub fn effective_rate(&self, code: u8) -> f64 {
        if code == 0 || self.detect_per_excitation <= 0.0 {
            return 0.0;
        }
        let exc_rate =
            f64::from(code) * self.config.excitation_rate_per_level * self.alive_fraction;
        if exc_rate <= 0.0 {
            return 0.0;
        }
        let mean_first_detection =
            1.0 / (exc_rate * self.detect_per_excitation) + self.mean_transit_ns;
        1.0 / mean_first_detection
    }

    /// Draws one TTF sample at the latched intensity, or `None` if no
    /// detection occurs within the observation window.
    pub fn sample_ttf<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<f64> {
        match self.config.fidelity {
            Fidelity::Ideal => self.sample_ideal(rng),
            Fidelity::Physics => self.sample_physics(rng),
        }
    }

    fn sample_ideal<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<f64> {
        let rate = self.effective_rate(self.intensity_code) + self.config.spad.dark_rate_per_ns;
        if rate <= 0.0 {
            return None;
        }
        // Bookkeeping for wear-out parity with the physics path.
        let exc_rate = f64::from(self.intensity_code)
            * self.config.excitation_rate_per_level
            * self.alive_fraction;
        let t = sample_exp(rng, rate);
        if t <= self.config.window_ns {
            self.excitations_delivered += (exc_rate * t).ceil() as u64;
            Some(t)
        } else {
            self.excitations_delivered += (exc_rate * self.config.window_ns) as u64;
            None
        }
    }

    fn sample_physics<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<f64> {
        let spad = Spad::new(self.config.spad);
        let exc_rate = f64::from(self.intensity_code)
            * self.config.excitation_rate_per_level
            * self.alive_fraction;
        let window = self.config.window_ns;
        let mut best: Option<f64> = spad.next_dark_count(rng).filter(|t| *t <= window);
        if exc_rate > 0.0 {
            let mut t_exc = 0.0;
            loop {
                t_exc += sample_exp(rng, exc_rate);
                if t_exc > window || best.is_some_and(|b| t_exc >= b) {
                    break;
                }
                self.excitations_delivered += 1;
                let traj = simulate_exciton(&self.config.network, 0, rng);
                if let Outcome::Emitted(_) = traj.outcome {
                    if let Some(det) = spad.detect(t_exc + traj.elapsed_ns, rng) {
                        if det <= window && best.is_none_or(|b| det < b) {
                            best = Some(det);
                        }
                    }
                }
            }
        }
        best
    }
}

impl crate::exponential::ExponentialSampler for RetCircuit {
    /// Samples with the intensity code whose effective rate is nearest the
    /// requested rate — the bridge that lets a physical circuit stand in
    /// for an ideal exponential sampler in first-to-fire compositions.
    ///
    /// Rates below half of code 1's effective rate select "off" (`None`);
    /// rates beyond code 15 clamp to code 15, so the realized distribution
    /// is the DAC-quantized approximation of the request.
    fn sample<R: Rng + ?Sized>(&mut self, rate: f64, rng: &mut R) -> Option<f64> {
        if rate <= 0.0 {
            return None;
        }
        let code = (1..INTENSITY_LEVELS)
            .min_by(|&a, &b| {
                let da = (self.effective_rate(a) - rate).abs();
                let db = (self.effective_rate(b) - rate).abs();
                da.total_cmp(&db)
            })
            // audit:allow(unwrap-expect) — the code range 1..16 is never
            // empty, so min_by always yields a value.
            .expect("code range is non-empty");
        if rate < 0.5 * self.effective_rate(1) {
            return None;
        }
        self.set_intensity_code(code);
        self.sample_ttf(rng)
    }
}

/// Standard normal draw via the Box–Muller transform (avoids pulling a
/// distributions dependency into the substrate crate).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_mean(circuit: &mut RetCircuit, rng: &mut StdRng, n: usize) -> (f64, usize) {
        let mut total = 0.0;
        let mut hits = 0;
        for _ in 0..n {
            if let Some(t) = circuit.sample_ttf(rng) {
                total += t;
                hits += 1;
            }
        }
        (total / hits.max(1) as f64, hits)
    }

    #[test]
    fn zero_intensity_never_fires_without_dark_counts() {
        let config = RetCircuitConfig {
            spad: SpadConfig {
                dark_rate_per_ns: 0.0,
                ..SpadConfig::default()
            },
            ..RetCircuitConfig::default()
        };
        let mut c = RetCircuit::new(config);
        let mut rng = StdRng::seed_from_u64(0);
        c.set_intensity_code(0);
        for _ in 0..100 {
            assert_eq!(c.sample_ttf(&mut rng), None);
        }
    }

    #[test]
    fn higher_intensity_means_shorter_ttf() {
        let mut c = RetCircuit::new(RetCircuitConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        c.set_intensity_code(2);
        let (mean_low, _) = sample_mean(&mut c, &mut rng, 4000);
        c.set_intensity_code(15);
        let (mean_high, _) = sample_mean(&mut c, &mut rng, 4000);
        assert!(
            mean_high < mean_low,
            "intensity 15 mean {mean_high} should beat intensity 2 mean {mean_low}"
        );
    }

    #[test]
    fn ideal_mean_matches_effective_rate() {
        let mut c = RetCircuit::new(RetCircuitConfig {
            window_ns: 1e6, // effectively untruncated
            ..RetCircuitConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(2);
        c.set_intensity_code(8);
        let (mean, hits) = sample_mean(&mut c, &mut rng, 20_000);
        assert_eq!(hits, 20_000);
        let expect = 1.0 / c.effective_rate(8);
        assert!(
            (mean - expect).abs() / expect < 0.03,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn physics_and_ideal_agree_on_mean_ttf() {
        let mk = |fidelity| {
            RetCircuit::new(RetCircuitConfig {
                fidelity,
                window_ns: 1e4,
                spad: SpadConfig {
                    dark_rate_per_ns: 0.0,
                    ..SpadConfig::default()
                },
                ..RetCircuitConfig::default()
            })
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut ideal = mk(Fidelity::Ideal);
        let mut physics = mk(Fidelity::Physics);
        ideal.set_intensity_code(10);
        physics.set_intensity_code(10);
        let (mi, _) = sample_mean(&mut ideal, &mut rng, 12_000);
        let (mp, _) = sample_mean(&mut physics, &mut rng, 12_000);
        // The ideal rate folds the transit time into a single exponential.
        // The physics path takes the min over (arrival + transit) pairs,
        // which sits slightly below the renewal-mean approximation, so a
        // 10% band is the honest agreement claim.
        assert!((mi - mp).abs() / mp < 0.10, "ideal {mi} vs physics {mp}");
    }

    #[test]
    fn effective_rate_monotone_in_code() {
        let c = RetCircuit::new(RetCircuitConfig::default());
        let mut last = 0.0;
        for code in 0..INTENSITY_LEVELS {
            let r = c.effective_rate(code);
            assert!(r >= last, "rate must be non-decreasing in code");
            last = r;
        }
    }

    #[test]
    fn wearout_reduces_effective_rate() {
        let mut c = RetCircuit::new(RetCircuitConfig::default());
        let healthy = c.effective_rate(12);
        c.set_alive_fraction(0.5);
        let worn = c.effective_rate(12);
        assert!(worn < healthy);
    }

    #[test]
    fn window_truncates_samples() {
        let mut c = RetCircuit::new(RetCircuitConfig {
            window_ns: 0.5,
            ..RetCircuitConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(4);
        c.set_intensity_code(1);
        for _ in 0..200 {
            if let Some(t) = c.sample_ttf(&mut rng) {
                assert!(t <= 0.5);
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not fit in 4 bits")]
    fn intensity_code_must_fit_dac() {
        let mut c = RetCircuit::new(RetCircuitConfig::default());
        c.set_intensity_code(16);
    }

    #[test]
    fn circuit_serves_as_exponential_sampler() {
        use crate::exponential::{first_to_fire_with, ExponentialSampler};
        let mut circuit = RetCircuit::new(RetCircuitConfig {
            window_ns: 1e4,
            spad: SpadConfig {
                dark_rate_per_ns: 0.0,
                ..SpadConfig::default()
            },
            ..RetCircuitConfig::default()
        });
        // Request a rate near code 8's effective rate: the circuit should
        // realize approximately that mean.
        let target = circuit.effective_rate(8);
        let mut rng = StdRng::seed_from_u64(21);
        let n = 15_000;
        let mean: f64 = (0..n)
            .map(|_| circuit.sample(target, &mut rng).expect("fires"))
            .sum::<f64>()
            / f64::from(n);
        assert!(
            (mean - 1.0 / target).abs() / (1.0 / target) < 0.05,
            "mean {mean}"
        );
        // And it slots into first-to-fire: a 3:1 rate split wins ~3:1.
        let r1 = circuit.effective_rate(12);
        let r2 = circuit.effective_rate(4);
        let mut wins = [0usize; 2];
        for _ in 0..20_000 {
            if let Some((i, _)) = first_to_fire_with(&mut circuit, &[r1, r2], &mut rng) {
                wins[i] += 1;
            }
        }
        let p0 = wins[0] as f64 / (wins[0] + wins[1]) as f64;
        let expect = r1 / (r1 + r2);
        assert!((p0 - expect).abs() < 0.02, "p0 {p0} vs {expect}");
    }

    #[test]
    fn sampler_bridge_rejects_unreachable_rates() {
        use crate::exponential::ExponentialSampler;
        let mut circuit = RetCircuit::new(RetCircuitConfig::default());
        let mut rng = StdRng::seed_from_u64(22);
        assert_eq!(circuit.sample(0.0, &mut rng), None);
        let tiny = 0.01 * circuit.effective_rate(1);
        assert_eq!(circuit.sample(tiny, &mut rng), None);
    }

    #[test]
    fn physics_counts_excitations() {
        let mut c = RetCircuit::new(RetCircuitConfig {
            fidelity: Fidelity::Physics,
            ..RetCircuitConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(5);
        c.set_intensity_code(15);
        for _ in 0..50 {
            let _ = c.sample_ttf(&mut rng);
        }
        assert!(c.excitations_delivered() > 0);
    }
}

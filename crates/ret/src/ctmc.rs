//! Gillespie (exact stochastic) simulation of exciton trajectories.
//!
//! Where [`crate::phase_type`] computes TTF distributions analytically, this
//! module *simulates* individual excitons hopping through a
//! [`RetNetwork`](crate::network::RetNetwork): at each step the holding time
//! is exponential in the total exit rate and the destination is chosen in
//! proportion to the competing rates. This is the physics-fidelity path used
//! by [`crate::circuit`] and the hardware prototype emulation.

use crate::network::{Outcome, RetNetwork, Transition};
use crate::phase_type::sample_exp;
use rand::Rng;

/// A simulated exciton trajectory: where it ended and when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trajectory {
    /// Terminal event.
    pub outcome: Outcome,
    /// Time of the terminal event in ns, measured from excitation.
    pub elapsed_ns: f64,
    /// Number of inter-chromophore hops taken.
    pub hops: usize,
}

/// Simulates one exciton through `network`, starting on node `initial`.
///
/// # Panics
///
/// Panics if `initial` is out of range (use
/// [`RetNetwork::ttf_distribution`] for a checked entry point; simulation
/// loops are hot paths and keep the unchecked-index contract explicit).
pub fn simulate_exciton<R: Rng + ?Sized>(
    network: &RetNetwork,
    initial: usize,
    rng: &mut R,
) -> Trajectory {
    assert!(
        initial < network.len(),
        "initial node {initial} out of range"
    );
    let mut node = initial;
    let mut elapsed_ns = 0.0;
    let mut hops = 0;
    loop {
        let transitions = network.transitions_from(node);
        let total: f64 = transitions.iter().map(|(_, r)| r).sum();
        debug_assert!(total > 0.0, "every chromophore has a positive decay rate");
        elapsed_ns += sample_exp(rng, total);
        let mut u = rng.gen::<f64>() * total;
        let mut chosen = transitions[transitions.len() - 1].0;
        for (t, r) in &transitions {
            if u < *r {
                chosen = *t;
                break;
            }
            u -= r;
        }
        match chosen {
            Transition::Hop(j) => {
                node = j;
                hops += 1;
            }
            Transition::Emit => {
                return Trajectory {
                    outcome: Outcome::Emitted(node),
                    elapsed_ns,
                    hops,
                };
            }
            Transition::Quench => {
                return Trajectory {
                    outcome: Outcome::Quenched,
                    elapsed_ns,
                    hops,
                };
            }
        }
    }
}

/// Simulates excitons until one *emits*, returning the emission trajectory
/// and how many excitons were consumed (quenched ones produce no photon).
///
/// `max_attempts` bounds the loop for pathological networks; `None` is
/// returned if it is exhausted.
pub fn simulate_until_emission<R: Rng + ?Sized>(
    network: &RetNetwork,
    initial: usize,
    max_attempts: usize,
    rng: &mut R,
) -> Option<(Trajectory, usize)> {
    for attempt in 1..=max_attempts {
        let t = simulate_exciton(network, initial, rng);
        if matches!(t.outcome, Outcome::Emitted(_)) {
            return Some((t, attempt));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn simulated_emission_split_matches_analytic() {
        let net = RetNetwork::donor_acceptor(4.0);
        let analytic = net.emission_probabilities(0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 40_000;
        let mut emitted = vec![0usize; net.len()];
        let mut quenched = 0usize;
        for _ in 0..n {
            match simulate_exciton(&net, 0, &mut rng).outcome {
                Outcome::Emitted(k) => emitted[k] += 1,
                Outcome::Quenched => quenched += 1,
            }
        }
        for (k, count) in emitted.iter().enumerate() {
            let p = *count as f64 / f64::from(n);
            assert!(
                (p - analytic.per_node[k]).abs() < 0.01,
                "node {k}: simulated {p} vs analytic {}",
                analytic.per_node[k]
            );
        }
        let pq = quenched as f64 / f64::from(n);
        assert!((pq - (1.0 - analytic.total)).abs() < 0.01);
    }

    #[test]
    fn simulated_ttf_mean_matches_phase_type() {
        let net = RetNetwork::cascade(3.0);
        let ph = net.ttf_distribution(0).unwrap();
        // Phase-type mean is over *all* absorption (emit or quench); compare
        // against simulated absorption time regardless of outcome.
        let mut rng = StdRng::seed_from_u64(5);
        let n = 30_000;
        let mean: f64 = (0..n)
            .map(|_| simulate_exciton(&net, 0, &mut rng).elapsed_ns)
            .sum::<f64>()
            / f64::from(n);
        assert!(
            (mean - ph.mean()).abs() / ph.mean() < 0.03,
            "simulated {mean} vs analytic {}",
            ph.mean()
        );
    }

    #[test]
    fn until_emission_skips_quenches() {
        let net = RetNetwork::donor_acceptor(4.0);
        let mut rng = StdRng::seed_from_u64(3);
        let (traj, attempts) = simulate_until_emission(&net, 0, 10_000, &mut rng).unwrap();
        assert!(matches!(traj.outcome, Outcome::Emitted(_)));
        assert!(attempts >= 1);
    }

    #[test]
    fn hop_count_positive_for_strong_transfer() {
        // At 3 nm the Cy3→Cy5 transfer dominates, so most trajectories hop.
        let net = RetNetwork::donor_acceptor(3.0);
        let mut rng = StdRng::seed_from_u64(9);
        let hops: usize = (0..2000)
            .map(|_| simulate_exciton(&net, 0, &mut rng).hops)
            .sum();
        assert!(
            hops > 1000,
            "expected mostly hopping trajectories, got {hops} hops"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_initial_node_panics() {
        let net = RetNetwork::donor_acceptor(4.0);
        let mut rng = StdRng::seed_from_u64(0);
        simulate_exciton(&net, 7, &mut rng);
    }
}

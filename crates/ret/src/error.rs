//! Error type for RET network construction and simulation.

use std::error::Error;
use std::fmt;

/// Errors raised while building or simulating RET networks.
#[derive(Debug, Clone, PartialEq)]
pub enum RetError {
    /// A network was constructed with no chromophores.
    EmptyNetwork,
    /// Two chromophores were placed closer than the physical contact
    /// distance (nm), where Förster theory breaks down.
    ChromophoresTooClose {
        /// Index of the first chromophore.
        a: usize,
        /// Index of the second chromophore.
        b: usize,
        /// Their separation in nanometres.
        distance_nm: f64,
    },
    /// A chromophore parameter was out of physical range
    /// (e.g. negative lifetime, quantum yield outside `[0, 1]`).
    InvalidChromophore {
        /// Which parameter was invalid.
        what: &'static str,
    },
    /// A node index referenced a chromophore that does not exist.
    NodeOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of chromophores in the network.
        len: usize,
    },
    /// A phase-type distribution was given inconsistent dimensions.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
    },
}

impl fmt::Display for RetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetError::EmptyNetwork => write!(f, "RET network has no chromophores"),
            RetError::ChromophoresTooClose { a, b, distance_nm } => write!(
                f,
                "chromophores {a} and {b} are {distance_nm:.3} nm apart, below the contact limit"
            ),
            RetError::InvalidChromophore { what } => {
                write!(f, "invalid chromophore parameter: {what}")
            }
            RetError::NodeOutOfRange { index, len } => {
                write!(
                    f,
                    "node index {index} out of range for network of {len} chromophores"
                )
            }
            RetError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl Error for RetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = [
            RetError::EmptyNetwork,
            RetError::ChromophoresTooClose {
                a: 0,
                b: 1,
                distance_nm: 0.1,
            },
            RetError::InvalidChromophore { what: "lifetime" },
            RetError::NodeOutOfRange { index: 5, len: 2 },
            RetError::DimensionMismatch {
                expected: 3,
                actual: 2,
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'), "no trailing punctuation: {s}");
        }
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(RetError::EmptyNetwork);
        assert!(e.source().is_none());
    }
}

//! Exponential samplers and the first-to-fire composition.
//!
//! The RSU-G builds a discrete Gibbs draw out of `M` competing exponential
//! samplers (paper §4.3): each possible label `i` gets an exponential with
//! rate `λᵢ ∝ exp(−Eᵢ/T)`; the label whose sample (time to fluorescence) is
//! **smallest** wins. Because `P(argmin = k) = λₖ / Σᵢ λᵢ`, the winner is
//! distributed exactly as the normalized discrete distribution — no explicit
//! normalization hardware needed.

use crate::phase_type::sample_exp;
use rand::Rng;

/// A source of exponentially distributed samples with a settable rate.
///
/// Implemented by the ideal software sampler below and (behaviourally) by
/// [`crate::circuit::RetCircuit`]; the RSU pipeline in `mogs-core` is generic
/// over this trait so it can run on either.
pub trait ExponentialSampler {
    /// Draws one sample with the given rate (ns⁻¹). Returns `None` when the
    /// rate is zero/off (the sampler would never fire).
    fn sample<R: Rng + ?Sized>(&mut self, rate: f64, rng: &mut R) -> Option<f64>;
}

/// The ideal exponential sampler: inverse-transform draws, no quantization,
/// no window truncation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdealExponential;

impl IdealExponential {
    /// Creates the sampler.
    pub fn new() -> Self {
        IdealExponential
    }
}

impl ExponentialSampler for IdealExponential {
    fn sample<R: Rng + ?Sized>(&mut self, rate: f64, rng: &mut R) -> Option<f64> {
        if rate <= 0.0 {
            None
        } else {
            Some(sample_exp(rng, rate))
        }
    }
}

/// Runs a first-to-fire tournament over the given rates and returns the
/// winning index, or `None` if every rate is zero (no sampler would fire).
///
/// The winner is distributed as `P(i) = rates[i] / Σ rates`.
///
/// # Panics
///
/// Panics if any rate is negative or non-finite.
pub fn first_to_fire<R: Rng + ?Sized>(rates: &[f64], rng: &mut R) -> Option<usize> {
    let mut sampler = IdealExponential::new();
    first_to_fire_with(&mut sampler, rates, rng).map(|(i, _)| i)
}

/// As [`first_to_fire`] but using a caller-supplied sampler; also returns
/// the winning TTF so hardware models can quantize/inspect it.
///
/// # Panics
///
/// Panics if any rate is negative or non-finite.
pub fn first_to_fire_with<S: ExponentialSampler, R: Rng + ?Sized>(
    sampler: &mut S,
    rates: &[f64],
    rng: &mut R,
) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &rate) in rates.iter().enumerate() {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "rates must be finite and non-negative"
        );
        if let Some(t) = sampler.sample(rate, rng) {
            if best.is_none_or(|(_, bt)| t < bt) {
                best = Some((i, t));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn winner_frequencies_match_normalized_rates() {
        let rates = [1.0, 2.0, 5.0, 0.5];
        let total: f64 = rates.iter().sum();
        let mut rng = StdRng::seed_from_u64(100);
        let n = 60_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[first_to_fire(&rates, &mut rng).unwrap()] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            let p = *c as f64 / f64::from(n);
            let expect = rates[i] / total;
            assert!((p - expect).abs() < 0.01, "label {i}: {p} vs {expect}");
        }
    }

    #[test]
    fn zero_rate_labels_never_win() {
        let rates = [0.0, 3.0, 0.0];
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            assert_eq!(first_to_fire(&rates, &mut rng), Some(1));
        }
    }

    #[test]
    fn all_zero_rates_yield_none() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(first_to_fire(&[0.0, 0.0], &mut rng), None);
        assert_eq!(first_to_fire(&[], &mut rng), None);
    }

    #[test]
    fn ideal_sampler_mean() {
        let mut s = IdealExponential::new();
        let mut rng = StdRng::seed_from_u64(8);
        let n = 30_000;
        let mean: f64 = (0..n)
            .map(|_| s.sample(4.0, &mut rng).unwrap())
            .sum::<f64>()
            / f64::from(n);
        assert!((mean - 0.25).abs() < 0.005);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        first_to_fire(&[1.0, -1.0], &mut rng);
    }
}

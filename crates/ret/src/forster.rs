//! Förster theory: transfer radii and pairwise RET rates.
//!
//! Resonance energy transfer between a donor and an acceptor is
//! non-radiative dipole–dipole coupling. Förster's result gives the transfer
//! rate as
//!
//! ```text
//! k_T = (1/τ_D) · (R0 / r)^6
//! ```
//!
//! where `τ_D` is the donor's excited-state lifetime, `r` the separation and
//! `R0` the *Förster radius* — the distance at which transfer and intrinsic
//! decay are equally likely. `R0^6` is proportional to the spectral overlap
//! of donor emission with acceptor absorption, the orientation factor `κ²`,
//! and the donor quantum yield. We fold the constants into a reference
//! radius for a perfectly matched pair and scale by the dimensionless
//! factors.

use crate::chromophore::Chromophore;
use crate::spectra::overlap_factor;

/// Reference Förster radius (nm) for a perfectly overlapped, κ²=2/3,
/// unit-quantum-yield donor/acceptor pair. Set so that realistic partial
/// overlap and quantum yields land typical pairs in the measured 4–6 nm
/// range (Cy3→Cy5 comes out at ≈4.5 nm here vs ≈5.4 nm measured).
pub const R0_REFERENCE_NM: f64 = 8.0;

/// The isotropic dynamic average of the orientation factor κ².
pub const KAPPA_SQ_ISOTROPIC: f64 = 2.0 / 3.0;

/// A donor→acceptor pair with its computed Förster parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForsterPair {
    /// Förster radius in nm for this specific pair.
    pub r0_nm: f64,
    /// Separation in nm.
    pub distance_nm: f64,
    /// Transfer rate in ns⁻¹.
    pub rate: f64,
}

impl ForsterPair {
    /// Computes the Förster radius and transfer rate for a donor→acceptor
    /// pair at separation `distance_nm`, using the isotropic κ².
    ///
    /// Returns a pair with `rate == 0` when spectral overlap is negligible
    /// (the pair is effectively uncoupled).
    pub fn evaluate(donor: &Chromophore, acceptor: &Chromophore, distance_nm: f64) -> Self {
        Self::evaluate_with_kappa(donor, acceptor, distance_nm, KAPPA_SQ_ISOTROPIC)
    }

    /// As [`ForsterPair::evaluate`] but with an explicit orientation factor
    /// `kappa_sq` (fixed-geometry DNA scaffolds can pin orientations).
    ///
    /// # Panics
    ///
    /// Panics if `distance_nm` or `kappa_sq` is not strictly positive.
    pub fn evaluate_with_kappa(
        donor: &Chromophore,
        acceptor: &Chromophore,
        distance_nm: f64,
        kappa_sq: f64,
    ) -> Self {
        assert!(distance_nm > 0.0, "separation must be positive");
        assert!(kappa_sq > 0.0, "orientation factor must be positive");
        let overlap = overlap_factor(donor.emission(), acceptor.absorption());
        // R0^6 scales with overlap, κ² (relative to isotropic) and donor QY.
        let r0_sixth = R0_REFERENCE_NM.powi(6)
            * overlap
            * (kappa_sq / KAPPA_SQ_ISOTROPIC)
            * donor.quantum_yield();
        let r0_nm = r0_sixth.powf(1.0 / 6.0);
        let rate = if r0_sixth <= 0.0 {
            0.0
        } else {
            donor.decay_rate() * r0_sixth / distance_nm.powi(6)
        };
        ForsterPair {
            r0_nm,
            distance_nm,
            rate,
        }
    }

    /// Transfer efficiency for this pair in isolation:
    /// `E = k_T / (k_T + 1/τ_D)` given the donor decay rate.
    pub fn efficiency(&self, donor_decay_rate: f64) -> f64 {
        if self.rate <= 0.0 {
            0.0
        } else {
            self.rate / (self.rate + donor_decay_rate)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_falls_with_sixth_power_of_distance() {
        let d = Chromophore::cy3_like();
        let a = Chromophore::cy5_like();
        let near = ForsterPair::evaluate(&d, &a, 3.0);
        let far = ForsterPair::evaluate(&d, &a, 6.0);
        assert!(near.rate > 0.0);
        let ratio = near.rate / far.rate;
        assert!((ratio - 64.0).abs() < 1e-6, "2^6 = 64, got {ratio}");
    }

    #[test]
    fn transfer_at_r0_is_half_efficient() {
        let d = Chromophore::cy3_like();
        let a = Chromophore::cy5_like();
        let probe = ForsterPair::evaluate(&d, &a, 4.0);
        let at_r0 = ForsterPair::evaluate(&d, &a, probe.r0_nm);
        let eff = at_r0.efficiency(d.decay_rate());
        assert!(
            (eff - 0.5).abs() < 1e-9,
            "efficiency at R0 must be 1/2, got {eff}"
        );
    }

    #[test]
    fn mismatched_spectra_give_weak_coupling() {
        // Cy5 emission (~670 nm) barely overlaps Cy3 absorption (~550 nm):
        // back-transfer should be far weaker than forward transfer.
        let d = Chromophore::cy3_like();
        let a = Chromophore::cy5_like();
        let fwd = ForsterPair::evaluate(&d, &a, 4.0);
        let back = ForsterPair::evaluate(&a, &d, 4.0);
        assert!(
            fwd.rate > 10.0 * back.rate,
            "fwd {} back {}",
            fwd.rate,
            back.rate
        );
    }

    #[test]
    fn kappa_scales_rate_linearly() {
        let d = Chromophore::cy3_like();
        let a = Chromophore::cy5_like();
        let iso = ForsterPair::evaluate_with_kappa(&d, &a, 4.0, KAPPA_SQ_ISOTROPIC);
        let pinned = ForsterPair::evaluate_with_kappa(&d, &a, 4.0, 2.0 * KAPPA_SQ_ISOTROPIC);
        assert!((pinned.rate / iso.rate - 2.0).abs() < 1e-9);
    }

    #[test]
    fn r0_in_physical_range_for_good_pair() {
        let d = Chromophore::cy3_like();
        let a = Chromophore::cy5_like();
        let p = ForsterPair::evaluate(&d, &a, 4.0);
        assert!(p.r0_nm > 2.0 && p.r0_nm < 7.0, "R0 = {} nm", p.r0_nm);
    }

    #[test]
    #[should_panic(expected = "separation must be positive")]
    fn zero_distance_rejected() {
        let d = Chromophore::cy3_like();
        let a = Chromophore::cy5_like();
        ForsterPair::evaluate(&d, &a, 0.0);
    }
}

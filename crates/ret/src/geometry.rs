//! DNA-scaffold geometry helpers (paper §2.3).
//!
//! RET networks are fabricated by hierarchical DNA self-assembly (LaBoda,
//! Duschl & Dwyer 2014; Pistol & Dwyer 2007): chromophores attach to
//! staple strands at addressable sites on a DNA grid with sub-nanometre
//! precision. This module models that placement substrate — an addressable
//! lattice with the geometry constants of DNA origami — and provides
//! builders that turn site assignments into [`RetNetwork`]s.

use crate::chromophore::Chromophore;
use crate::error::RetError;
use crate::network::RetNetwork;

/// Distance between adjacent helix axes in a DNA origami raster (nm).
pub const INTER_HELIX_NM: f64 = 2.5;

/// Rise per base pair along a helix (nm).
pub const BASE_RISE_NM: f64 = 0.34;

/// Addressable attachment sites repeat roughly every 16 bases (~5.4 nm)
/// along a helix in common origami designs.
pub const SITE_PITCH_BASES: usize = 16;

/// An addressable DNA-scaffold grid: attachment sites indexed by
/// `(helix, site)` with fixed physical pitch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DnaScaffold {
    helices: usize,
    sites_per_helix: usize,
}

impl DnaScaffold {
    /// A scaffold with the given number of helices and sites per helix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(helices: usize, sites_per_helix: usize) -> Self {
        assert!(
            helices > 0 && sites_per_helix > 0,
            "scaffold must have sites"
        );
        DnaScaffold {
            helices,
            sites_per_helix,
        }
    }

    /// Number of helices.
    pub fn helices(&self) -> usize {
        self.helices
    }

    /// Addressable sites along each helix.
    pub fn sites_per_helix(&self) -> usize {
        self.sites_per_helix
    }

    /// Physical position (nm) of the site `(helix, site)`.
    ///
    /// # Errors
    ///
    /// Returns [`RetError::NodeOutOfRange`] if the address is off the
    /// scaffold.
    pub fn position(&self, helix: usize, site: usize) -> Result<[f64; 3], RetError> {
        if helix >= self.helices {
            return Err(RetError::NodeOutOfRange {
                index: helix,
                len: self.helices,
            });
        }
        if site >= self.sites_per_helix {
            return Err(RetError::NodeOutOfRange {
                index: site,
                len: self.sites_per_helix,
            });
        }
        Ok([
            site as f64 * SITE_PITCH_BASES as f64 * BASE_RISE_NM,
            helix as f64 * INTER_HELIX_NM,
            0.0,
        ])
    }

    /// Pitch between adjacent sites along a helix (nm).
    pub fn site_pitch_nm(&self) -> f64 {
        SITE_PITCH_BASES as f64 * BASE_RISE_NM
    }

    /// Builds a [`RetNetwork`] from `(helix, site, chromophore)`
    /// assignments.
    ///
    /// # Errors
    ///
    /// Returns address errors from [`DnaScaffold::position`] or network
    /// construction errors (e.g. two chromophores on the same site).
    pub fn assemble(
        &self,
        placements: Vec<(usize, usize, Chromophore)>,
    ) -> Result<RetNetwork, RetError> {
        let mut nodes = Vec::with_capacity(placements.len());
        for (helix, site, chromophore) in placements {
            nodes.push((chromophore, self.position(helix, site)?));
        }
        RetNetwork::new(nodes)
    }

    /// A donor→acceptor pair on one helix, `sites_apart` attachment sites
    /// apart — the standard two-dye exponential-sampler assembly.
    ///
    /// # Errors
    ///
    /// Returns an error if the pair does not fit on the scaffold.
    pub fn donor_acceptor_pair(&self, sites_apart: usize) -> Result<RetNetwork, RetError> {
        self.assemble(vec![
            (0, 0, Chromophore::cy3_like()),
            (0, sites_apart, Chromophore::cy5_like()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_follow_origami_pitch() {
        let s = DnaScaffold::new(4, 8);
        let p = s.position(2, 3).unwrap();
        assert!((p[0] - 3.0 * 16.0 * 0.34).abs() < 1e-12);
        assert!((p[1] - 2.0 * 2.5).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_addresses_rejected() {
        let s = DnaScaffold::new(2, 4);
        assert!(s.position(2, 0).is_err());
        assert!(s.position(0, 4).is_err());
    }

    #[test]
    fn adjacent_sites_are_within_forster_range() {
        // One site pitch (5.44 nm) is close to the Cy3→Cy5 R0, so adjacent
        // placement yields a usable (if partial) transfer link.
        let s = DnaScaffold::new(1, 4);
        let net = s.donor_acceptor_pair(1).unwrap();
        let eff = {
            let rate = net.transfer_rate(0, 1).unwrap();
            let decay = net.chromophores()[0].decay_rate();
            rate / (rate + decay)
        };
        assert!(eff > 0.1 && eff < 0.9, "transfer efficiency {eff}");
    }

    #[test]
    fn distant_sites_decouple() {
        let s = DnaScaffold::new(1, 16);
        let near = s.donor_acceptor_pair(1).unwrap();
        let far = s.donor_acceptor_pair(8).unwrap();
        assert!(near.transfer_rate(0, 1).unwrap() > 1000.0 * far.transfer_rate(0, 1).unwrap());
    }

    #[test]
    fn same_site_double_occupancy_rejected() {
        let s = DnaScaffold::new(2, 2);
        let err = s
            .assemble(vec![
                (0, 0, Chromophore::cy3_like()),
                (0, 0, Chromophore::cy5_like()),
            ])
            .unwrap_err();
        assert!(matches!(err, RetError::ChromophoresTooClose { .. }));
    }

    #[test]
    fn cross_helix_assembly() {
        let s = DnaScaffold::new(3, 3);
        let net = s
            .assemble(vec![
                (0, 0, Chromophore::cy3_like()),
                (1, 0, Chromophore::cy35_like()),
                (2, 0, Chromophore::cy5_like()),
            ])
            .unwrap();
        assert_eq!(net.len(), 3);
        // Adjacent helices are 2.5 nm apart: strong coupling.
        assert!(net.transfer_rate(0, 1).unwrap() > 1.0);
    }
}

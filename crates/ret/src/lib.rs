//! # mogs-ret — Resonance Energy Transfer network physics simulator
//!
//! This crate is the *molecular optical substrate* of the `mogs` workspace: a
//! software stand-in for the physical RET devices of Wang et al., *ISCA 2016*
//! ("Accelerating Markov Random Field Inference Using Molecular Optical Gibbs
//! Sampling Units").
//!
//! The real device is a **RET circuit**: an on-chip quantum-dot LED array
//! excites an ensemble of chromophore networks assembled on DNA scaffolds;
//! excitons hop between chromophores by Förster resonance energy transfer
//! (probabilistic, distance- and spectrum-dependent) until one fluoresces; a
//! single-photon avalanche detector (SPAD) records the **time to fluorescence
//! (TTF)**. Because exciton dynamics form a continuous-time Markov chain, the
//! TTF follows a *phase-type distribution*, and in the regime used by the
//! RSU-G unit it is (approximately) **exponential with a rate proportional to
//! the LED excitation intensity** — which is exactly the knob the CMOS side
//! turns to parameterize the distribution.
//!
//! This crate models that whole stack, at two selectable fidelities:
//!
//! * [`Fidelity::Physics`] — excitations arrive as a Poisson process, each
//!   exciton random-walks through the chromophore network (Gillespie
//!   simulation of the CTMC built from Förster rates), the SPAD applies
//!   detection efficiency, timing jitter, and dark counts.
//! * [`Fidelity::Ideal`] — the first detection time is drawn directly from
//!   the exponential the physics converges to. Used for large application
//!   runs; a statistical test asserts both modes agree.
//!
//! ## Layout
//!
//! | module | contents |
//! |---|---|
//! | [`spectra`] | Gaussian absorption/emission spectra, overlap integrals |
//! | [`chromophore`] | chromophore photophysics (lifetime, quantum yield) |
//! | [`forster`] | Förster radius and pairwise transfer rates |
//! | [`network`] | chromophore networks and their exciton CTMC generator |
//! | [`phase_type`] | phase-type TTF distributions (pdf/cdf/moments/sampling) |
//! | [`ctmc`] | Gillespie simulation of exciton trajectories |
//! | [`circuit`] | QD-LEDs + network ensemble + SPAD = a RET circuit |
//! | [`exponential`] | exponential samplers and first-to-fire composition |
//! | [`wearout`] | photobleaching / ensemble-lifetime model (paper §9) |
//!
//! ## Quick example: a RET circuit as an intensity-parameterized sampler
//!
//! ```
//! use mogs_ret::circuit::{RetCircuit, RetCircuitConfig};
//! use rand::SeedableRng;
//!
//! let mut circuit = RetCircuit::new(RetCircuitConfig::default());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! circuit.set_intensity_code(9); // 4-bit LED code, 0..=15
//! let ttf = circuit.sample_ttf(&mut rng);
//! assert!(ttf.is_some());
//! ```

pub mod chromophore;
pub mod circuit;
pub mod ctmc;
pub mod error;
pub mod exponential;
pub mod forster;
pub mod geometry;
mod linalg;
pub mod network;
pub mod phase_type;
pub mod samplers;
pub mod spectra;
pub mod wearout;

pub use chromophore::Chromophore;
pub use circuit::{Fidelity, RetCircuit, RetCircuitConfig, Spad, SpadConfig};
pub use error::RetError;
pub use exponential::{first_to_fire, ExponentialSampler, IdealExponential};
pub use forster::ForsterPair;
pub use network::RetNetwork;
pub use phase_type::PhaseType;

//! Minimal dense linear algebra for phase-type computations.
//!
//! Networks have at most a few dozen states, so a simple row-major `Vec<f64>`
//! matrix with uniformization-based matrix-exponential action is plenty and
//! keeps the crate dependency-free.

/// Row-major dense square matrix.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    pub(crate) fn zeros(n: usize) -> Self {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    pub(crate) fn n(&self) -> usize {
        self.n
    }

    pub(crate) fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    pub(crate) fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    pub(crate) fn add_to(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] += v;
    }

    /// `y = A x`.
    pub(crate) fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for (i, out) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.n..(i + 1) * self.n];
            *out = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Row sums (useful for exit-rate vectors of sub-generators).
    pub(crate) fn row_sums(&self) -> Vec<f64> {
        (0..self.n)
            .map(|i| self.data[i * self.n..(i + 1) * self.n].iter().sum())
            .collect()
    }

    /// Solves `A x = b` by Gaussian elimination with partial pivoting.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is numerically singular or `b.len() != n`.
    pub(crate) fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot.
            let (pivot_row, pivot_val) = (col..n)
                .map(|r| (r, a[r * n + col].abs()))
                .max_by(|l, r| l.1.total_cmp(&r.1))
                .expect("non-empty column");
            assert!(pivot_val > 1e-300, "matrix is singular");
            if pivot_row != col {
                for j in 0..n {
                    a.swap(pivot_row * n + j, col * n + j);
                }
                x.swap(pivot_row, col);
            }
            let inv = 1.0 / a[col * n + col];
            for r in col + 1..n {
                let f = a[r * n + col] * inv;
                // audit:allow(float-eq) — exact-zero test: it only skips
                // row updates that would be arithmetic no-ops.
                if f == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[r * n + j] -= f * a[col * n + j];
                }
                x[r] -= f * x[col];
            }
        }
        for col in (0..n).rev() {
            x[col] /= a[col * n + col];
            for r in 0..col {
                x[r] -= a[r * n + col] * x[col];
            }
        }
        x
    }

    /// Computes `exp(A t) · v` by uniformization.
    ///
    /// Valid for generator-like matrices (non-negative off-diagonals). Picks
    /// `q ≥ max |A_ii|`, forms the stochastic-ish `P = I + A/q` and sums the
    /// Poisson-weighted series until the truncated tail is below `tol`.
    pub(crate) fn expm_action(&self, t: f64, v: &[f64], tol: f64) -> Vec<f64> {
        assert_eq!(v.len(), self.n);
        assert!(t >= 0.0, "time must be non-negative");
        let q = (0..self.n)
            .map(|i| self.get(i, i).abs())
            .fold(0.0_f64, f64::max)
            .max(1e-12);
        let qt = q * t;
        if qt <= 0.0 {
            return v.to_vec();
        }
        // P = I + A/q
        let mut p = self.clone();
        for k in 0..self.n * self.n {
            p.data[k] /= q;
        }
        for i in 0..self.n {
            p.add_to(i, i, 1.0);
        }
        let mut term = v.to_vec(); // P^k v
        let mut result = vec![0.0; self.n];
        // Poisson(qt) weights, accumulated until coverage ≥ 1 - tol.
        let mut weight = (-qt).exp();
        let mut covered = 0.0;
        let max_terms = ((qt + 8.0 * qt.sqrt() + 32.0).ceil() as usize).max(16);
        for k in 0..=max_terms {
            if k > 0 {
                weight *= qt / k as f64;
                term = p.matvec(&term);
            }
            for (r, x) in result.iter_mut().zip(&term) {
                *r += weight * x;
            }
            covered += weight;
            if 1.0 - covered < tol {
                break;
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_identity() {
        let mut a = Matrix::zeros(3);
        for i in 0..3 {
            a.set(i, i, 1.0);
        }
        assert_eq!(a.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn expm_scalar_decay() {
        // 1x1 generator [-λ]: exp(At)·1 = e^{-λt}.
        let mut a = Matrix::zeros(1);
        a.set(0, 0, -2.0);
        let r = a.expm_action(0.7, &[1.0], 1e-12);
        assert!((r[0] - (-1.4_f64).exp()).abs() < 1e-10);
    }

    #[test]
    fn expm_two_state_chain() {
        // State 0 -> state 1 at rate a; state 1 absorbs at rate b.
        // Survival in transient states: closed form for hypoexponential.
        let (a, b) = (3.0, 1.5);
        let mut s = Matrix::zeros(2);
        s.set(0, 0, -a);
        s.set(0, 1, a);
        s.set(1, 1, -b);
        let t = 0.9;
        let r = s.expm_action(t, &[1.0, 1.0], 1e-13);
        // From state 0 the survival is (b e^{-a t} - a e^{-b t})/(b - a).
        let expect0 = (b * (-a * t).exp() - a * (-b * t).exp()) / (b - a);
        let expect1 = (-b * t).exp();
        assert!((r[0] - expect0).abs() < 1e-9, "{} vs {}", r[0], expect0);
        assert!((r[1] - expect1).abs() < 1e-9);
    }

    #[test]
    fn solve_small_system() {
        let mut a = Matrix::zeros(3);
        let rows = [[2.0, 1.0, -1.0], [-3.0, -1.0, 2.0], [-2.0, 1.0, 2.0]];
        for (i, row) in rows.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                a.set(i, j, *v);
            }
        }
        let x = a.solve(&[8.0, -11.0, -3.0]);
        let expect = [2.0, 3.0, -1.0];
        for (got, want) in x.iter().zip(expect) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn solve_rejects_singular() {
        let mut a = Matrix::zeros(2);
        a.set(0, 0, 1.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 2.0);
        a.set(1, 1, 4.0);
        a.solve(&[1.0, 2.0]);
    }

    #[test]
    fn row_sums_of_generator_are_exit_rates() {
        let mut s = Matrix::zeros(2);
        s.set(0, 0, -5.0);
        s.set(0, 1, 2.0);
        s.set(1, 1, -1.0);
        let sums = s.row_sums();
        assert_eq!(sums, vec![-3.0, -1.0]); // exit rate = -(row sum)
    }
}

//! RET networks: chromophores at fixed positions and their exciton CTMC.
//!
//! A RET network is a set of chromophores placed in a physical geometry (in
//! practice on a DNA scaffold with sub-nanometre precision). Once one
//! chromophore is excited, the exciton performs a continuous-time random
//! walk: from chromophore `i` it hops to `j` with the Förster rate
//! `k(i→j)`, emits a photon with the radiative rate `Φᵢ/τᵢ`, or is lost
//! non-radiatively with rate `(1-Φᵢ)/τᵢ`. The walk is a CTMC whose
//! absorption time at a radiative state is the network's **time to
//! fluorescence** — a phase-type random variable.

use crate::chromophore::Chromophore;
use crate::error::RetError;
use crate::forster::ForsterPair;
use crate::linalg::Matrix;
use crate::phase_type::PhaseType;

/// Minimum physical separation (nm) below which Förster theory (point
/// dipoles) is no longer meaningful.
pub const CONTACT_LIMIT_NM: f64 = 0.5;

/// A chromophore network with fixed 3-D geometry and its exciton kinetics.
///
/// ```
/// use mogs_ret::network::RetNetwork;
///
/// let net = RetNetwork::donor_acceptor(4.0);
/// let split = net.emission_probabilities(0)?;
/// assert!(split.per_node[1] > split.per_node[0], "acceptor dominates at 4 nm");
/// # Ok::<(), mogs_ret::RetError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RetNetwork {
    chromophores: Vec<Chromophore>,
    positions: Vec<[f64; 3]>,
    /// Pairwise transfer rates, row-major `n × n`, zero diagonal (ns⁻¹).
    transfer: Vec<f64>,
}

/// Where an exciton trajectory ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// A photon was emitted by the chromophore with this index.
    Emitted(usize),
    /// The exciton decayed non-radiatively (no photon).
    Quenched,
}

impl RetNetwork {
    /// Builds a network from chromophores and their positions (nm).
    ///
    /// # Errors
    ///
    /// * [`RetError::EmptyNetwork`] if no chromophores are given.
    /// * [`RetError::ChromophoresTooClose`] if any pair is closer than
    ///   [`CONTACT_LIMIT_NM`].
    pub fn new(nodes: Vec<(Chromophore, [f64; 3])>) -> Result<Self, RetError> {
        if nodes.is_empty() {
            return Err(RetError::EmptyNetwork);
        }
        let (chromophores, positions): (Vec<_>, Vec<_>) = nodes.into_iter().unzip();
        let n = chromophores.len();
        let mut transfer = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let d = distance(&positions[i], &positions[j]);
                if d < CONTACT_LIMIT_NM {
                    return Err(RetError::ChromophoresTooClose {
                        a: i,
                        b: j,
                        distance_nm: d,
                    });
                }
                transfer[i * n + j] =
                    ForsterPair::evaluate(&chromophores[i], &chromophores[j], d).rate;
            }
        }
        Ok(RetNetwork {
            chromophores,
            positions,
            transfer,
        })
    }

    /// A canonical two-node donor→acceptor relay (Cy3 → Cy5) at the given
    /// separation, the workhorse network of the RSU-G exponential sampler.
    ///
    /// # Panics
    ///
    /// Panics if `distance_nm` is below [`CONTACT_LIMIT_NM`] (library misuse).
    pub fn donor_acceptor(distance_nm: f64) -> Self {
        RetNetwork::new(vec![
            (Chromophore::cy3_like(), [0.0, 0.0, 0.0]),
            (Chromophore::cy5_like(), [distance_nm, 0.0, 0.0]),
        ])
        .expect("two-node relay with valid spacing")
    }

    /// A linear cascade Cy3 → Cy3.5 → Cy5 with uniform spacing, used to
    /// shape longer (more Erlang-like) TTF distributions.
    ///
    /// # Panics
    ///
    /// Panics if `spacing_nm` places two chromophores at the same
    /// position (zero spacing).
    pub fn cascade(spacing_nm: f64) -> Self {
        RetNetwork::new(vec![
            (Chromophore::cy3_like(), [0.0, 0.0, 0.0]),
            (Chromophore::cy35_like(), [spacing_nm, 0.0, 0.0]),
            (Chromophore::cy5_like(), [2.0 * spacing_nm, 0.0, 0.0]),
        ])
        .expect("three-node cascade with valid spacing")
    }

    /// A light-harvesting funnel: `donors` Cy3 donors arranged on a circle
    /// of the given radius around one central Cy5 acceptor. Extra donors
    /// raise the absorption cross-section (more signal per LED photon)
    /// without changing the emission wavelength — the antenna pattern used
    /// to boost RET-circuit brightness.
    ///
    /// # Panics
    ///
    /// Panics if `donors == 0` or the ring packs donors below the contact
    /// limit (library misuse; use [`RetNetwork::new`] for a checked build).
    pub fn funnel(donors: usize, radius_nm: f64) -> Self {
        assert!(donors > 0, "funnel needs at least one donor");
        let mut nodes = vec![(Chromophore::cy5_like(), [0.0, 0.0, 0.0])];
        for k in 0..donors {
            let angle = 2.0 * std::f64::consts::PI * k as f64 / donors as f64;
            nodes.push((
                Chromophore::cy3_like(),
                [radius_nm * angle.cos(), radius_nm * angle.sin(), 0.0],
            ));
        }
        RetNetwork::new(nodes).expect("funnel ring with valid spacing")
    }

    /// Number of chromophores.
    pub fn len(&self) -> usize {
        self.chromophores.len()
    }

    /// Whether the network is empty (never true for a constructed network).
    pub fn is_empty(&self) -> bool {
        self.chromophores.is_empty()
    }

    /// The chromophores in index order.
    pub fn chromophores(&self) -> &[Chromophore] {
        &self.chromophores
    }

    /// Positions (nm) in index order.
    pub fn positions(&self) -> &[[f64; 3]] {
        &self.positions
    }

    /// Förster transfer rate `i → j` in ns⁻¹.
    ///
    /// # Errors
    ///
    /// Returns [`RetError::NodeOutOfRange`] for invalid indices.
    pub fn transfer_rate(&self, i: usize, j: usize) -> Result<f64, RetError> {
        let n = self.len();
        for idx in [i, j] {
            if idx >= n {
                return Err(RetError::NodeOutOfRange { index: idx, len: n });
            }
        }
        Ok(self.transfer[i * n + j])
    }

    /// Total rate out of node `i` (transfers + radiative + non-radiative).
    fn exit_rate(&self, i: usize) -> f64 {
        let n = self.len();
        let hops: f64 = (0..n).map(|j| self.transfer[i * n + j]).sum();
        hops + self.chromophores[i].decay_rate()
    }

    /// The sub-generator over transient states (exciton on node `i`).
    pub(crate) fn sub_generator(&self) -> Matrix {
        let n = self.len();
        let mut s = Matrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s.set(i, j, self.transfer[i * n + j]);
                }
            }
            s.set(i, i, -self.exit_rate(i));
        }
        s
    }

    /// Phase-type distribution of the time to photon emission, starting
    /// with the exciton on `initial`, *conditioned on emission occurring*
    /// (quench paths produce no photon and hence no TTF).
    ///
    /// # Errors
    ///
    /// Returns [`RetError::NodeOutOfRange`] if `initial` is invalid.
    pub fn ttf_distribution(&self, initial: usize) -> Result<PhaseType, RetError> {
        let n = self.len();
        if initial >= n {
            return Err(RetError::NodeOutOfRange {
                index: initial,
                len: n,
            });
        }
        let mut alpha = vec![0.0; n];
        alpha[initial] = 1.0;
        PhaseType::new(alpha, self.sub_generator())
    }

    /// Probability that an exciton starting on `initial` eventually emits a
    /// photon (rather than quenching), with the per-node emission split.
    ///
    /// Solves the first-step equations `(-S) p = r` where `r` holds the
    /// radiative exit rates.
    ///
    /// # Errors
    ///
    /// Returns [`RetError::NodeOutOfRange`] if `initial` is invalid.
    pub fn emission_probabilities(&self, initial: usize) -> Result<EmissionSplit, RetError> {
        let n = self.len();
        if initial >= n {
            return Err(RetError::NodeOutOfRange {
                index: initial,
                len: n,
            });
        }
        let s = self.sub_generator();
        // neg_s = -S
        let mut neg_s = Matrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                neg_s.set(i, j, -s.get(i, j));
            }
        }
        let mut per_node = vec![0.0; n];
        for emitter in 0..n {
            let mut r = vec![0.0; n];
            r[emitter] = self.chromophores[emitter].radiative_rate();
            let p = neg_s.solve(&r);
            per_node[emitter] = p[initial];
        }
        let total = per_node.iter().sum();
        Ok(EmissionSplit { per_node, total })
    }

    /// Mean time to photon emission, *conditioned on emission occurring*,
    /// for an exciton starting on `initial`.
    ///
    /// Computed exactly from the CTMC:
    /// `E[T·1{emit}] = α (-S)⁻² r` and `P(emit) = α (-S)⁻¹ r`, where `r`
    /// is the vector of radiative exit rates.
    ///
    /// # Errors
    ///
    /// Returns [`RetError::NodeOutOfRange`] if `initial` is invalid, or
    /// [`RetError::InvalidChromophore`] if the network can never emit.
    pub fn mean_emission_time(&self, initial: usize) -> Result<f64, RetError> {
        let n = self.len();
        if initial >= n {
            return Err(RetError::NodeOutOfRange {
                index: initial,
                len: n,
            });
        }
        let s = self.sub_generator();
        let mut neg_s = Matrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                neg_s.set(i, j, -s.get(i, j));
            }
        }
        let r: Vec<f64> = self
            .chromophores
            .iter()
            .map(Chromophore::radiative_rate)
            .collect();
        let v1 = neg_s.solve(&r); // (-S)⁻¹ r : P(emit | start = i)
        let v2 = neg_s.solve(&v1); // (-S)⁻² r : E[T·1{emit} | start = i]
        if v1[initial] <= 0.0 {
            return Err(RetError::InvalidChromophore {
                what: "network can never emit",
            });
        }
        Ok(v2[initial] / v1[initial])
    }

    /// Gillespie rates out of node `i`: `(targets, rates)` where targets are
    /// `Ok(j)` for a hop, or the two absorbing outcomes.
    pub(crate) fn transitions_from(&self, i: usize) -> Vec<(Transition, f64)> {
        let n = self.len();
        let mut out = Vec::with_capacity(n + 1);
        for j in 0..n {
            let r = self.transfer[i * n + j];
            if r > 0.0 {
                out.push((Transition::Hop(j), r));
            }
        }
        out.push((Transition::Emit, self.chromophores[i].radiative_rate()));
        out.push((Transition::Quench, self.chromophores[i].nonradiative_rate()));
        out
    }
}

/// One CTMC transition out of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Transition {
    Hop(usize),
    Emit,
    Quench,
}

/// Result of [`RetNetwork::emission_probabilities`].
#[derive(Debug, Clone, PartialEq)]
pub struct EmissionSplit {
    /// Probability the photon is emitted by each node.
    pub per_node: Vec<f64>,
    /// Total emission probability (vs quenching).
    pub total: f64,
}

fn distance(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_network_rejected() {
        assert_eq!(RetNetwork::new(vec![]).unwrap_err(), RetError::EmptyNetwork);
    }

    #[test]
    fn contact_limit_enforced() {
        let err = RetNetwork::new(vec![
            (Chromophore::cy3_like(), [0.0, 0.0, 0.0]),
            (Chromophore::cy5_like(), [0.1, 0.0, 0.0]),
        ])
        .unwrap_err();
        assert!(matches!(err, RetError::ChromophoresTooClose { .. }));
    }

    #[test]
    fn donor_acceptor_rates_directional() {
        let net = RetNetwork::donor_acceptor(4.0);
        let fwd = net.transfer_rate(0, 1).unwrap();
        let back = net.transfer_rate(1, 0).unwrap();
        assert!(fwd > 0.0);
        assert!(fwd > 10.0 * back);
    }

    #[test]
    fn transfer_rate_bounds_checked() {
        let net = RetNetwork::donor_acceptor(4.0);
        assert!(matches!(
            net.transfer_rate(0, 2),
            Err(RetError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn emission_split_sums_below_one() {
        let net = RetNetwork::donor_acceptor(4.0);
        let split = net.emission_probabilities(0).unwrap();
        assert!(split.total > 0.0 && split.total < 1.0);
        let sum: f64 = split.per_node.iter().sum();
        assert!((sum - split.total).abs() < 1e-12);
        // With strong forward transfer the acceptor should dominate emission.
        assert!(split.per_node[1] > split.per_node[0]);
    }

    #[test]
    fn close_donor_acceptor_transfers_more() {
        let near = RetNetwork::donor_acceptor(3.0)
            .emission_probabilities(0)
            .unwrap();
        let far = RetNetwork::donor_acceptor(8.0)
            .emission_probabilities(0)
            .unwrap();
        assert!(near.per_node[1] > far.per_node[1]);
        // At 8 nm (beyond R0) the donor mostly emits itself.
        assert!(far.per_node[0] > far.per_node[1]);
    }

    #[test]
    fn funnel_routes_energy_to_the_acceptor() {
        let net = RetNetwork::funnel(4, 3.5);
        assert_eq!(net.len(), 5);
        // An exciton starting on any donor mostly ends at the acceptor.
        for donor in 1..5 {
            let split = net.emission_probabilities(donor).unwrap();
            assert!(
                split.per_node[0] > split.per_node[donor],
                "donor {donor}: acceptor share {} vs donor {}",
                split.per_node[0],
                split.per_node[donor]
            );
        }
    }

    #[test]
    fn bigger_funnels_keep_the_acceptor_dominant() {
        for donors in [2usize, 4, 6] {
            let net = RetNetwork::funnel(donors, 3.5);
            let split = net.emission_probabilities(1).unwrap();
            let donor_total: f64 = split.per_node[1..].iter().sum();
            assert!(
                split.per_node[0] > donor_total,
                "{donors} donors: acceptor {} vs donors {donor_total}",
                split.per_node[0]
            );
        }
    }

    #[test]
    fn sub_generator_rows_sum_to_negative_exit() {
        let net = RetNetwork::cascade(3.5);
        let s = net.sub_generator();
        let sums = s.row_sums();
        for (i, sum) in sums.iter().enumerate() {
            // Row sum = -(radiative + nonradiative) = -decay rate.
            let expect = -net.chromophores()[i].decay_rate();
            assert!((sum - expect).abs() < 1e-10, "row {i}: {sum} vs {expect}");
        }
    }

    #[test]
    fn ttf_distribution_bounds_checked() {
        let net = RetNetwork::donor_acceptor(4.0);
        assert!(net.ttf_distribution(5).is_err());
        assert!(net.ttf_distribution(0).is_ok());
    }
}

//! Phase-type distributions: absorption times of finite CTMCs.
//!
//! Wang, Lebeck & Dwyer (IEEE Micro 2015) show RET networks can sample from
//! phase-type distributions, which are dense in the space of positive
//! distributions — the theoretical basis for "virtually arbitrary
//! probabilistic behavior". A phase-type distribution `PH(α, S)` is the time
//! to absorption of a CTMC with transient sub-generator `S` started from the
//! distribution `α`:
//!
//! * survival  `F̄(t) = α · exp(St) · 1`
//! * density   `f(t) = α · exp(St) · s⁰` with exit-rate vector `s⁰ = -S·1`
//! * mean      `E[T] = α · (-S)⁻¹ · 1`

use crate::error::RetError;
use crate::linalg::Matrix;
use rand::Rng;

const EXPM_TOL: f64 = 1e-12;

/// A phase-type distribution `PH(α, S)`.
///
/// Constructed either directly ([`PhaseType::exponential`],
/// [`PhaseType::erlang`]) or from a RET network via
/// [`crate::network::RetNetwork::ttf_distribution`].
///
/// ```
/// use mogs_ret::phase_type::PhaseType;
///
/// let erlang = PhaseType::erlang(3, 2.0);
/// assert!((erlang.mean() - 1.5).abs() < 1e-12);
/// assert!(erlang.cdf(10.0) > 0.999);
/// ```
#[derive(Debug, Clone)]
pub struct PhaseType {
    alpha: Vec<f64>,
    s: Matrix,
    /// Exit rates `s⁰ = -S·1` per transient state.
    exit: Vec<f64>,
}

impl PhaseType {
    /// Creates `PH(α, S)`.
    ///
    /// `alpha` may sum to less than one (the deficit is instantaneous
    /// absorption / atom at zero); entries must be non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`RetError::DimensionMismatch`] if `alpha.len()` differs from
    /// the generator dimension.
    pub(crate) fn new(alpha: Vec<f64>, s: Matrix) -> Result<Self, RetError> {
        if alpha.len() != s.n() {
            return Err(RetError::DimensionMismatch {
                expected: s.n(),
                actual: alpha.len(),
            });
        }
        let exit = s.row_sums().iter().map(|r| -r).collect();
        Ok(PhaseType { alpha, s, exit })
    }

    /// The exponential distribution with the given rate (ns⁻¹) as a 1-state
    /// phase type.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn exponential(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        let mut s = Matrix::zeros(1);
        s.set(0, 0, -rate);
        PhaseType::new(vec![1.0], s).expect("1-state dimensions always match")
    }

    /// The Erlang-`k` distribution (sum of `k` iid exponentials of the given
    /// rate) as a `k`-state chain.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `rate` is not strictly positive and finite.
    pub fn erlang(k: usize, rate: f64) -> Self {
        assert!(k > 0, "erlang needs at least one stage");
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        let mut s = Matrix::zeros(k);
        for i in 0..k {
            s.set(i, i, -rate);
            if i + 1 < k {
                s.set(i, i + 1, rate);
            }
        }
        let mut alpha = vec![0.0; k];
        alpha[0] = 1.0;
        PhaseType::new(alpha, s).expect("dimensions match by construction")
    }

    /// Number of transient states.
    pub fn order(&self) -> usize {
        self.alpha.len()
    }

    /// Survival function `P(T > t)`.
    pub fn survival(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 1.0;
        }
        let ones = vec![1.0; self.order()];
        let v = self.s.expm_action(t, &ones, EXPM_TOL);
        dot(&self.alpha, &v).clamp(0.0, 1.0)
    }

    /// Cumulative distribution function `P(T ≤ t)`.
    pub fn cdf(&self, t: f64) -> f64 {
        1.0 - self.survival(t)
    }

    /// Probability density at `t`.
    pub fn pdf(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        let v = self.s.expm_action(t, &self.exit, EXPM_TOL);
        dot(&self.alpha, &v).max(0.0)
    }

    /// Mean `E[T] = α (-S)⁻¹ 1`.
    pub fn mean(&self) -> f64 {
        let m = self.moment_vector(1);
        dot(&self.alpha, &m)
    }

    /// Variance of the distribution.
    pub fn variance(&self) -> f64 {
        // E[T²] = 2 α (-S)⁻² 1.
        let m1 = self.moment_vector(1);
        let neg_s = self.negated();
        let m2 = neg_s.solve(&m1);
        let second = 2.0 * dot(&self.alpha, &m2);
        let mean = self.mean();
        (second - mean * mean).max(0.0)
    }

    /// Draws one sample by simulating the embedded jump chain.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let n = self.order();
        // Pick initial state (deficit mass = absorb immediately).
        let mut u: f64 = rng.gen();
        let mut state = usize::MAX;
        for (i, a) in self.alpha.iter().enumerate() {
            if u < *a {
                state = i;
                break;
            }
            u -= a;
        }
        if state == usize::MAX {
            return 0.0;
        }
        let mut t = 0.0;
        loop {
            let total_exit = -self.s.get(state, state);
            if total_exit <= 0.0 {
                // Absorbing-in-practice state: never leaves. Treat as +inf,
                // but return a very large time instead to stay total.
                return f64::INFINITY;
            }
            t += sample_exp(rng, total_exit);
            // Choose next: transient j with prob S[state][j]/total, else absorb.
            let mut v: f64 = rng.gen::<f64>() * total_exit;
            let mut next = None;
            for j in 0..n {
                if j == state {
                    continue;
                }
                let r = self.s.get(state, j);
                if v < r {
                    next = Some(j);
                    break;
                }
                v -= r;
            }
            match next {
                Some(j) => state = j,
                None => return t,
            }
        }
    }

    fn negated(&self) -> Matrix {
        let n = self.order();
        let mut m = Matrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                m.set(i, j, -self.s.get(i, j));
            }
        }
        m
    }

    /// `(-S)⁻ᵏ · 1` computed by repeated solves.
    fn moment_vector(&self, k: usize) -> Vec<f64> {
        let neg_s = self.negated();
        let mut v = vec![1.0; self.order()];
        for _ in 0..k {
            v = neg_s.solve(&v);
        }
        v
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Inverse-transform exponential sample with the given rate.
pub(crate) fn sample_exp<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    // 1 - gen() is in (0, 1]; ln of it is finite and non-positive.
    -((1.0 - rng.gen::<f64>()).ln()) / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_cdf_matches_closed_form() {
        let ph = PhaseType::exponential(2.0);
        for t in [0.0f64, 0.1, 0.5, 1.0, 3.0] {
            let expect = 1.0 - (-2.0 * t).exp();
            assert!((ph.cdf(t) - expect).abs() < 1e-9, "t={t}");
        }
    }

    #[test]
    fn exponential_moments() {
        let ph = PhaseType::exponential(4.0);
        assert!((ph.mean() - 0.25).abs() < 1e-12);
        assert!((ph.variance() - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn erlang_moments() {
        let ph = PhaseType::erlang(3, 2.0);
        assert!((ph.mean() - 1.5).abs() < 1e-12);
        assert!((ph.variance() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        let ph = PhaseType::erlang(2, 1.5);
        // Trapezoid integral of pdf over [0, 4] vs cdf(4).
        let n = 2000;
        let h = 4.0 / f64::from(n);
        let mut integral = 0.0;
        for i in 0..n {
            let a = ph.pdf(f64::from(i) * h);
            let b = ph.pdf(f64::from(i + 1) * h);
            integral += 0.5 * (a + b) * h;
        }
        assert!((integral - ph.cdf(4.0)).abs() < 1e-4);
    }

    #[test]
    fn sample_mean_converges() {
        let ph = PhaseType::erlang(2, 3.0);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| ph.sample(&mut rng)).sum::<f64>() / f64::from(n);
        assert!(
            (mean - ph.mean()).abs() < 0.02,
            "sample mean {mean} vs {}",
            ph.mean()
        );
    }

    #[test]
    fn sample_distribution_matches_cdf() {
        let ph = PhaseType::exponential(1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut samples: Vec<f64> = (0..n).map(|_| ph.sample(&mut rng)).collect();
        samples.sort_by(f64::total_cmp);
        // Kolmogorov–Smirnov-ish check at a few quantiles.
        for q in [0.1, 0.5, 0.9] {
            let x = samples[(q * f64::from(n)) as usize];
            assert!(
                (ph.cdf(x) - q).abs() < 0.02,
                "q={q}: cdf({x})={}",
                ph.cdf(x)
            );
        }
    }

    #[test]
    fn survival_monotone_nonincreasing() {
        let ph = PhaseType::erlang(4, 2.0);
        let mut last = 1.0;
        for i in 0..50 {
            let s = ph.survival(f64::from(i) * 0.1);
            assert!(s <= last + 1e-12);
            last = s;
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_nonpositive_rate() {
        PhaseType::exponential(0.0);
    }
}

//! Composable RET-based samplers beyond the exponential (paper §2.3).
//!
//! Wang, Lebeck & Dwyer (IEEE Micro 2015) — the paper's reference [42] —
//! outline a family of elementary RET samplers (Bernoulli, exponential)
//! that *compose* into samplers for general distributions; the RSU-G's
//! first-to-fire discrete sampler is one such composition. This module
//! provides the other elementary units and two classic compositions, each
//! expressed through the same intensity-parameterized race that physical
//! RET circuits implement:
//!
//! * [`BernoulliSampler`] — a two-channel race; `P(success) = λ₁/(λ₁+λ₂)`
//!   is set by the intensity ratio.
//! * [`UniformBits`] — a chain of balanced Bernoulli races producing
//!   uniform random words (the RET analogue of a TRNG).
//! * [`GeometricSampler`] — repeated Bernoulli trials.
//! * [`CategoricalSampler`] — the general M-way first-to-fire (the RSU-G's
//!   core), exposed directly for non-MRF uses.

use crate::exponential::{first_to_fire_with, ExponentialSampler, IdealExponential};
use rand::Rng;

/// A Bernoulli sampler implemented as a two-exponential race.
///
/// The physical realization is two RET circuits with intensity ratio
/// `p : (1 − p)`; the success channel firing first is the "1" outcome.
#[derive(Debug, Clone)]
pub struct BernoulliSampler<S = IdealExponential> {
    sampler: S,
    /// Rate of the success channel (ns⁻¹).
    success_rate: f64,
    /// Rate of the failure channel (ns⁻¹).
    failure_rate: f64,
}

impl BernoulliSampler<IdealExponential> {
    /// A Bernoulli with success probability `p`, realized with unit total
    /// rate.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1` (degenerate coins need no optics).
    pub fn new(p: f64) -> Self {
        Self::with_sampler(IdealExponential::new(), p)
    }
}

impl<S: ExponentialSampler> BernoulliSampler<S> {
    /// As [`BernoulliSampler::new`] with a caller-supplied exponential
    /// back end (e.g. a physics-fidelity RET circuit).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    pub fn with_sampler(sampler: S, p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "probability must be in (0, 1)");
        BernoulliSampler {
            sampler,
            success_rate: p,
            failure_rate: 1.0 - p,
        }
    }

    /// The programmed success probability.
    pub fn p(&self) -> f64 {
        self.success_rate / (self.success_rate + self.failure_rate)
    }

    /// Draws one Bernoulli outcome.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        let rates = [self.success_rate, self.failure_rate];
        matches!(
            first_to_fire_with(&mut self.sampler, &rates, rng),
            Some((0, _))
        )
    }
}

/// Uniform random words from a chain of balanced Bernoulli races — the
/// RET analogue of a hardware TRNG (contrast with the Intel DRNG the paper
/// compares against in §2.4, which needs AES conditioning).
#[derive(Debug, Clone)]
pub struct UniformBits {
    coin: BernoulliSampler,
}

impl UniformBits {
    /// Creates the generator.
    pub fn new() -> Self {
        UniformBits {
            coin: BernoulliSampler::new(0.5),
        }
    }

    /// Draws `bits` uniform bits into the low end of a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or exceeds 64.
    pub fn sample<R: Rng + ?Sized>(&mut self, bits: u32, rng: &mut R) -> u64 {
        assert!((1..=64).contains(&bits), "bits must be in 1..=64");
        let mut word = 0u64;
        for _ in 0..bits {
            word = (word << 1) | u64::from(self.coin.sample(rng));
        }
        word
    }
}

impl Default for UniformBits {
    fn default() -> Self {
        UniformBits::new()
    }
}

/// A geometric sampler: the number of failed Bernoulli races before the
/// first success (support `0, 1, 2, …`).
#[derive(Debug, Clone)]
pub struct GeometricSampler {
    coin: BernoulliSampler,
}

impl GeometricSampler {
    /// A geometric with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    pub fn new(p: f64) -> Self {
        GeometricSampler {
            coin: BernoulliSampler::new(p),
        }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        let mut failures = 0;
        while !self.coin.sample(rng) {
            failures += 1;
        }
        failures
    }
}

/// A general M-way categorical sampler by first-to-fire: outcome `i` wins
/// with probability `weights[i] / Σ weights`. This is the RSU-G's core
/// operation without the MRF energy front end.
#[derive(Debug, Clone)]
pub struct CategoricalSampler<S = IdealExponential> {
    sampler: S,
    weights: Vec<f64>,
}

impl CategoricalSampler<IdealExponential> {
    /// A categorical over the given non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative/non-finite entry,
    /// or sums to zero.
    pub fn new(weights: Vec<f64>) -> Self {
        Self::with_sampler(IdealExponential::new(), weights)
    }
}

impl<S: ExponentialSampler> CategoricalSampler<S> {
    /// As [`CategoricalSampler::new`] with a caller-supplied exponential
    /// back end.
    ///
    /// # Panics
    ///
    /// See [`CategoricalSampler::new`].
    pub fn with_sampler(sampler: S, weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "need at least one outcome");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        assert!(
            weights.iter().sum::<f64>() > 0.0,
            "weights must not all be zero"
        );
        CategoricalSampler { sampler, weights }
    }

    /// The normalized outcome probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        let total: f64 = self.weights.iter().sum();
        self.weights.iter().map(|w| w / total).collect()
    }

    /// Draws one outcome index.
    ///
    /// # Panics
    ///
    /// Panics if the underlying sampler quantizes every weight to "off"
    /// so that no circuit fires.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        first_to_fire_with(&mut self.sampler, &self.weights, rng)
            .map(|(i, _)| i)
            .expect("at least one weight is positive")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bernoulli_frequency_matches_p() {
        for p in [0.1, 0.5, 0.85] {
            let mut coin = BernoulliSampler::new(p);
            let mut rng = StdRng::seed_from_u64(p.to_bits());
            let n = 40_000;
            let hits = (0..n).filter(|_| coin.sample(&mut rng)).count();
            let freq = hits as f64 / f64::from(n);
            assert!((freq - p).abs() < 0.01, "p={p}: {freq}");
        }
    }

    #[test]
    fn uniform_bits_are_balanced_and_independent_ish() {
        let mut gen = UniformBits::new();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mut ones = 0u64;
        let mut transitions = 0u64;
        let mut last = 0u64;
        for i in 0..n {
            let b = gen.sample(1, &mut rng);
            ones += b;
            if i > 0 && b != last {
                transitions += 1;
            }
            last = b;
        }
        let bias = ones as f64 / f64::from(n);
        assert!((bias - 0.5).abs() < 0.015, "bit bias {bias}");
        // Independent bits flip ~half the time.
        let flip = transitions as f64 / f64::from(n - 1);
        assert!((flip - 0.5).abs() < 0.015, "transition rate {flip}");
    }

    #[test]
    fn uniform_words_cover_the_range() {
        let mut gen = UniformBits::new();
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[gen.sample(3, &mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "3-bit words must cover 0..8");
    }

    #[test]
    fn geometric_mean_matches_theory() {
        let p = 0.25;
        let mut g = GeometricSampler::new(p);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 30_000;
        let mean: f64 = (0..n).map(|_| g.sample(&mut rng) as f64).sum::<f64>() / f64::from(n);
        let expect = (1.0 - p) / p; // failures before success
        assert!((mean - expect).abs() < 0.08, "mean {mean} vs {expect}");
    }

    #[test]
    fn categorical_matches_weights() {
        let mut c = CategoricalSampler::new(vec![1.0, 0.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(6);
        let n = 40_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[c.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight outcome never drawn");
        let p0 = counts[0] as f64 / f64::from(n);
        assert!((p0 - 0.25).abs() < 0.01, "p0 {p0}");
    }

    #[test]
    fn categorical_probabilities_normalize() {
        let c = CategoricalSampler::new(vec![2.0, 6.0]);
        assert_eq!(c.probabilities(), vec![0.25, 0.75]);
    }

    #[test]
    #[should_panic(expected = "probability must be in (0, 1)")]
    fn degenerate_bernoulli_rejected() {
        BernoulliSampler::new(1.0);
    }

    #[test]
    #[should_panic(expected = "weights must not all be zero")]
    fn all_zero_categorical_rejected() {
        CategoricalSampler::new(vec![0.0, 0.0]);
    }
}

//! Simplified optical spectra and overlap integrals.
//!
//! Real chromophore spectra are tabulated; for the purposes of a
//! computer-architecture-scale simulator a single-Gaussian model captures
//! what matters for Förster transfer: *where* a band sits, *how wide* it is,
//! and therefore *how much* a donor's emission overlaps an acceptor's
//! absorption (the spectral overlap integral `J`, which enters the Förster
//! radius as `R0^6 ∝ J`).

/// A Gaussian spectral band: a normalized line shape over wavelength.
///
/// The band is `exp(-(λ - peak)² / (2σ²))` scaled so that it integrates
/// to one over wavelength (units: nm⁻¹).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianBand {
    /// Peak wavelength in nanometres.
    pub peak_nm: f64,
    /// Standard deviation (band width) in nanometres.
    pub sigma_nm: f64,
}

impl GaussianBand {
    /// Creates a band with the given peak and width.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_nm` is not strictly positive or either argument is
    /// not finite.
    pub fn new(peak_nm: f64, sigma_nm: f64) -> Self {
        assert!(
            peak_nm.is_finite() && sigma_nm.is_finite(),
            "band parameters must be finite"
        );
        assert!(sigma_nm > 0.0, "band width must be positive");
        GaussianBand { peak_nm, sigma_nm }
    }

    /// Normalized line-shape value at wavelength `lambda_nm` (units nm⁻¹).
    pub fn density(&self, lambda_nm: f64) -> f64 {
        let z = (lambda_nm - self.peak_nm) / self.sigma_nm;
        (-0.5 * z * z).exp() / (self.sigma_nm * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Overlap integral `∫ f(λ) g(λ) dλ` of two normalized Gaussian bands.
    ///
    /// For Gaussians this has the closed form of a Gaussian evaluated at the
    /// peak separation with combined variance, which we use directly instead
    /// of numerical quadrature.
    pub fn overlap(&self, other: &GaussianBand) -> f64 {
        let var = self.sigma_nm * self.sigma_nm + other.sigma_nm * other.sigma_nm;
        let d = self.peak_nm - other.peak_nm;
        (-0.5 * d * d / var).exp() / ((2.0 * std::f64::consts::PI * var).sqrt())
    }
}

/// Relative spectral overlap between a donor's emission and an acceptor's
/// absorption, normalized so that perfectly coincident equal-width bands
/// give 1.0.
///
/// This dimensionless factor scales the Förster radius:
/// `R0^6 = R0_ref^6 · overlap_factor`.
pub fn overlap_factor(donor_emission: &GaussianBand, acceptor_absorption: &GaussianBand) -> f64 {
    let j = donor_emission.overlap(acceptor_absorption);
    // Self-overlap of a band with itself when both have the donor's width:
    // the maximum achievable for these widths.
    let self_overlap = GaussianBand::new(0.0, donor_emission.sigma_nm)
        .overlap(&GaussianBand::new(0.0, acceptor_absorption.sigma_nm));
    if self_overlap <= 0.0 {
        0.0
    } else {
        j / self_overlap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn integrate(band: &GaussianBand, lo: f64, hi: f64, n: usize) -> f64 {
        let h = (hi - lo) / n as f64;
        (0..n)
            .map(|i| band.density(lo + (i as f64 + 0.5) * h) * h)
            .sum()
    }

    #[test]
    fn band_integrates_to_one() {
        let b = GaussianBand::new(550.0, 20.0);
        let total = integrate(&b, 400.0, 700.0, 4000);
        assert!((total - 1.0).abs() < 1e-6, "integral was {total}");
    }

    #[test]
    fn overlap_closed_form_matches_quadrature() {
        let f = GaussianBand::new(520.0, 18.0);
        let g = GaussianBand::new(560.0, 25.0);
        let h = 0.05;
        let numeric: f64 = (0..12000)
            .map(|i| {
                let l = 300.0 + (f64::from(i) + 0.5) * h;
                f.density(l) * g.density(l) * h
            })
            .sum();
        assert!((f.overlap(&g) - numeric).abs() < 1e-8);
    }

    #[test]
    fn overlap_is_symmetric() {
        let f = GaussianBand::new(500.0, 15.0);
        let g = GaussianBand::new(540.0, 30.0);
        assert!((f.overlap(&g) - g.overlap(&f)).abs() < 1e-15);
    }

    #[test]
    fn overlap_factor_is_one_for_coincident_bands() {
        let f = GaussianBand::new(550.0, 20.0);
        assert!((overlap_factor(&f, &f) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_factor_decays_with_separation() {
        let d = GaussianBand::new(520.0, 20.0);
        let near = GaussianBand::new(530.0, 20.0);
        let far = GaussianBand::new(620.0, 20.0);
        assert!(overlap_factor(&d, &near) > overlap_factor(&d, &far));
        assert!(overlap_factor(&d, &far) < 0.01);
    }

    #[test]
    #[should_panic(expected = "band width must be positive")]
    fn zero_width_rejected() {
        GaussianBand::new(500.0, 0.0);
    }
}

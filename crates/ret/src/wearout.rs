//! Chromophore photobleaching and ensemble-lifetime modelling (paper §9).
//!
//! In the presence of oxygen a chromophore survives only a finite number of
//! excitation cycles before photobleaching — a wear-out process. The paper
//! proposes two mitigations: replicate many RET networks per circuit, and
//! encapsulate the chromophores to keep oxygen out. This module models both:
//! an ensemble of `n` networks where each network independently survives a
//! geometric number of excitations, and an encapsulation factor that scales
//! the mean excitations-to-failure.

/// Wear-out model for an ensemble of identical RET networks.
///
/// ```
/// use mogs_ret::wearout::EnsembleWearout;
///
/// let bare = EnsembleWearout::new(64, 1e6, 1.0);
/// let sealed = EnsembleWearout::new(64, 1e6, 100.0);
/// assert_eq!(sealed.usable_budget(0.5), 100 * bare.usable_budget(0.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnsembleWearout {
    /// Networks in the ensemble at time zero.
    pub ensemble_size: usize,
    /// Mean excitations a single network survives *without* encapsulation.
    pub mean_excitations_to_failure: f64,
    /// Multiplier on lifetime from oxygen encapsulation (1.0 = none).
    pub encapsulation_factor: f64,
}

impl Default for EnsembleWearout {
    fn default() -> Self {
        // Organic dyes typically survive 1e5–1e7 excitation cycles in air;
        // use 1e6 as a representative midpoint.
        EnsembleWearout {
            ensemble_size: 64,
            mean_excitations_to_failure: 1e6,
            encapsulation_factor: 1.0,
        }
    }
}

impl EnsembleWearout {
    /// Creates a wear-out model.
    ///
    /// # Panics
    ///
    /// Panics if the ensemble is empty or either factor is not strictly
    /// positive.
    pub fn new(
        ensemble_size: usize,
        mean_excitations_to_failure: f64,
        encapsulation_factor: f64,
    ) -> Self {
        assert!(ensemble_size > 0, "ensemble must be non-empty");
        assert!(
            mean_excitations_to_failure > 0.0,
            "lifetime must be positive"
        );
        assert!(
            encapsulation_factor > 0.0,
            "encapsulation factor must be positive"
        );
        EnsembleWearout {
            ensemble_size,
            mean_excitations_to_failure,
            encapsulation_factor,
        }
    }

    /// Effective mean excitations-to-failure per network, including
    /// encapsulation.
    pub fn effective_lifetime(&self) -> f64 {
        self.mean_excitations_to_failure * self.encapsulation_factor
    }

    /// Expected fraction of the ensemble still photoactive after the
    /// ensemble as a whole has absorbed `total_excitations`.
    ///
    /// Excitations are spread uniformly over the *surviving* population, so
    /// per-network dose accrues faster as networks die; the survival
    /// fraction `s` solves `dose_per_network = ∫ dN / (n·s)`. With
    /// exponential per-network lifetimes this yields
    /// `s = exp(-W(x))`-free closed form: the surviving fraction after a
    /// total dose `D` satisfies `s = exp(-(D / (n·L)) / s̄)`; we integrate
    /// numerically instead of approximating.
    pub fn alive_fraction(&self, total_excitations: u64) -> f64 {
        let life = self.effective_lifetime();
        let n = self.ensemble_size as f64;
        // Integrate dD = n·s dτ where τ is per-network dose and
        // s(τ) = exp(-τ/L): D(τ) = n·L·(1 - exp(-τ/L)).
        // Invert: s = 1 - D/(n·L), floored at 0 (all dead).
        let d = total_excitations as f64;
        (1.0 - d / (n * life)).max(0.0)
    }

    /// Total excitations the ensemble can absorb before fewer than
    /// `min_fraction` of networks remain photoactive.
    ///
    /// # Panics
    ///
    /// Panics if `min_fraction` is outside `(0, 1]`.
    pub fn usable_budget(&self, min_fraction: f64) -> u64 {
        assert!(
            min_fraction > 0.0 && min_fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        let n = self.ensemble_size as f64;
        (n * self.effective_lifetime() * (1.0 - min_fraction)) as u64
    }

    /// Usable wall-clock lifetime in seconds at a sustained excitation rate
    /// (excitations/ns) before falling below `min_fraction`.
    ///
    /// # Panics
    ///
    /// Panics if the excitation rate is not strictly positive, or under
    /// the conditions [`EnsembleWearout::usable_budget`] reports.
    pub fn usable_seconds(&self, excitation_rate_per_ns: f64, min_fraction: f64) -> f64 {
        assert!(
            excitation_rate_per_ns > 0.0,
            "excitation rate must be positive"
        );
        self.usable_budget(min_fraction) as f64 / excitation_rate_per_ns * 1e-9
    }

    /// Samples independent exponential excitation-budget lifetimes for
    /// `units` physical RSU units, each with mean
    /// [`EnsembleWearout::effective_lifetime`].
    ///
    /// Per-network survival is geometric in excitation count, so in the
    /// continuum limit a whole unit's time-to-failure is exponential
    /// around the effective mean. Draws come from a dedicated
    /// [`rand::rngs::StdRng`] seeded with `seed`, so a fault plan built
    /// from these lifetimes is reproducible run to run.
    pub fn sample_unit_lifetimes(&self, units: usize, seed: u64) -> Vec<f64> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let life = self.effective_lifetime();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..units)
            .map(|_| -(1.0 - rng.gen::<f64>()).ln() * life)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ensemble_is_fully_alive() {
        let w = EnsembleWearout::default();
        assert!((w.alive_fraction(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alive_fraction_monotone_in_dose() {
        let w = EnsembleWearout::default();
        let mut last = 1.0;
        for d in (0..20).map(|i| i * 5_000_000) {
            let s = w.alive_fraction(d);
            assert!(s <= last);
            last = s;
        }
    }

    #[test]
    fn bigger_ensembles_last_longer() {
        let small = EnsembleWearout::new(16, 1e6, 1.0);
        let large = EnsembleWearout::new(256, 1e6, 1.0);
        assert!(large.usable_budget(0.5) > small.usable_budget(0.5));
        // Budget scales linearly with ensemble size.
        let ratio = large.usable_budget(0.5) as f64 / small.usable_budget(0.5) as f64;
        assert!((ratio - 16.0).abs() < 0.01);
    }

    #[test]
    fn encapsulation_extends_lifetime() {
        let bare = EnsembleWearout::new(64, 1e6, 1.0);
        let sealed = EnsembleWearout::new(64, 1e6, 100.0);
        assert_eq!(sealed.usable_budget(0.5), 100 * bare.usable_budget(0.5));
    }

    #[test]
    fn usable_seconds_scales_inversely_with_rate() {
        let w = EnsembleWearout::default();
        let slow = w.usable_seconds(0.1, 0.5);
        let fast = w.usable_seconds(1.0, 0.5);
        assert!((slow / fast - 10.0).abs() < 1e-9);
    }

    #[test]
    fn exhausted_ensemble_reports_zero() {
        let w = EnsembleWearout::new(4, 100.0, 1.0);
        assert_eq!(w.alive_fraction(1_000_000), 0.0);
    }

    #[test]
    #[should_panic(expected = "fraction must be in (0, 1]")]
    fn zero_min_fraction_rejected() {
        EnsembleWearout::default().usable_budget(0.0);
    }

    #[test]
    fn unit_lifetimes_are_seeded_and_positive() {
        let w = EnsembleWearout::new(64, 1e6, 2.0);
        let a = w.sample_unit_lifetimes(8, 0xFA11);
        let b = w.sample_unit_lifetimes(8, 0xFA11);
        assert_eq!(a, b, "same seed must reproduce the same lifetimes");
        assert!(a.iter().all(|&l| l > 0.0));
        assert_ne!(a, w.sample_unit_lifetimes(8, 0xFA12));
        // Empirical mean lands near the effective lifetime with a wide
        // tolerance (exponential draws, small sample).
        let big = w.sample_unit_lifetimes(4096, 7);
        let mean = big.iter().sum::<f64>() / big.len() as f64;
        assert!((mean / w.effective_lifetime() - 1.0).abs() < 0.1);
    }
}

//! Property-based invariants of the RET physics substrate.

use mogs_ret::chromophore::Chromophore;
use mogs_ret::forster::ForsterPair;
use mogs_ret::network::RetNetwork;
use mogs_ret::phase_type::PhaseType;
use mogs_ret::spectra::GaussianBand;
use proptest::prelude::*;

fn arb_chromophore() -> impl Strategy<Value = Chromophore> {
    (
        450.0f64..700.0, // absorption peak
        10.0f64..40.0,   // absorption width
        5.0f64..40.0,    // Stokes shift
        10.0f64..40.0,   // emission width
        0.3f64..3.0,     // lifetime
        0.05f64..0.95,   // quantum yield
    )
        .prop_map(|(abs_peak, abs_w, stokes, em_w, tau, qy)| {
            Chromophore::new(
                "dye",
                GaussianBand::new(abs_peak, abs_w),
                GaussianBand::new(abs_peak + stokes, em_w),
                tau,
                qy,
            )
            .expect("generated parameters are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Förster rate falls strictly with distance for any coupled pair.
    #[test]
    fn rate_monotone_in_distance(
        donor in arb_chromophore(),
        acceptor in arb_chromophore(),
        d1 in 1.0f64..6.0,
        delta in 0.5f64..4.0,
    ) {
        let near = ForsterPair::evaluate(&donor, &acceptor, d1);
        let far = ForsterPair::evaluate(&donor, &acceptor, d1 + delta);
        if near.rate > 0.0 {
            prop_assert!(far.rate < near.rate);
        }
    }

    /// Transfer efficiency is a probability for every geometry.
    #[test]
    fn efficiency_is_a_probability(
        donor in arb_chromophore(),
        acceptor in arb_chromophore(),
        d in 1.0f64..10.0,
    ) {
        let pair = ForsterPair::evaluate(&donor, &acceptor, d);
        let eff = pair.efficiency(donor.decay_rate());
        prop_assert!((0.0..=1.0).contains(&eff), "efficiency {}", eff);
    }

    /// Every two-dye network's emission probabilities form a
    /// sub-distribution and its conditional mean emission time is positive.
    #[test]
    fn network_emission_probabilities_valid(
        donor in arb_chromophore(),
        acceptor in arb_chromophore(),
        d in 1.0f64..10.0,
    ) {
        let net = RetNetwork::new(vec![
            (donor, [0.0, 0.0, 0.0]),
            (acceptor, [d, 0.0, 0.0]),
        ])
        .expect("valid spacing");
        let split = net.emission_probabilities(0).expect("node 0");
        prop_assert!(split.total > 0.0 && split.total <= 1.0 + 1e-12);
        for p in &split.per_node {
            prop_assert!(*p >= -1e-12 && *p <= 1.0 + 1e-12);
        }
        let mean = net.mean_emission_time(0).expect("emits");
        prop_assert!(mean > 0.0 && mean.is_finite());
    }

    /// Phase-type CDFs are monotone and bounded for exponential and Erlang
    /// families across their parameter ranges.
    #[test]
    fn phase_type_cdf_monotone(rate in 0.05f64..20.0, k in 1usize..6) {
        let ph = PhaseType::erlang(k, rate);
        let mut last = 0.0;
        for i in 0..30 {
            let t = f64::from(i) * 0.3 / rate;
            let c = ph.cdf(t);
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!(c + 1e-9 >= last, "CDF must be non-decreasing");
            last = c;
        }
    }

    /// Erlang moments match the closed form for all parameters.
    #[test]
    fn erlang_moments_closed_form(rate in 0.1f64..10.0, k in 1usize..8) {
        let ph = PhaseType::erlang(k, rate);
        let kf = k as f64;
        prop_assert!((ph.mean() - kf / rate).abs() < 1e-9 * (kf / rate));
        prop_assert!((ph.variance() - kf / (rate * rate)).abs() < 1e-8 * kf / (rate * rate));
    }
}

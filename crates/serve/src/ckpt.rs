//! Restart durability: the serve layer's use of `mogs-ckpt`.
//!
//! When a [`ServeConfig`](crate::ServeConfig) carries a
//! [`CheckpointSetup`], every submitted job gets a durable
//! sweep-boundary checkpoint writer keyed by its serve id, with the
//! *raw request body* stored as the checkpoint's `meta`. That meta is
//! the whole recovery story: a job request is a pure description (the
//! synthetic scene, the unary table, the seed all derive from it), so
//! re-parsing the body rebuilds the exact spec the checkpointed state
//! was captured under — and the engine's
//! [`StateBinding`](mogs_engine::StateBinding) check refuses the seat
//! if anything (dimensions, seed, budget, chunking, kernel) drifted.
//!
//! On startup, [`Server::bind`](crate::Server::bind) calls [`recover`]:
//! scan the checkpoint directory, and for every resumable entry
//! re-admit the job through the *same* gates a fresh submission passes
//! (tenant registered, tenant quota charged) before seating it with
//! [`Engine::resume`]. A checkpoint that fails any gate — unparseable
//! key or meta, vanished tenant, binding mismatch — is reported, never
//! resumed, and left on disk for the operator; recovery must not turn
//! a corrupt file into a crash or a silently different job.
//!
//! Deletion is the router's job: when
//! [`Router::refresh_store`](crate::Router) observes a job reach a
//! terminal state, the job's checkpoints are removed — a finished job
//! must not be resurrected by the next restart.

use std::path::PathBuf;

use mogs_ckpt::CheckpointStore;
use mogs_engine::{CheckpointPolicy, Engine, JobState as CheckpointState};

use crate::jobspec::JobRequest;
use crate::store::JobStore;
use crate::tenant::TenantRegistry;

/// Checkpoint configuration carried by
/// [`ServeConfig`](crate::ServeConfig).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSetup {
    /// Directory the checkpoint files live in (created if absent).
    pub dir: PathBuf,
    /// Capture cadence: a checkpoint every this many completed sweeps.
    pub every_sweeps: usize,
    /// Checkpoints retained per job (older ones are pruned).
    pub retain: usize,
    /// When set, startup recovery first runs
    /// [`CheckpointStore::gc`] with this age bound: orphaned temp
    /// files, corrupt envelopes, and never-resumed checkpoints older
    /// than the bound are deleted (and counted per reason on the
    /// `/metrics` endpoint) instead of accumulating silently across
    /// restarts. `None` leaves every file on disk for the operator.
    pub gc_max_age: Option<std::time::Duration>,
}

impl CheckpointSetup {
    /// The engine-side capture policy this setup describes.
    pub(crate) fn policy(&self) -> CheckpointPolicy {
        CheckpointPolicy::every(self.every_sweeps)
    }
}

/// The store key for a serve job id. Stable across restarts: recovery
/// parses the id back out with [`parse_job_key`].
#[must_use]
pub fn job_key(id: u64) -> String {
    format!("job-{id}")
}

/// Inverse of [`job_key`].
fn parse_job_key(key: &str) -> Option<u64> {
    key.strip_prefix("job-")?.parse().ok()
}

/// What [`recover`] did, kept on the [`Server`](crate::Server) for
/// operators and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Serve ids re-admitted from disk, now queued or running again.
    pub resumed: Vec<u64>,
    /// `(store key, reason)` for every checkpoint that could not be
    /// resumed. The files are left on disk untouched.
    pub discarded: Vec<(String, String)>,
}

/// Scans `store` and re-admits every resumable job.
///
/// Each candidate passes the same admission gates as a fresh
/// submission — tenant registered, tenant quota charged — then seats
/// its checkpointed state via [`Engine::resume`] with a fresh writer
/// under the same key, so the resumed job keeps checkpointing where the
/// dead process left off.
pub(crate) fn recover(
    ckpt_store: &CheckpointStore,
    policy: CheckpointPolicy,
    engine: &Engine,
    tenants: &TenantRegistry,
    jobs: &JobStore,
    retry_after_s: u64,
) -> RecoveryReport {
    let mut report = RecoveryReport::default();
    let scan = match ckpt_store.scan() {
        Ok(scan) => scan,
        Err(err) => {
            report
                .discarded
                .push(("<scan>".to_string(), err.to_string()));
            return report;
        }
    };
    for (path, err) in &scan.rejected {
        report
            .discarded
            .push((path.display().to_string(), err.to_string()));
    }
    for entry in &scan.resumable {
        match resume_entry(
            ckpt_store,
            policy,
            engine,
            tenants,
            jobs,
            retry_after_s,
            &entry.key,
            &entry.checkpoint.meta,
            &entry.checkpoint.state,
        ) {
            Ok(id) => report.resumed.push(id),
            Err(reason) => report.discarded.push((entry.key.clone(), reason)),
        }
    }
    report.resumed.sort_unstable();
    report
}

#[allow(clippy::too_many_arguments)]
fn resume_entry(
    ckpt_store: &CheckpointStore,
    policy: CheckpointPolicy,
    engine: &Engine,
    tenants: &TenantRegistry,
    jobs: &JobStore,
    retry_after_s: u64,
    key: &str,
    meta: &str,
    state: &CheckpointState,
) -> Result<u64, String> {
    let id = parse_job_key(key).ok_or_else(|| format!("key `{key}` is not a serve job key"))?;
    let request =
        JobRequest::parse(meta).map_err(|err| format!("stored request no longer parses: {err}"))?;
    tenants
        .admit(&request.tenant, request.sites(), retry_after_s)
        .map_err(|err| format!("tenant gate refused the resume: {err}"))?;
    // The resumed job keeps checkpointing under its old key and meta.
    let writer = ckpt_store.writer(key, meta.to_string());
    match request.resume(engine, retry_after_s, state, Some((policy, writer))) {
        Ok((handle, diag)) => {
            jobs.insert_recovered(
                id,
                &request.tenant,
                request.workload.name(),
                request.width,
                request.height,
                handle,
                diag,
            );
            Ok(id)
        }
        Err(err) => {
            tenants.release(&request.tenant);
            Err(format!("engine refused the resume: {err}"))
        }
    }
}

//! A minimal blocking HTTP/1.1 client: one request per connection.
//!
//! This is the test-and-bench counterpart of the server — just enough
//! protocol to drive [`Server`](crate::Server) over loopback from the
//! lifecycle integration test and the `repro serve-bench` closed-loop
//! clients. One request per connection (`Connection: close`) keeps the
//! client trivially wedge-free: no keep-alive state, no pipelining, a
//! closed-loop driver is N of these in a loop.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of a header, by lowercase name.
    pub fn header_value(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as text (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends one request and reads the full response.
///
/// # Errors
///
/// Propagates socket errors; malformed responses surface as
/// `InvalidData`.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<ClientResponse> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)?;
    let mut write_half = stream.try_clone()?;
    let payload = body.unwrap_or("");
    write!(
        write_half,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{payload}",
        payload.len()
    )?;
    write_half.flush()?;
    read_response(BufReader::new(stream))
}

fn invalid(what: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string())
}

fn read_response<R: BufRead>(mut reader: R) -> std::io::Result<ClientResponse> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| invalid("malformed status line"))?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| invalid("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let body = match headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse::<usize>())
    {
        Some(Ok(len)) => {
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body)?;
            body
        }
        Some(Err(_)) => return Err(invalid("unparseable Content-Length")),
        None => {
            let mut body = Vec::new();
            reader.read_to_end(&mut body)?;
            body
        }
    };
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_framed_response() {
        let wire = "HTTP/1.1 429 Too Many Requests\r\nContent-Type: application/json\r\n\
                    Retry-After: 2\r\nContent-Length: 4\r\n\r\nbody";
        let response = read_response(Cursor::new(wire.as_bytes())).expect("well-formed");
        assert_eq!(response.status, 429);
        assert_eq!(response.header_value("retry-after"), Some("2"));
        assert_eq!(response.body_text(), "body");
    }

    #[test]
    fn malformed_status_lines_are_invalid_data() {
        let err = read_response(Cursor::new(b"garbage\r\n\r\n".as_slice())).expect_err("bad");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}

//! A minimal blocking HTTP/1.1 client, in two flavors.
//!
//! This is the test-and-bench counterpart of the server — just enough
//! protocol to drive [`Server`](crate::Server) over loopback from the
//! lifecycle integration test and the `repro serve-bench` closed-loop
//! clients:
//!
//! * [`http_request`] opens a fresh connection per request
//!   (`Connection: close`) — trivially wedge-free, no state, and the
//!   historical baseline `serve-bench` still measures;
//! * [`HttpClient`] keeps one connection alive across requests,
//!   reconnecting transparently when the server closes it (idle
//!   timeout, per-connection request cap) and counting how often it
//!   had to — `serve-bench` reports the two side by side, since the
//!   connect-per-request tax (socket setup, slow-start, TIME_WAIT
//!   churn) is pure protocol overhead a real client would not pay.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of a header, by lowercase name.
    pub fn header_value(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as text (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends one request and reads the full response.
///
/// # Errors
///
/// Propagates socket errors; malformed responses surface as
/// `InvalidData`.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<ClientResponse> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)?;
    let mut write_half = stream.try_clone()?;
    let payload = body.unwrap_or("");
    write!(
        write_half,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{payload}",
        payload.len()
    )?;
    write_half.flush()?;
    read_response(BufReader::new(stream))
}

/// A keep-alive HTTP/1.1 client: one connection reused across
/// requests.
///
/// The connection is opened lazily on the first request and dropped
/// whenever the server signals close (`Connection: close`, or a
/// response the framing cannot keep the stream alive through). A
/// request that fails on a *pooled* connection — the server closed it
/// between requests, which keep-alive makes routine — is retried once
/// on a fresh connection before the error surfaces.
/// [`connections_opened`](HttpClient::connections_opened) /
/// [`requests_sent`](HttpClient::requests_sent) expose the reuse ratio
/// the bench reports.
#[derive(Debug)]
pub struct HttpClient {
    addr: SocketAddr,
    read_timeout: Duration,
    conn: Option<Conn>,
    connects: u64,
    requests: u64,
}

#[derive(Debug)]
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// A client for `addr`; no connection is opened until the first
    /// request.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        HttpClient {
            addr,
            read_timeout: Duration::from_secs(30),
            conn: None,
            connects: 0,
            requests: 0,
        }
    }

    /// Connections opened so far (1 for a fully reused session; one
    /// per request degenerates to the `http_request` baseline).
    #[must_use]
    pub fn connections_opened(&self) -> u64 {
        self.connects
    }

    /// Requests issued through [`request`](HttpClient::request).
    #[must_use]
    pub fn requests_sent(&self) -> u64 {
        self.requests
    }

    /// Sends one request on the pooled connection and reads the full
    /// response, reconnecting (and retrying once) if the pooled
    /// connection had gone stale.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; malformed responses surface as
    /// `InvalidData`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        self.requests += 1;
        let pooled = self.conn.is_some();
        match self.try_request(method, path, body) {
            // A pooled connection can die legitimately between requests
            // (server request cap, idle timeout); one fresh retry
            // distinguishes that from a down server.
            Err(_) if pooled => {
                self.conn = None;
                self.try_request(method, path, body)
            }
            outcome => outcome,
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(self.read_timeout))?;
            stream.set_nodelay(true)?;
            let reader = BufReader::new(stream.try_clone()?);
            self.conn = Some(Conn {
                reader,
                writer: stream,
            });
            self.connects += 1;
        }
        let addr = self.addr;
        let Some(conn) = self.conn.as_mut() else {
            // Unreachable: the block above just ensured a connection.
            return Err(std::io::Error::other("connection pool empty after connect"));
        };
        let payload = body.unwrap_or("");
        let outcome = write!(
            conn.writer,
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n{payload}",
            payload.len()
        )
        .and_then(|()| conn.writer.flush())
        .and_then(|()| read_response(&mut conn.reader));
        match outcome {
            Ok(response) => {
                // Drop the connection when the server said close, or
                // when the response had no Content-Length (the stream
                // position is only known through end-of-stream).
                let server_closed = response
                    .header_value("connection")
                    .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                if server_closed || response.header_value("content-length").is_none() {
                    self.conn = None;
                }
                Ok(response)
            }
            Err(err) => {
                self.conn = None;
                Err(err)
            }
        }
    }
}

fn invalid(what: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string())
}

fn read_response<R: BufRead>(mut reader: R) -> std::io::Result<ClientResponse> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| invalid("malformed status line"))?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| invalid("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let body = match headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse::<usize>())
    {
        Some(Ok(len)) => {
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body)?;
            body
        }
        Some(Err(_)) => return Err(invalid("unparseable Content-Length")),
        None => {
            let mut body = Vec::new();
            reader.read_to_end(&mut body)?;
            body
        }
    };
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_framed_response() {
        let wire = "HTTP/1.1 429 Too Many Requests\r\nContent-Type: application/json\r\n\
                    Retry-After: 2\r\nContent-Length: 4\r\n\r\nbody";
        let response = read_response(Cursor::new(wire.as_bytes())).expect("well-formed");
        assert_eq!(response.status, 429);
        assert_eq!(response.header_value("retry-after"), Some("2"));
        assert_eq!(response.body_text(), "body");
    }

    #[test]
    fn malformed_status_lines_are_invalid_data() {
        let err = read_response(Cursor::new(b"garbage\r\n\r\n".as_slice())).expect_err("bad");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}

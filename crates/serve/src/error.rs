//! The serve layer's unified error: every way an HTTP request can fail,
//! each with a fixed status code and a JSON body.
//!
//! The quota-vs-backpressure split the front-end is built around lives
//! here as two distinct variants with two distinct status codes:
//!
//! * [`ServeError::Quota`] — **429 Too Many Requests**: *this tenant*
//!   is over one of its admission limits. Other tenants are unaffected;
//!   the client should back off for `Retry-After` seconds and resubmit.
//! * [`ServeError::Backpressure`] — **503 Service Unavailable**: the
//!   *engine* cannot take more work right now (bounded submission queue
//!   at capacity, or the batch-priority reserve is exhausted). Every
//!   tenant sees this equally; `Retry-After` applies here too.
//!
//! Both are ordinary values routed out of the existing
//! [`TrySubmitError`](mogs_engine::TrySubmitError) path — an admission
//! failure is never a panic. Handlers return
//! `Result<Response, ServeError>` (the `mogs-audit` lint enforces this
//! shape for every `handle_*` function) and the router renders the
//! error into its response exactly once.

use mogs_engine::EngineError;

use crate::http::Response;

/// Everything a request handler can fail with.
#[derive(Debug)]
pub enum ServeError {
    /// The request could not be parsed: bad request line, missing or
    /// malformed headers, or a body that is not valid JSON for the
    /// endpoint. 400.
    BadRequest {
        /// What was wrong with the request.
        reason: String,
    },
    /// The declared `Content-Length` exceeds the server's body cap. The
    /// body is not read, so the connection closes after the response to
    /// keep framing sound. 413.
    PayloadTooLarge {
        /// The server's cap, bytes.
        limit: usize,
        /// The declared length, bytes.
        declared: usize,
    },
    /// No route, or no such job. 404.
    NotFound {
        /// The path or job that does not exist.
        what: String,
    },
    /// The route exists but not for this method. 405.
    MethodNotAllowed {
        /// The offending method.
        method: String,
    },
    /// The job spec names a tenant the registry does not know. 403.
    UnknownTenant {
        /// The unknown tenant id.
        tenant: String,
    },
    /// A per-tenant admission quota rejected the job (too many in-flight
    /// jobs, or a job bigger than the tenant's per-job site cap).
    /// Distinct from engine backpressure: only this tenant must back
    /// off. 429 with `Retry-After`.
    Quota {
        /// The tenant over quota.
        tenant: String,
        /// Which limit fired and the numbers behind it.
        reason: String,
        /// Seconds the client should wait before retrying.
        retry_after_s: u64,
    },
    /// The engine's bounded queue (or the batch-priority reserve) cannot
    /// take the job right now. Affects all tenants; retry after the
    /// hinted delay. 503 with `Retry-After`.
    Backpressure {
        /// Seconds the client should wait before retrying.
        retry_after_s: u64,
    },
    /// The request is valid but conflicts with the job's current state
    /// (e.g. fetching the result of a job that is still running, or
    /// cancelling one that already finished). 409.
    Conflict {
        /// Why the request cannot apply.
        reason: String,
    },
    /// The engine rejected the job spec at admission (schedule audit,
    /// label-space or labeling validation, invalid field). The request
    /// itself was at fault, so this is a 400, with the engine's stable
    /// error variant name in the body.
    Rejected {
        /// [`EngineError::variant`] of the admission failure.
        variant: &'static str,
        /// The engine's rendered error.
        message: String,
    },
    /// The job ran and failed inside the engine (worker panic past the
    /// retry budget, watchdog timeout, backend collapse). 500 with the
    /// engine's stable variant name.
    JobFailed {
        /// [`EngineError::variant`] of the terminal failure.
        variant: String,
        /// The engine's rendered error.
        message: String,
    },
    /// The server is shutting down. 503 without a retry hint.
    ShuttingDown,
}

impl ServeError {
    /// Maps an engine admission error onto the serve taxonomy:
    /// `ShutDown` becomes [`ServeError::ShuttingDown`], everything else
    /// is a client-side [`ServeError::Rejected`].
    pub fn from_admission(err: EngineError) -> Self {
        match err {
            EngineError::ShutDown => ServeError::ShuttingDown,
            other => ServeError::Rejected {
                variant: other.variant(),
                message: other.to_string(),
            },
        }
    }

    /// The HTTP status code this error renders as.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::BadRequest { .. } | ServeError::Rejected { .. } => 400,
            ServeError::UnknownTenant { .. } => 403,
            ServeError::NotFound { .. } => 404,
            ServeError::MethodNotAllowed { .. } => 405,
            ServeError::Conflict { .. } => 409,
            ServeError::PayloadTooLarge { .. } => 413,
            ServeError::Quota { .. } => 429,
            ServeError::JobFailed { .. } => 500,
            ServeError::Backpressure { .. } | ServeError::ShuttingDown => 503,
        }
    }

    /// The `Retry-After` hint, for the variants that carry one.
    pub fn retry_after_s(&self) -> Option<u64> {
        match self {
            ServeError::Quota { retry_after_s, .. }
            | ServeError::Backpressure { retry_after_s } => Some(*retry_after_s),
            _ => None,
        }
    }

    /// Stable machine-readable error kind for the JSON body.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::BadRequest { .. } => "bad-request",
            ServeError::PayloadTooLarge { .. } => "payload-too-large",
            ServeError::NotFound { .. } => "not-found",
            ServeError::MethodNotAllowed { .. } => "method-not-allowed",
            ServeError::UnknownTenant { .. } => "unknown-tenant",
            ServeError::Quota { .. } => "quota",
            ServeError::Backpressure { .. } => "backpressure",
            ServeError::Conflict { .. } => "conflict",
            ServeError::Rejected { .. } => "rejected",
            ServeError::JobFailed { .. } => "job-failed",
            ServeError::ShuttingDown => "shutting-down",
        }
    }

    /// Renders the error as its HTTP response: status, optional
    /// `Retry-After`, and a JSON body
    /// `{"error": "<kind>", "message": "<detail>"}`.
    pub fn into_response(self) -> Response {
        self.into_response_with_jitter(0)
    }

    /// [`into_response`](Self::into_response) with bounded random
    /// jitter added to the `Retry-After` hint: the header carries
    /// `base + U(0..=jitter_cap_s)` seconds, so synchronized clients
    /// whose quota windows opened together don't thundering-herd the
    /// listener on the exact same tick. A cap of zero reproduces
    /// `into_response` exactly.
    pub fn into_response_with_jitter(self, jitter_cap_s: u64) -> Response {
        let body = format!(
            "{{\"error\":{},\"message\":{}}}",
            crate::http::json_string(self.kind()),
            crate::http::json_string(&self.to_string()),
        );
        let mut response = Response::json(self.status(), body);
        if let Some(base) = self.retry_after_s() {
            let secs = base.saturating_add(retry_jitter(jitter_cap_s));
            response = response.header("Retry-After", &secs.to_string());
        }
        // An oversized body was never read off the socket; the stream is
        // mid-payload and the connection must not be reused.
        if matches!(self, ServeError::PayloadTooLarge { .. }) {
            response = response.close();
        }
        response
    }
}

/// Draws a uniform jitter in `0..=cap_s` seconds from the standard
/// library's per-instance hasher entropy — no RNG dependency, no shared
/// state to contend on, and unpredictable enough that synchronized
/// clients decorrelate. Zero cap means zero jitter, deterministically.
pub fn retry_jitter(cap_s: u64) -> u64 {
    use std::hash::{BuildHasher, Hasher};
    if cap_s == 0 {
        return 0;
    }
    let draw = std::collections::hash_map::RandomState::new()
        .build_hasher()
        .finish();
    draw % (cap_s + 1)
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadRequest { reason } => write!(f, "bad request: {reason}"),
            ServeError::PayloadTooLarge { limit, declared } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte cap")
            }
            ServeError::NotFound { what } => write!(f, "not found: {what}"),
            ServeError::MethodNotAllowed { method } => {
                write!(f, "method {method} not allowed here")
            }
            ServeError::UnknownTenant { tenant } => {
                write!(f, "tenant `{tenant}` is not registered")
            }
            ServeError::Quota { tenant, reason, .. } => {
                write!(f, "tenant `{tenant}` over quota: {reason}")
            }
            ServeError::Backpressure { retry_after_s } => {
                write!(f, "engine at capacity; retry after {retry_after_s}s")
            }
            ServeError::Conflict { reason } => write!(f, "conflict: {reason}"),
            ServeError::Rejected { message, .. } => write!(f, "admission rejected: {message}"),
            ServeError::JobFailed { message, .. } => write!(f, "job failed: {message}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_and_backpressure_are_distinct_statuses() {
        let quota = ServeError::Quota {
            tenant: "acme".to_string(),
            reason: "3 in-flight jobs at the cap of 3".to_string(),
            retry_after_s: 2,
        };
        let pressure = ServeError::Backpressure { retry_after_s: 1 };
        assert_eq!(quota.status(), 429);
        assert_eq!(pressure.status(), 503);
        assert_eq!(quota.retry_after_s(), Some(2));
        assert_eq!(pressure.retry_after_s(), Some(1));
    }

    #[test]
    fn admission_errors_map_to_client_side_rejections() {
        let err = ServeError::from_admission(EngineError::InvalidSpec {
            field: "iterations",
            reason: "must be at least 1".to_string(),
        });
        assert_eq!(err.status(), 400);
        let ServeError::Rejected { variant, .. } = err else {
            panic!("wrong variant");
        };
        assert_eq!(variant, "invalid-spec");
        assert_eq!(
            ServeError::from_admission(EngineError::ShutDown).status(),
            503
        );
    }

    #[test]
    fn responses_carry_retry_after_and_json_bodies() {
        let response = ServeError::Quota {
            tenant: "acme".to_string(),
            reason: "cap".to_string(),
            retry_after_s: 7,
        }
        .into_response();
        assert_eq!(response.status, 429);
        assert_eq!(response.header_value("Retry-After"), Some("7"));
        let body = String::from_utf8(response.body.clone()).expect("utf8 body");
        assert!(body.contains("\"error\":\"quota\""), "body: {body}");
    }

    #[test]
    fn jittered_retry_after_stays_within_base_plus_cap() {
        const BASE: u64 = 3;
        const CAP: u64 = 5;
        let mut observed = std::collections::BTreeSet::new();
        for _ in 0..64 {
            let response = ServeError::Backpressure {
                retry_after_s: BASE,
            }
            .into_response_with_jitter(CAP);
            assert_eq!(response.status, 503);
            let header: u64 = response
                .header_value("Retry-After")
                .expect("503 must carry Retry-After")
                .parse()
                .expect("integer seconds");
            assert!(
                (BASE..=BASE + CAP).contains(&header),
                "Retry-After {header} outside [{BASE}, {}]",
                BASE + CAP
            );
            observed.insert(header);
        }
        // 64 draws over 6 values: all-identical means the jitter is not
        // actually random (probability ~6e-49 under a fair draw).
        assert!(observed.len() > 1, "jitter never varied: {observed:?}");
        // A zero cap must reproduce the unjittered header bit for bit.
        let flat = ServeError::Quota {
            tenant: "acme".to_string(),
            reason: "cap".to_string(),
            retry_after_s: BASE,
        }
        .into_response_with_jitter(0);
        assert_eq!(flat.header_value("Retry-After"), Some("3"));
    }

    #[test]
    fn oversized_payload_closes_the_connection() {
        let response = ServeError::PayloadTooLarge {
            limit: 10,
            declared: 11,
        }
        .into_response();
        assert_eq!(response.status, 413);
        assert!(response.close_connection, "unread body must close framing");
    }
}

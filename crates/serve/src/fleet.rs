//! The optional fleet backend: multi-process jobs behind the serving
//! front-end.
//!
//! When a [`ServeConfig`](crate::ServeConfig) carries a [`FleetSetup`],
//! two extra routes come up:
//!
//! | Method & path               | Purpose                              |
//! |-----------------------------|--------------------------------------|
//! | `POST /v1/fleet/jobs`       | Submit a [`FleetSpec`] JSON body     |
//! | `GET /v1/fleet/jobs/{id}`   | Poll state; terminal replies carry the labels |
//!
//! A fleet job spans worker *processes* (here: the in-process launcher,
//! so the serving host needs no helper binary on disk), so the backend
//! is deliberately conservative: **one fleet job in flight at a time**,
//! a site cap on the spec, and the coordinator running on its own
//! thread — a fleet submission never parks a connection worker, and a
//! busy backend answers 503 with `Retry-After` like any other
//! backpressure. Results are bit-identical to the engine path for the
//! same spec; that is the fleet crate's contract, not this module's
//! problem.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::JoinHandle;

use mogs_fleet::{run_fleet, FleetConfig, FleetError, FleetOutput, FleetSpec, Launcher};
use parking_lot::Mutex;

use crate::error::ServeError;
use crate::http::Response;

/// Fleet backend configuration carried by
/// [`ServeConfig`](crate::ServeConfig).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSetup {
    /// Worker threads (in-process launcher) per fleet job.
    pub workers: usize,
    /// Largest plane a fleet submission may request, sites.
    pub max_sites: usize,
}

impl Default for FleetSetup {
    fn default() -> Self {
        FleetSetup {
            workers: 2,
            max_sites: 1 << 16,
        }
    }
}

enum FleetJob {
    Running(JoinHandle<Result<FleetOutput, FleetError>>),
    Done(Box<FleetOutput>),
    Failed(String),
}

/// The single-flight fleet job table behind the two fleet routes.
pub struct FleetRunner {
    setup: FleetSetup,
    next_id: AtomicU64,
    jobs: Mutex<HashMap<u64, FleetJob>>,
}

impl FleetRunner {
    /// A runner with no jobs yet.
    #[must_use]
    pub fn new(setup: FleetSetup) -> Self {
        FleetRunner {
            setup,
            next_id: AtomicU64::new(0),
            jobs: Mutex::new(HashMap::new()),
        }
    }

    /// `POST /v1/fleet/jobs`: parse the [`FleetSpec`] body, enforce the
    /// site cap and the single-flight slot, and launch the coordinator
    /// on its own thread.
    pub fn submit(&self, body: &str, retry_after_s: u64) -> Result<Response, ServeError> {
        let spec = FleetSpec::parse(body).map_err(|err| ServeError::BadRequest {
            reason: format!("fleet spec: {err}"),
        })?;
        let sites = spec.workload.sites();
        if sites > self.setup.max_sites {
            return Err(ServeError::BadRequest {
                reason: format!(
                    "fleet job of {sites} sites exceeds the backend cap of {} sites",
                    self.setup.max_sites
                ),
            });
        }
        let mut jobs = self.jobs.lock();
        let busy = jobs
            .values()
            .any(|job| matches!(job, FleetJob::Running(handle) if !handle.is_finished()));
        if busy {
            return Err(ServeError::Backpressure { retry_after_s });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let workers = self.setup.workers;
        let handle = std::thread::Builder::new()
            .name(format!("serve-fleet-{id}"))
            .spawn(move || {
                let mut config = FleetConfig::new(workers);
                config.launcher = Launcher::InProcess;
                run_fleet(&spec, &config)
            })
            .map_err(|err| ServeError::JobFailed {
                variant: "fleet-spawn".to_string(),
                message: format!("spawning the coordinator thread: {err}"),
            })?;
        jobs.insert(id, FleetJob::Running(handle));
        Ok(Response::json(
            202,
            format!("{{\"id\":{id},\"state\":\"running\",\"workers\":{workers}}}"),
        ))
    }

    /// `GET /v1/fleet/jobs/{id}`: settle a finished coordinator thread
    /// and report the job's state (terminal replies carry the labels).
    pub fn status(&self, id: u64) -> Result<Response, ServeError> {
        let mut jobs = self.jobs.lock();
        let job = jobs.get_mut(&id).ok_or_else(|| ServeError::NotFound {
            what: format!("fleet job {id}"),
        })?;
        // Settle: a finished Running entry becomes Done or Failed.
        let current = std::mem::replace(job, FleetJob::Failed("settling".to_string()));
        *job = match current {
            FleetJob::Running(handle) if handle.is_finished() => match handle.join() {
                Ok(Ok(output)) => FleetJob::Done(Box::new(output)),
                Ok(Err(err)) => FleetJob::Failed(err.to_string()),
                Err(_) => FleetJob::Failed("fleet coordinator thread panicked".to_string()),
            },
            other => other,
        };
        match &*job {
            FleetJob::Running(_) => Ok(Response::json(
                200,
                format!("{{\"id\":{id},\"state\":\"running\"}}"),
            )),
            FleetJob::Done(output) => Ok(Response::json(200, render_output(id, output))),
            FleetJob::Failed(message) => Err(ServeError::JobFailed {
                variant: "fleet".to_string(),
                message: message.clone(),
            }),
        }
    }
}

fn render_output(id: u64, output: &FleetOutput) -> String {
    let mut body = format!(
        "{{\"id\":{id},\"state\":{},\"iterations_run\":{},\"finished\":{},\
         \"migrations\":{},\"workers_spawned\":{},",
        if output.degraded.is_some() {
            "\"degraded\""
        } else {
            "\"done\""
        },
        output.iterations_run,
        output.finished,
        output.migrations,
        output.workers_spawned,
    );
    match output.degraded {
        Some(d) => body.push_str(&format!(
            "\"degraded\":{{\"failed_over_at\":{},\"units_lost\":{}}},",
            d.failed_over_at, d.units_lost
        )),
        None => body.push_str("\"degraded\":null,"),
    }
    body.push_str(&format!(
        "\"labels\":{}}}",
        serde::json::to_string(&output.labels)
    ));
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use mogs_fleet::{run_in_process, BackendKind, Workload};
    use std::time::Duration;

    fn spec() -> FleetSpec {
        FleetSpec {
            workload: Workload::Demo {
                width: 6,
                height: 4,
                labels: 3,
            },
            backend: BackendKind::Softmax,
            iterations: 4,
            threads: 2,
            seed: 0x5E11_F1EE,
            burn_in: 1,
        }
    }

    fn body(response: &Response) -> String {
        String::from_utf8(response.body.clone()).expect("utf8 body")
    }

    fn poll_done(runner: &FleetRunner, id: u64) -> String {
        for _ in 0..1000 {
            match runner.status(id) {
                Ok(response) => {
                    let text = body(&response);
                    if !text.contains("\"running\"") {
                        return text;
                    }
                }
                Err(err) => panic!("fleet job failed: {err}"),
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        panic!("fleet job never finished");
    }

    #[test]
    fn submit_poll_and_labels_match_the_engine() {
        let runner = FleetRunner::new(FleetSetup::default());
        let accepted = runner.submit(&spec().encode(), 1).expect("submitted");
        assert_eq!(accepted.status, 202);
        assert!(body(&accepted).contains("\"id\":1"));
        let done = poll_done(&runner, 1);
        assert!(done.contains("\"state\":\"done\""), "{done}");
        assert!(done.contains("\"migrations\":0"), "{done}");
        let reference = run_in_process(&spec()).expect("engine runs");
        let labels = format!(
            "\"labels\":{}",
            serde::json::to_string(
                &reference
                    .labels
                    .iter()
                    .map(|l| l.value())
                    .collect::<Vec<u8>>()
            )
        );
        assert!(done.contains(&labels), "served labels diverged: {done}");
    }

    #[test]
    fn backend_is_single_flight() {
        let runner = FleetRunner::new(FleetSetup::default());
        let mut slow = spec();
        slow.iterations = 200;
        runner.submit(&slow.encode(), 7).expect("first job fits");
        let refused = runner.submit(&spec().encode(), 7).expect_err("slot busy");
        assert!(matches!(
            refused,
            ServeError::Backpressure { retry_after_s: 7 }
        ));
        poll_done(&runner, 1);
        // The slot frees once the first job settles.
        runner.submit(&spec().encode(), 7).expect("slot free again");
        poll_done(&runner, 2);
    }

    #[test]
    fn bad_specs_and_oversize_jobs_are_400_and_unknown_ids_404() {
        let runner = FleetRunner::new(FleetSetup {
            workers: 2,
            max_sites: 10,
        });
        assert!(matches!(
            runner.submit("{not json", 1),
            Err(ServeError::BadRequest { .. })
        ));
        assert!(matches!(
            runner.submit(&spec().encode(), 1),
            Err(ServeError::BadRequest { .. })
        ));
        assert!(matches!(
            runner.status(99),
            Err(ServeError::NotFound { .. })
        ));
    }
}

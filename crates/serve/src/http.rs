//! A minimal, std-only HTTP/1.1 message layer.
//!
//! The vendored registry has no hyper/tokio and the engine API is
//! blocking, so the server speaks HTTP/1.1 by hand over `std::net`
//! streams: [`read_request`] parses one request from any `BufRead`
//! (request line, headers, `Content-Length`-framed body) and
//! [`Response::write_to`] emits one response to any `Write`. Keeping
//! both ends generic over the stream traits means every parser path is
//! unit-testable on in-memory buffers, no sockets required.
//!
//! Limits are enforced *while reading*, not after: the request line and
//! header block are capped by [`Limits::max_header_bytes`] and a body is
//! only read once its declared `Content-Length` clears
//! [`Limits::max_body_bytes`] — an oversized upload is rejected without
//! pulling it off the socket (the caller then closes the connection, see
//! [`ServeError::into_response`]).
//!
//! Chunked transfer encoding is deliberately not supported: every client
//! this server exists for (the bench driver, `curl` with a JSON body)
//! sends `Content-Length`, and rejecting the rest with a typed 400 keeps
//! the framing logic small enough to audit.

use std::io::{BufRead, Read, Write};

use crate::error::ServeError;

/// Read caps applied while parsing one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Cap on the request line plus all header lines, bytes.
    pub max_header_bytes: usize,
    /// Cap on the declared `Content-Length`, bytes.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_header_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// The path component of the request target (query string stripped).
    pub path: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The `Content-Length`-framed body (empty when none was declared).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header_value(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to drop the connection after this
    /// exchange (`Connection: close`; HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header_value("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] when the body is not valid UTF-8.
    pub fn body_utf8(&self) -> Result<&str, ServeError> {
        std::str::from_utf8(&self.body).map_err(|_| ServeError::BadRequest {
            reason: "request body is not valid UTF-8".to_string(),
        })
    }
}

/// Reads one request off `stream`.
///
/// Returns `Ok(None)` on a clean end-of-stream before any request byte
/// (the client closed an idle keep-alive connection — not an error).
///
/// # Errors
///
/// [`ServeError::BadRequest`] for malformed framing and
/// [`ServeError::PayloadTooLarge`] for a `Content-Length` over the cap
/// (in which case the body is *not* consumed and the connection must be
/// closed after responding).
pub fn read_request<R: BufRead>(
    stream: &mut R,
    limits: Limits,
) -> Result<Option<Request>, ServeError> {
    let mut budget = limits.max_header_bytes;
    let Some(request_line) = read_crlf_line(stream, &mut budget)? else {
        return Ok(None);
    };
    if request_line.is_empty() {
        return Err(ServeError::BadRequest {
            reason: "empty request line".to_string(),
        });
    }
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ServeError::BadRequest {
            reason: format!("malformed request line `{request_line}`"),
        });
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(ServeError::BadRequest {
            reason: format!("unsupported request line `{request_line}`"),
        });
    }
    let mut headers = Vec::new();
    loop {
        let Some(line) = read_crlf_line(stream, &mut budget)? else {
            return Err(ServeError::BadRequest {
                reason: "connection closed inside the header block".to_string(),
            });
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ServeError::BadRequest {
                reason: format!("header line `{line}` has no colon"),
            });
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let request = Request {
        method: method.to_string(),
        path: target.split('?').next().unwrap_or(target).to_string(),
        headers,
        body: Vec::new(),
    };
    if request
        .header_value("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(ServeError::BadRequest {
            reason: "chunked transfer encoding is not supported; send Content-Length".to_string(),
        });
    }
    let declared = match request.header_value("content-length") {
        None => 0,
        Some(raw) => raw.parse::<usize>().map_err(|_| ServeError::BadRequest {
            reason: format!("unparseable Content-Length `{raw}`"),
        })?,
    };
    if declared > limits.max_body_bytes {
        // Refuse before reading: the caller responds 413 and closes.
        return Err(ServeError::PayloadTooLarge {
            limit: limits.max_body_bytes,
            declared,
        });
    }
    let mut request = request;
    if declared > 0 {
        let mut body = vec![0u8; declared];
        stream
            .read_exact(&mut body)
            .map_err(|e| ServeError::BadRequest {
                reason: format!("body shorter than its Content-Length: {e}"),
            })?;
        request.body = body;
    }
    Ok(Some(request))
}

/// Reads one CRLF-terminated line, charging its bytes against `budget`.
/// Returns `Ok(None)` on end-of-stream at a line boundary.
fn read_crlf_line<R: BufRead>(
    stream: &mut R,
    budget: &mut usize,
) -> Result<Option<String>, ServeError> {
    let mut raw = Vec::new();
    let mut take = stream.take(*budget as u64 + 1);
    let n = match take.read_until(b'\n', &mut raw) {
        Ok(n) => n,
        // A read timeout (idle keep-alive connection) is a clean close,
        // not a protocol error — nothing useful can be sent back.
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            return Ok(None);
        }
        Err(e) => {
            return Err(ServeError::BadRequest {
                reason: format!("read failed: {e}"),
            });
        }
    };
    if n == 0 {
        return Ok(None);
    }
    if n > *budget {
        return Err(ServeError::BadRequest {
            reason: "request head exceeds the header-size cap".to_string(),
        });
    }
    *budget -= n;
    if raw.last() != Some(&b'\n') {
        return Err(ServeError::BadRequest {
            reason: "connection closed mid-line".to_string(),
        });
    }
    raw.pop();
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw)
        .map(Some)
        .map_err(|_| ServeError::BadRequest {
            reason: "request head is not valid UTF-8".to_string(),
        })
}

/// One response, built by handlers and written by the connection loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers (`Content-Type`, `Content-Length`, and
    /// `Connection` are emitted automatically).
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
    /// Close the connection after writing (set for framing-unsafe
    /// errors and honoured for client `Connection: close`).
    pub close_connection: bool,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            headers: vec![("Content-Type".to_string(), "application/json".to_string())],
            body: body.into_bytes(),
            close_connection: false,
        }
    }

    /// A plain-text response (used by `/metrics`, which speaks the
    /// Prometheus text exposition format).
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            headers: vec![(
                "Content-Type".to_string(),
                "text/plain; version=0.0.4; charset=utf-8".to_string(),
            )],
            body: body.into_bytes(),
            close_connection: false,
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Marks the connection for closing after this response.
    #[must_use]
    pub fn close(mut self) -> Self {
        self.close_connection = true;
        self
    }

    /// First value of a header, by exact name.
    pub fn header_value(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Writes the response in wire format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the stream.
    pub fn write_to<W: Write>(&self, stream: &mut W) -> std::io::Result<()> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\n",
            self.status,
            status_text(self.status)
        )?;
        for (name, value) in &self.headers {
            write!(stream, "{name}: {value}\r\n")?;
        }
        write!(stream, "Content-Length: {}\r\n", self.body.len())?;
        if self.close_connection {
            stream.write_all(b"Connection: close\r\n")?;
        }
        stream.write_all(b"\r\n")?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Reason phrase for the status codes this server emits.
fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// JSON-escapes a string, quotes included (the serve layer builds its
/// small response bodies by hand; the vendored serde derive only covers
/// fixed-shape structs).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    use serde::Serialize;
    s.serialize_json(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Option<Request>, ServeError> {
        read_request(&mut Cursor::new(raw.as_bytes()), Limits::default())
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse("POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"\"}")
            .expect("well-formed")
            .expect("a request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.body, b"{\"\"}");
        assert_eq!(req.header_value("host"), Some("x"));
        assert!(!req.wants_close());
    }

    #[test]
    fn strips_query_strings_and_honours_connection_close() {
        let req = parse("GET /v1/jobs/3?verbose=1 HTTP/1.1\r\nConnection: close\r\n\r\n")
            .expect("well-formed")
            .expect("a request");
        assert_eq!(req.path, "/v1/jobs/3");
        assert!(req.wants_close());
    }

    #[test]
    fn clean_eof_is_none_not_an_error() {
        assert_eq!(parse("").expect("clean eof"), None);
    }

    #[test]
    fn malformed_request_lines_are_bad_requests() {
        for raw in [
            "GET\r\n\r\n",
            "GET /x HTTP/2\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "\r\n\r\n",
        ] {
            let err = parse(raw).expect_err("malformed");
            assert_eq!(err.status(), 400, "raw: {raw:?}");
        }
    }

    #[test]
    fn headers_without_colons_are_rejected() {
        let err = parse("GET /x HTTP/1.1\r\nbroken header\r\n\r\n").expect_err("malformed");
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn oversized_declared_body_is_413_without_reading_it() {
        let raw = "POST /v1/jobs HTTP/1.1\r\nContent-Length: 99\r\n\r\n";
        let mut cursor = Cursor::new(raw.as_bytes());
        let err = read_request(
            &mut cursor,
            Limits {
                max_header_bytes: 1024,
                max_body_bytes: 10,
            },
        )
        .expect_err("too large");
        let ServeError::PayloadTooLarge { limit, declared } = err else {
            panic!("wrong variant: {err:?}");
        };
        assert_eq!((limit, declared), (10, 99));
        // Nothing past the blank line was consumed.
        assert_eq!(cursor.position() as usize, raw.len());
    }

    #[test]
    fn oversized_header_block_is_rejected() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(64));
        let err = read_request(
            &mut Cursor::new(raw.as_bytes()),
            Limits {
                max_header_bytes: 32,
                max_body_bytes: 10,
            },
        )
        .expect_err("head too big");
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn truncated_body_is_a_bad_request() {
        let err = parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").expect_err("short");
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn chunked_encoding_is_refused() {
        let err = parse("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
            .expect_err("unsupported");
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn responses_round_trip_in_wire_format() {
        let mut wire = Vec::new();
        Response::json(201, "{\"id\":1}".to_string())
            .header("Retry-After", "3")
            .write_to(&mut wire)
            .expect("write");
        let text = String::from_utf8(wire).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 201 Created\r\n"), "{text}");
        assert!(text.contains("Content-Length: 8\r\n"), "{text}");
        assert!(text.contains("Retry-After: 3\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"id\":1}"), "{text}");
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }
}

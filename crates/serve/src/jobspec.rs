//! The `POST /v1/jobs` body: a hand-parsed JSON job request and its
//! dispatch into a validated engine submission.
//!
//! Hand-parsed because the vendored serde derive requires every field
//! to be present, while a job request is mostly defaults — a client
//! should be able to post `{"tenant":"acme","workload":"segmentation"}`
//! and get the reference 16×16 five-class scene. The parser walks the
//! object with [`serde::de::Parser`], applies defaults for absent keys,
//! and rejects unknown keys (a typo'd `"iterations"` silently running
//! the default budget would be a debugging trap).
//!
//! Dispatch monomorphizes per workload: each arm builds the same
//! [`InferenceJob`](mogs_engine::InferenceJob) the workload's own
//! `engine_job` constructor produces, revalidates it through
//! [`JobSpec::builder`](mogs_engine::JobSpec), and admits it via
//! [`Engine::try_submit`] — so a served job is *bit-identical* to the
//! direct engine path for the same spec, the property the lifecycle
//! test and `repro serve-bench` both pin. This construction (scene
//! synthesis + MRF build per request) is also the serving path's
//! dominant per-job cost; see the bottleneck note `serve-bench` prints.

use std::sync::Arc;

use mogs_diag::{DiagConfig, MultiChainDiag};
use mogs_engine::{
    CheckpointPolicy, CheckpointWriter, Engine, InferenceJob, JobHandle, JobSpec,
    JobState as CheckpointState, TrySubmitError,
};
use mogs_gibbs::{LabelSampler, SoftmaxGibbs, SweepKernel};
use mogs_mrf::energy::SingletonPotential;
use mogs_mrf::{Grid2D, Label, LabelSpace, MarkovRandomField, SmoothnessPrior};
use mogs_vision::motion::{MotionConfig, MotionEstimation};
use mogs_vision::segmentation::{Segmentation, SegmentationConfig};
use mogs_vision::stereo::{StereoConfig, StereoMatching};
use mogs_vision::synthetic;
use serde::de::Parser;

use crate::error::ServeError;

/// The workload a job request names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Intensity segmentation over a synthetic region scene.
    Segmentation,
    /// Dense motion estimation over a synthetic translated pair.
    Motion,
    /// Stereo disparity over a synthetic rectified pair.
    Stereo,
    /// Caller-supplied per-site unary energy tables on a Potts prior.
    Raw,
}

impl Workload {
    /// Stable lowercase name (the JSON `workload` value).
    pub fn name(self) -> &'static str {
        match self {
            Workload::Segmentation => "segmentation",
            Workload::Motion => "motion",
            Workload::Stereo => "stereo",
            Workload::Raw => "raw",
        }
    }
}

/// One parsed and sanity-checked job request.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// The submitting tenant (required).
    pub tenant: String,
    /// The workload to run (required).
    pub workload: Workload,
    /// Field width in sites.
    pub width: usize,
    /// Field height in sites.
    pub height: usize,
    /// Label count: segmentation classes, or raw table width.
    pub labels: u16,
    /// Sweep budget.
    pub iterations: usize,
    /// Base RNG seed (also seeds the synthetic scene).
    pub seed: u64,
    /// Deterministic chunk count (the reference path's `threads`);
    /// clamped to at least 2 so results match the reference chain.
    pub threads: usize,
    /// Synthetic scene noise standard deviation.
    pub noise_sigma: f64,
    /// Smoothness-prior weight override; `None` keeps the workload's
    /// default.
    pub smoothness: Option<f64>,
    /// Motion: ground-truth x displacement.
    pub dx: i32,
    /// Motion: ground-truth y displacement.
    pub dy: i32,
    /// Stereo: foreground disparity in pixels.
    pub disparity: u8,
    /// Attach streaming diagnostics and return marginal/entropy maps
    /// with the result.
    pub diag: bool,
    /// Raw workload: per-site unary energies, `sites` rows of `labels`
    /// columns.
    pub unaries: Option<Vec<Vec<f64>>>,
}

impl JobRequest {
    /// Field size in sites, known before any model is built — this is
    /// what the tenant's per-job quota is checked against.
    pub fn sites(&self) -> usize {
        self.width * self.height
    }

    /// Parses and validates a JSON job request.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] for malformed JSON, unknown keys or
    /// workloads, missing required fields, and out-of-range values.
    pub fn parse(json: &str) -> Result<JobRequest, ServeError> {
        let mut p = Parser::new(json);
        let mut tenant: Option<String> = None;
        let mut workload: Option<Workload> = None;
        let mut req = JobRequest {
            tenant: String::new(),
            workload: Workload::Segmentation,
            width: 16,
            height: 16,
            labels: 5,
            iterations: 20,
            seed: 0,
            threads: 2,
            noise_sigma: 12.0,
            smoothness: None,
            dx: 1,
            dy: 0,
            disparity: 2,
            diag: false,
            unaries: None,
        };
        p.expect_char('{').map_err(bad)?;
        if !p.consume_char('}') {
            loop {
                let key = p.parse_string().map_err(bad)?;
                p.expect_char(':').map_err(bad)?;
                match key.as_str() {
                    "tenant" => tenant = Some(p.parse_string().map_err(bad)?),
                    "workload" => {
                        let name = p.parse_string().map_err(bad)?;
                        workload = Some(match name.as_str() {
                            "segmentation" => Workload::Segmentation,
                            "motion" => Workload::Motion,
                            "stereo" => Workload::Stereo,
                            "raw" => Workload::Raw,
                            other => {
                                return Err(ServeError::BadRequest {
                                    reason: format!(
                                        "unknown workload `{other}` (expected \
                                         segmentation, motion, stereo, or raw)"
                                    ),
                                });
                            }
                        });
                    }
                    "width" => req.width = usize_field(&mut p, "width", 1, 1 << 14)?,
                    "height" => req.height = usize_field(&mut p, "height", 1, 1 << 14)?,
                    "labels" => req.labels = usize_field(&mut p, "labels", 1, 64)? as u16,
                    "iterations" => {
                        req.iterations = usize_field(&mut p, "iterations", 1, 1 << 20)?;
                    }
                    "seed" => {
                        let n = p.parse_number().map_err(bad)?;
                        if n < 0.0 || n.fract() != 0.0 || n >= 2f64.powi(53) {
                            return Err(range_err("seed", "a non-negative integer < 2^53"));
                        }
                        req.seed = n as u64;
                    }
                    "threads" => req.threads = usize_field(&mut p, "threads", 1, 256)?.max(2),
                    "noise_sigma" => {
                        let n = p.parse_number().map_err(bad)?;
                        if !(0.0..=128.0).contains(&n) {
                            return Err(range_err("noise_sigma", "in 0..=128"));
                        }
                        req.noise_sigma = n;
                    }
                    "smoothness" => {
                        let n = p.parse_number().map_err(bad)?;
                        if !(0.0..=64.0).contains(&n) {
                            return Err(range_err("smoothness", "in 0..=64"));
                        }
                        req.smoothness = Some(n);
                    }
                    "dx" => req.dx = displacement_field(&mut p, "dx")?,
                    "dy" => req.dy = displacement_field(&mut p, "dy")?,
                    "disparity" => req.disparity = usize_field(&mut p, "disparity", 1, 4)? as u8,
                    "diag" => req.diag = p.parse_bool().map_err(bad)?,
                    "unaries" => req.unaries = Some(parse_unaries(&mut p)?),
                    other => {
                        return Err(ServeError::BadRequest {
                            reason: format!("unknown key `{other}` in job request"),
                        });
                    }
                }
                if !p.consume_char(',') {
                    p.expect_char('}').map_err(bad)?;
                    break;
                }
            }
        }
        p.expect_end().map_err(bad)?;
        let Some(tenant) = tenant.filter(|t| !t.is_empty()) else {
            return Err(ServeError::BadRequest {
                reason: "missing required key `tenant`".to_string(),
            });
        };
        let Some(workload) = workload else {
            return Err(ServeError::BadRequest {
                reason: "missing required key `workload`".to_string(),
            });
        };
        req.tenant = tenant;
        req.workload = workload;
        if workload == Workload::Raw {
            let Some(unaries) = &req.unaries else {
                return Err(ServeError::BadRequest {
                    reason: "raw workload requires `unaries`".to_string(),
                });
            };
            if unaries.len() != req.sites() {
                return Err(ServeError::BadRequest {
                    reason: format!(
                        "unaries has {} rows for a {}x{} field of {} sites",
                        unaries.len(),
                        req.width,
                        req.height,
                        req.sites()
                    ),
                });
            }
            if let Some(row) = unaries.iter().find(|r| r.len() != usize::from(req.labels)) {
                return Err(ServeError::BadRequest {
                    reason: format!(
                        "every unaries row needs {} energies, found one with {}",
                        req.labels,
                        row.len()
                    ),
                });
            }
        }
        Ok(req)
    }

    /// Builds the segmentation model this request describes — exposed
    /// so the lifecycle test and `serve-bench` can run the *direct*
    /// engine path on the identical model and compare label maps bit
    /// for bit.
    pub fn segmentation(&self) -> Segmentation {
        let scene = synthetic::region_scene(
            self.width,
            self.height,
            usize::from(self.labels),
            self.noise_sigma,
            self.seed,
        );
        let mut config = SegmentationConfig {
            num_labels: self.labels,
            threads: self.threads,
            ..SegmentationConfig::default()
        };
        if let Some(w) = self.smoothness {
            config.smoothness_weight = w;
        }
        Segmentation::new(scene.image, config)
    }

    /// Admits this request into the engine, returning the handle and,
    /// when diagnostics were requested, the coordinator holding the
    /// marginal accumulators.
    ///
    /// # Errors
    ///
    /// [`ServeError::Backpressure`] when the engine queue is full,
    /// [`ServeError::Rejected`]/[`ServeError::ShuttingDown`] for
    /// admission failures (see [`ServeError::from_admission`]).
    pub fn submit(
        &self,
        engine: &Engine,
        retry_after_s: u64,
    ) -> Result<(JobHandle, Option<Arc<MultiChainDiag>>), ServeError> {
        self.dispatch(engine, retry_after_s, None, None)
    }

    /// [`submit`](JobRequest::submit) with a durable checkpoint writer
    /// attached — the path every submission takes when the server runs
    /// with a [`CheckpointSetup`](crate::CheckpointSetup).
    ///
    /// # Errors
    ///
    /// Same as [`submit`](JobRequest::submit).
    pub fn submit_with_checkpoint(
        &self,
        engine: &Engine,
        retry_after_s: u64,
        checkpoint: Option<(CheckpointPolicy, Arc<dyn CheckpointWriter>)>,
    ) -> Result<(JobHandle, Option<Arc<MultiChainDiag>>), ServeError> {
        self.dispatch(engine, retry_after_s, checkpoint, None)
    }

    /// Seats a checkpointed state under the spec this request rebuilds,
    /// via [`Engine::resume`]. Recovery-path counterpart of
    /// [`submit`](JobRequest::submit): because the request body fully
    /// determines the job (scene, tables, seed), re-parsing it
    /// reconstructs the exact spec the state was captured under, and the
    /// engine's binding check refuses anything that drifted.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] when the state does not belong to this
    /// spec (binding mismatch, invalid plane), plus everything
    /// [`submit`](JobRequest::submit) reports.
    pub fn resume(
        &self,
        engine: &Engine,
        retry_after_s: u64,
        state: &CheckpointState,
        checkpoint: Option<(CheckpointPolicy, Arc<dyn CheckpointWriter>)>,
    ) -> Result<(JobHandle, Option<Arc<MultiChainDiag>>), ServeError> {
        self.dispatch(engine, retry_after_s, checkpoint, Some(state))
    }

    fn dispatch(
        &self,
        engine: &Engine,
        retry_after_s: u64,
        checkpoint: Option<(CheckpointPolicy, Arc<dyn CheckpointWriter>)>,
        resume: Option<&CheckpointState>,
    ) -> Result<(JobHandle, Option<Arc<MultiChainDiag>>), ServeError> {
        match self.workload {
            Workload::Segmentation => {
                let app = self.segmentation();
                let job = app.engine_job(SoftmaxGibbs::new(), self.iterations, self.seed);
                admit(engine, job, self.diag, retry_after_s, checkpoint, resume)
            }
            Workload::Motion => {
                let scene = synthetic::translated_pair(
                    self.width,
                    self.height,
                    self.dx,
                    self.dy,
                    self.noise_sigma,
                    self.seed,
                );
                let mut config = MotionConfig {
                    threads: self.threads,
                    ..MotionConfig::default()
                };
                if let Some(w) = self.smoothness {
                    config.smoothness_weight = w;
                }
                let app = MotionEstimation::new(&scene.frame1, &scene.frame2, config);
                let job = app.engine_job(SoftmaxGibbs::new(), self.iterations, self.seed);
                admit(engine, job, self.diag, retry_after_s, checkpoint, resume)
            }
            Workload::Stereo => {
                let scene = synthetic::stereo_pair(
                    self.width,
                    self.height,
                    self.disparity,
                    self.noise_sigma,
                    self.seed,
                );
                let mut config = StereoConfig {
                    num_disparities: u16::from(self.disparity) + 1,
                    threads: self.threads,
                    ..StereoConfig::default()
                };
                if let Some(w) = self.smoothness {
                    config.smoothness_weight = w;
                }
                let app = StereoMatching::new(&scene.left, &scene.right, config);
                let job = app.engine_job(SoftmaxGibbs::new(), self.iterations, self.seed);
                admit(engine, job, self.diag, retry_after_s, checkpoint, resume)
            }
            Workload::Raw => {
                let unaries = self.unaries.clone().unwrap_or_default();
                let singleton = TableSingleton {
                    labels: usize::from(self.labels),
                    energies: Arc::new(unaries.into_iter().flatten().collect()),
                };
                let mrf = MarkovRandomField::builder(
                    Grid2D::new(self.width, self.height),
                    LabelSpace::scalar(self.labels),
                )
                .prior(SmoothnessPrior::potts(self.smoothness.unwrap_or(1.0)))
                .singleton(singleton)
                .build();
                let mut job = InferenceJob::new(mrf, SoftmaxGibbs::new());
                job.iterations = self.iterations;
                job.threads = self.threads;
                job.seed = self.seed;
                job.track_modes = true;
                job.burn_in = self.iterations / 4;
                admit(engine, job, self.diag, retry_after_s, checkpoint, resume)
            }
        }
    }
}

/// Per-site unary lookup for the raw workload: row-major
/// `sites x labels` energy table behind an `Arc` so field clones stay
/// cheap.
#[derive(Debug, Clone)]
pub struct TableSingleton {
    labels: usize,
    energies: Arc<Vec<f64>>,
}

impl SingletonPotential for TableSingleton {
    fn energy(&self, site: usize, label: Label) -> f64 {
        self.energies[site * self.labels + usize::from(label.value())]
    }
}

/// Revalidates an assembled job through [`JobSpec::builder`] (the
/// engine's structural checks), optionally attaches a fresh diagnostics
/// coordinator and a checkpoint writer, and admits it via `try_submit`
/// — or, on the recovery path, seats the checkpointed state via
/// [`Engine::resume`] — mapping the failure modes onto the serve
/// taxonomy.
fn admit<S, L>(
    engine: &Engine,
    job: InferenceJob<S, L>,
    diag: bool,
    retry_after_s: u64,
    checkpoint: Option<(CheckpointPolicy, Arc<dyn CheckpointWriter>)>,
    resume: Option<&CheckpointState>,
) -> Result<(JobHandle, Option<Arc<MultiChainDiag>>), ServeError>
where
    S: SingletonPotential + Clone + 'static,
    L: LabelSampler + SweepKernel + Clone + Send + Sync + 'static,
{
    let coordinator = diag.then(|| {
        MultiChainDiag::for_field(
            &job.mrf,
            1,
            DiagConfig {
                // Serve jobs run their full budget; the sink only
                // accumulates the marginals the result endpoint serves.
                early_stop: false,
                label_stride: 1,
                window: 64,
                ..DiagConfig::default()
            },
        )
    });
    let mut builder = JobSpec::builder(job.mrf, job.sampler)
        .schedule(job.schedule)
        .iterations(job.iterations)
        .threads(job.threads)
        .seed(job.seed)
        .burn_in(job.burn_in)
        .track_modes(job.track_modes)
        .record_energy(job.record_energy);
    if let Some(initial) = job.initial {
        builder = builder.initial(initial);
    }
    if let Some(coordinator) = &coordinator {
        builder = builder.sink(coordinator.sink(0));
    }
    if let Some((policy, writer)) = checkpoint {
        builder = builder.checkpoint(policy, writer);
    }
    let spec = builder.build().map_err(ServeError::from_admission)?;
    match resume {
        None => match engine.try_submit(spec) {
            Ok(handle) => Ok((handle, coordinator)),
            Err(TrySubmitError::Full(_)) => Err(ServeError::Backpressure { retry_after_s }),
            Err(TrySubmitError::Engine(err)) => Err(ServeError::from_admission(err)),
        },
        // Recovery runs before the listener serves traffic, so the
        // blocking `resume` cannot be starved by request load.
        Some(state) => engine
            .resume(spec, state)
            .map(|handle| (handle, coordinator))
            .map_err(ServeError::from_admission),
    }
}

fn bad(err: serde::de::Error) -> ServeError {
    ServeError::BadRequest {
        reason: format!("invalid job request JSON: {err}"),
    }
}

fn range_err(field: &str, expected: &str) -> ServeError {
    ServeError::BadRequest {
        reason: format!("`{field}` must be {expected}"),
    }
}

fn usize_field(
    p: &mut Parser<'_>,
    field: &str,
    min: usize,
    max: usize,
) -> Result<usize, ServeError> {
    let n = p.parse_number().map_err(bad)?;
    if n.fract() != 0.0 || n < min as f64 || n > max as f64 {
        return Err(range_err(field, &format!("an integer in {min}..={max}")));
    }
    Ok(n as usize)
}

fn displacement_field(p: &mut Parser<'_>, field: &str) -> Result<i32, ServeError> {
    let n = p.parse_number().map_err(bad)?;
    if n.fract() != 0.0 || !(-3.0..=3.0).contains(&n) {
        return Err(range_err(field, "an integer in -3..=3"));
    }
    Ok(n as i32)
}

fn parse_unaries(p: &mut Parser<'_>) -> Result<Vec<Vec<f64>>, ServeError> {
    let mut rows = Vec::new();
    p.expect_char('[').map_err(bad)?;
    if !p.consume_char(']') {
        loop {
            let mut row = Vec::new();
            p.expect_char('[').map_err(bad)?;
            if !p.consume_char(']') {
                loop {
                    row.push(p.parse_number().map_err(bad)?);
                    if !p.consume_char(',') {
                        p.expect_char(']').map_err(bad)?;
                        break;
                    }
                }
            }
            rows.push(row);
            if !p.consume_char(',') {
                p.expect_char(']').map_err(bad)?;
                break;
            }
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_request_gets_defaults() {
        let req =
            JobRequest::parse(r#"{"tenant":"acme","workload":"segmentation"}"#).expect("minimal");
        assert_eq!(req.tenant, "acme");
        assert_eq!(req.workload, Workload::Segmentation);
        assert_eq!((req.width, req.height, req.labels), (16, 16, 5));
        assert_eq!(req.iterations, 20);
        assert_eq!(req.threads, 2);
        assert!(!req.diag);
        assert_eq!(req.sites(), 256);
    }

    #[test]
    fn explicit_fields_override_defaults() {
        let req = JobRequest::parse(
            r#"{"tenant":"t","workload":"stereo","width":24,"height":12,
                "iterations":5,"seed":99,"threads":4,"disparity":3,"diag":true}"#,
        )
        .expect("valid");
        assert_eq!(req.workload, Workload::Stereo);
        assert_eq!((req.width, req.height), (24, 12));
        assert_eq!(req.seed, 99);
        assert_eq!(req.disparity, 3);
        assert!(req.diag);
    }

    #[test]
    fn missing_tenant_or_workload_is_rejected() {
        for json in [
            r#"{"workload":"segmentation"}"#,
            r#"{"tenant":"acme"}"#,
            r#"{"tenant":"","workload":"segmentation"}"#,
        ] {
            let err = JobRequest::parse(json).expect_err("incomplete");
            assert_eq!(err.status(), 400, "json: {json}");
        }
    }

    #[test]
    fn unknown_keys_and_workloads_are_rejected() {
        assert_eq!(
            JobRequest::parse(r#"{"tenant":"t","workload":"segmentation","iterationz":5}"#)
                .expect_err("typo")
                .status(),
            400
        );
        assert_eq!(
            JobRequest::parse(r#"{"tenant":"t","workload":"quantum"}"#)
                .expect_err("unknown workload")
                .status(),
            400
        );
    }

    #[test]
    fn malformed_json_is_a_bad_request_never_a_panic() {
        for json in ["", "{", "not json", r#"{"tenant":12}"#, "[1,2]", "{}"] {
            assert_eq!(
                JobRequest::parse(json).expect_err("malformed").status(),
                400,
                "json: {json}"
            );
        }
    }

    #[test]
    fn out_of_range_values_are_rejected() {
        for json in [
            r#"{"tenant":"t","workload":"motion","dx":4}"#,
            r#"{"tenant":"t","workload":"segmentation","labels":65}"#,
            r#"{"tenant":"t","workload":"segmentation","iterations":0}"#,
            r#"{"tenant":"t","workload":"segmentation","width":0}"#,
            r#"{"tenant":"t","workload":"stereo","disparity":5}"#,
            r#"{"tenant":"t","workload":"segmentation","seed":-1}"#,
        ] {
            assert_eq!(
                JobRequest::parse(json).expect_err("out of range").status(),
                400,
                "json: {json}"
            );
        }
    }

    #[test]
    fn raw_requires_well_shaped_unaries() {
        assert_eq!(
            JobRequest::parse(r#"{"tenant":"t","workload":"raw"}"#)
                .expect_err("missing unaries")
                .status(),
            400
        );
        let err = JobRequest::parse(
            r#"{"tenant":"t","workload":"raw","width":2,"height":1,"labels":2,
                "unaries":[[0.0,1.0]]}"#,
        )
        .expect_err("1 row for 2 sites");
        assert_eq!(err.status(), 400);
        let req = JobRequest::parse(
            r#"{"tenant":"t","workload":"raw","width":2,"height":1,"labels":2,
                "unaries":[[0.0,1.0],[1.0,0.0]]}"#,
        )
        .expect("well shaped");
        assert_eq!(req.unaries.as_ref().map(Vec::len), Some(2));
    }

    #[test]
    fn table_singleton_indexes_row_major() {
        let s = TableSingleton {
            labels: 2,
            energies: Arc::new(vec![0.0, 1.0, 2.0, 3.0]),
        };
        assert_eq!(s.energy(0, Label::new(1)), 1.0);
        assert_eq!(s.energy(1, Label::new(0)), 2.0);
    }
}

//! `mogs-serve`: a multi-tenant HTTP serving front-end over the
//! persistent inference engine.
//!
//! The paper's pitch is MRF inference fast enough to sit behind real
//! vision workloads; the follow-up UQ work frames the deliverable as
//! posterior maps served to a consumer. [`mogs_engine`] already has
//! everything a network service needs except the network — a bounded
//! job queue with typed backpressure, cancellation, degraded
//! completion, streaming diagnostics. This crate is the network: a
//! std-only HTTP/1.1 server (hand-rolled over `std::net`; the vendored
//! registry has no async stack, and the engine API is blocking anyway)
//! exposing jobs as resources.
//!
//! # Endpoints
//!
//! | Method & path            | Purpose                                  |
//! |--------------------------|------------------------------------------|
//! | `POST /v1/jobs`          | Submit a JSON job spec; returns the id   |
//! | `GET /v1/jobs/{id}`      | Poll lifecycle state                     |
//! | `GET /v1/jobs/{id}/result` | Label map (+ marginal/entropy maps)    |
//! | `DELETE /v1/jobs/{id}`   | Request cancellation                     |
//! | `GET /metrics`           | Prometheus text: engine + serve series   |
//! | `POST /v1/fleet/jobs`    | Submit to the fleet backend (if enabled) |
//! | `GET /v1/fleet/jobs/{id}` | Poll a fleet job; terminal replies carry labels |
//!
//! # The two admission gates
//!
//! A submission passes *per-tenant* quota checks
//! ([`TenantRegistry`], 429 `Retry-After` on rejection) and then the
//! *global* engine queue ([`ServeError::Backpressure`], 503). Keeping
//! the two distinguishable by status code is the crate's central design
//! decision — a client can tell "I am over my limit" from "the service
//! is saturated" without parsing bodies. Both are ordinary values
//! routed through [`mogs_engine::TrySubmitError`]; admission never
//! panics.
//!
//! # Job persistence
//!
//! The [`JobStore`] keeps every admitted job's state
//! (Queued/Running/Done/Degraded/Failed/Cancelled) with bounded
//! retention, advancing it via the handle's non-blocking
//! [`poll`](mogs_engine::JobHandle::poll) — submit, drop the
//! connection, come back and poll later.
//!
//! With a [`CheckpointSetup`] in the config, jobs also survive the
//! *process*: every submission writes durable sweep-boundary
//! checkpoints (`mogs-ckpt`) keyed by its serve id, with the raw
//! request body as recovery metadata, and [`Server::bind`] re-admits
//! every resumable job it finds on disk — same id, same tenant
//! accounting, bit-identical continuation — before serving the first
//! request. See the [`ckpt`] module docs for the recovery gates.
//!
//! Served results are **bit-identical** to the direct engine path for
//! the same spec: dispatch reconstructs exactly the job the workload's
//! own `engine_job` constructor produces (same seed, same deterministic
//! chunk count), and the engine's determinism contract does the rest.
//! The `serve_lifecycle` integration test and `repro serve-bench` both
//! pin this.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ckpt;
pub mod client;
pub mod error;
pub mod fleet;
pub mod http;
pub mod jobspec;
pub mod metrics;
pub mod prometheus;
pub mod router;
pub mod server;
pub mod store;
pub mod tenant;

pub use ckpt::{job_key, CheckpointSetup, RecoveryReport};
pub use client::{http_request, ClientResponse, HttpClient};
pub use error::ServeError;
pub use fleet::{FleetRunner, FleetSetup};
pub use http::{Limits, Request, Response};
pub use jobspec::{JobRequest, Workload};
pub use metrics::{ServeMetrics, ServeMetricsSnapshot};
pub use prometheus::{encode_metrics, validate_exposition};
pub use router::Router;
pub use server::{ServeConfig, Server};
pub use store::{JobResultView, JobState, JobStatusView, JobStore, StoreSnapshot};
pub use tenant::{Priority, TenantQuota, TenantRegistry, TenantSnapshot};

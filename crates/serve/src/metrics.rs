//! Serve-layer counters: what the HTTP front-end adds on top of the
//! engine's own [`MetricsSnapshot`](mogs_engine::MetricsSnapshot).
//!
//! The request-latency histogram reuses the engine's lock-free
//! [`LatencyHistogram`] (log₂ µs buckets) so both layers share one
//! bucket layout and one Prometheus encoding path. Per-tenant counters
//! live in [`TenantRegistry`](crate::TenantRegistry), job-retention
//! counters in [`JobStore`](crate::JobStore); this module holds only
//! the connection-level aggregates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use mogs_ckpt::{GcReason, GcReport};
use mogs_engine::{HistogramSnapshot, LatencyHistogram};

/// Shared connection-level counters, recorded by the connection
/// workers.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// TCP connections accepted.
    pub connections_accepted: AtomicU64,
    /// HTTP requests parsed and routed (any outcome).
    pub requests_total: AtomicU64,
    /// Responses with a 4xx status.
    pub responses_4xx: AtomicU64,
    /// Responses with a 5xx status.
    pub responses_5xx: AtomicU64,
    /// Checkpoint files deleted by GC because they belong to no
    /// resumable job (unparseable key or payload with no valid sibling).
    pub checkpoints_discarded_orphan: AtomicU64,
    /// Checkpoint files deleted by GC because they failed decoding.
    pub checkpoints_discarded_corrupt: AtomicU64,
    /// Checkpoint files deleted by GC because they aged out.
    pub checkpoints_discarded_stale: AtomicU64,
    /// Wall time from request parse to response write.
    pub request_latency: LatencyHistogram,
}

impl ServeMetrics {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        ServeMetrics::default()
    }

    /// Records one completed request: its latency and its response
    /// status class.
    pub fn record_request(&self, status: u16, latency: Duration) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        if (400..500).contains(&status) {
            self.responses_4xx.fetch_add(1, Ordering::Relaxed);
        } else if status >= 500 {
            self.responses_5xx.fetch_add(1, Ordering::Relaxed);
        }
        self.request_latency.record(latency);
    }

    /// Folds one checkpoint-GC sweep into the per-reason discard
    /// counters.
    pub fn record_gc(&self, report: &GcReport) {
        let add = |counter: &AtomicU64, reason: GcReason| {
            counter.fetch_add(report.count(reason) as u64, Ordering::Relaxed);
        };
        add(&self.checkpoints_discarded_orphan, GcReason::Orphan);
        add(&self.checkpoints_discarded_corrupt, GcReason::Corrupt);
        add(&self.checkpoints_discarded_stale, GcReason::Stale);
    }

    /// Point-in-time copy for the `/metrics` encoder.
    pub fn snapshot(&self) -> ServeMetricsSnapshot {
        ServeMetricsSnapshot {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            requests_total: self.requests_total.load(Ordering::Relaxed),
            responses_4xx: self.responses_4xx.load(Ordering::Relaxed),
            responses_5xx: self.responses_5xx.load(Ordering::Relaxed),
            checkpoints_discarded: [
                (
                    GcReason::Orphan,
                    self.checkpoints_discarded_orphan.load(Ordering::Relaxed),
                ),
                (
                    GcReason::Corrupt,
                    self.checkpoints_discarded_corrupt.load(Ordering::Relaxed),
                ),
                (
                    GcReason::Stale,
                    self.checkpoints_discarded_stale.load(Ordering::Relaxed),
                ),
            ],
            request_latency: self.request_latency.snapshot(),
        }
    }
}

/// Point-in-time copy of [`ServeMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeMetricsSnapshot {
    /// TCP connections accepted.
    pub connections_accepted: u64,
    /// HTTP requests parsed and routed.
    pub requests_total: u64,
    /// Responses with a 4xx status.
    pub responses_4xx: u64,
    /// Responses with a 5xx status.
    pub responses_5xx: u64,
    /// Checkpoint files deleted by GC, per reason, in the fixed
    /// encoder order (orphan, corrupt, stale).
    pub checkpoints_discarded: [(GcReason, u64); 3],
    /// Request wall-time histogram.
    pub request_latency: HistogramSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_split_by_status_class() {
        let metrics = ServeMetrics::new();
        metrics.record_request(200, Duration::from_micros(10));
        metrics.record_request(429, Duration::from_micros(20));
        metrics.record_request(503, Duration::from_micros(30));
        let snap = metrics.snapshot();
        assert_eq!(snap.requests_total, 3);
        assert_eq!(snap.responses_4xx, 1);
        assert_eq!(snap.responses_5xx, 1);
        assert_eq!(snap.request_latency.count, 3);
        assert_eq!(snap.request_latency.total_us, 60);
    }

    #[test]
    fn gc_sweeps_accumulate_per_reason() {
        let metrics = ServeMetrics::new();
        let report = GcReport {
            discarded: vec![
                ("a.ckpt.tmp".into(), GcReason::Orphan),
                ("b.ckpt".into(), GcReason::Corrupt),
                ("c.ckpt".into(), GcReason::Stale),
                ("d.ckpt".into(), GcReason::Stale),
            ],
        };
        metrics.record_gc(&report);
        metrics.record_gc(&report);
        let snap = metrics.snapshot();
        assert_eq!(
            snap.checkpoints_discarded,
            [
                (GcReason::Orphan, 2),
                (GcReason::Corrupt, 2),
                (GcReason::Stale, 4),
            ]
        );
    }
}

//! Prometheus text-format (version 0.0.4) encoder for the engine and
//! serve metric families.
//!
//! The engine keeps its latency histograms in log₂ microsecond buckets
//! indexed by bit length: bucket `i` counts samples strictly below
//! `2^i` µs (and at least `2^(i-1)`). Since every sample is an integer
//! number of microseconds, the cumulative count through bucket `i` is
//! exactly the Prometheus bound `le = (2^i - 1) / 1e6` seconds — the
//! encoder converts per-bucket counts to running totals, emits
//! buckets through the last occupied one, and closes with the mandatory
//! `+Inf` bucket, `_sum` (seconds), and `_count`. This is what carries
//! the engine's `phase_latency` histogram (previously JSON-only) into
//! scrapeable form.
//!
//! Encoding choices are pinned by unit tests below; the
//! [`validate_exposition`] checker is exported so integration tests can
//! assert any `/metrics` body is well-formed without a real Prometheus
//! parser in the tree.

use mogs_engine::{HistogramSnapshot, MetricsSnapshot};

use crate::metrics::ServeMetricsSnapshot;
use crate::store::StoreSnapshot;
use crate::tenant::TenantSnapshot;

/// Renders every metric family the server exposes.
pub fn encode_metrics(
    engine: &MetricsSnapshot,
    serve: &ServeMetricsSnapshot,
    tenants: &[TenantSnapshot],
    store: StoreSnapshot,
) -> String {
    let mut out = String::with_capacity(8 * 1024);
    encode_engine(&mut out, engine);
    encode_serve(&mut out, serve, tenants, store);
    out
}

fn encode_engine(out: &mut String, m: &MetricsSnapshot) {
    counter(
        out,
        "mogs_engine_jobs_submitted_total",
        "Jobs accepted into the submission queue.",
        m.jobs_submitted,
    );
    counter(
        out,
        "mogs_engine_jobs_rejected_total",
        "Jobs refused by try_submit because the queue was full.",
        m.jobs_rejected,
    );
    counter(
        out,
        "mogs_engine_jobs_denied_total",
        "Jobs denied at admission validation.",
        m.jobs_denied,
    );
    counter(
        out,
        "mogs_engine_jobs_completed_total",
        "Jobs that ran their full iteration budget.",
        m.jobs_completed,
    );
    counter(
        out,
        "mogs_engine_jobs_cancelled_total",
        "Jobs ended through their cancellation handle.",
        m.jobs_cancelled,
    );
    counter(
        out,
        "mogs_engine_jobs_early_stopped_total",
        "Jobs stopped by a diagnostics sink's convergence verdict.",
        m.jobs_early_stopped,
    );
    counter(
        out,
        "mogs_engine_jobs_failed_total",
        "Jobs ended in a typed engine failure.",
        m.jobs_failed,
    );
    counter(
        out,
        "mogs_engine_jobs_panicked_total",
        "Jobs failed by a worker panic past the retry budget.",
        m.jobs_panicked,
    );
    counter(
        out,
        "mogs_engine_jobs_failed_over_total",
        "Jobs that fell over to the exact backend mid-flight.",
        m.jobs_failed_over,
    );
    counter(
        out,
        "mogs_engine_phase_retries_total",
        "Panicked phases re-dispatched under the retry budget.",
        m.phase_retries,
    );
    counter(
        out,
        "mogs_engine_units_quarantined_total",
        "RSU units quarantined by the health monitor.",
        m.units_quarantined,
    );
    counter(
        out,
        "mogs_engine_sweeps_completed_total",
        "Full sweeps across all jobs.",
        m.sweeps_completed,
    );
    counter(
        out,
        "mogs_engine_site_updates_total",
        "Individual site updates across all jobs.",
        m.site_updates,
    );
    gauge(
        out,
        "mogs_engine_queue_depth",
        "Jobs waiting in the submission queue.",
        m.queue_depth as f64,
    );
    gauge(
        out,
        "mogs_engine_queue_depth_hwm",
        "Submission-queue high-water mark over the engine's lifetime.",
        m.queue_depth_hwm as f64,
    );
    gauge(
        out,
        "mogs_engine_active_jobs",
        "Jobs currently being swept.",
        m.active_jobs as f64,
    );
    gauge(
        out,
        "mogs_engine_uptime_seconds",
        "Engine uptime.",
        m.uptime_ms as f64 / 1e3,
    );
    gauge(
        out,
        "mogs_engine_sweeps_per_sec",
        "Sweep throughput over the engine's lifetime.",
        m.sweeps_per_sec,
    );
    gauge(
        out,
        "mogs_engine_site_updates_per_sec",
        "Site-update throughput over the engine's lifetime.",
        m.site_updates_per_sec,
    );
    histogram(
        out,
        "mogs_engine_job_wall_time_seconds",
        "Wall time per completed job.",
        &m.job_wall_time,
    );
    histogram(
        out,
        "mogs_engine_sweep_latency_seconds",
        "Wall time per sweep, task-queue waits included.",
        &m.sweep_latency,
    );
    histogram(
        out,
        "mogs_engine_phase_latency_seconds",
        "Wall time per sweep phase (one colored group).",
        &m.phase_latency,
    );
    counter(
        out,
        "mogs_engine_checkpoints_written_total",
        "Durable sweep-boundary checkpoints handed to a writer.",
        m.checkpoints_written,
    );
    counter(
        out,
        "mogs_engine_checkpoints_restored_total",
        "Jobs admitted through resume from a captured state.",
        m.checkpoints_restored,
    );
    histogram(
        out,
        "mogs_engine_checkpoint_write_seconds",
        "Wall time per checkpoint capture-and-write, on the sweep path.",
        &m.checkpoint_write_us,
    );
}

fn encode_serve(
    out: &mut String,
    serve: &ServeMetricsSnapshot,
    tenants: &[TenantSnapshot],
    store: StoreSnapshot,
) {
    counter(
        out,
        "mogs_serve_connections_accepted_total",
        "TCP connections accepted.",
        serve.connections_accepted,
    );
    counter(
        out,
        "mogs_serve_http_requests_total",
        "HTTP requests parsed and routed.",
        serve.requests_total,
    );
    counter(
        out,
        "mogs_serve_responses_4xx_total",
        "Responses with a 4xx status.",
        serve.responses_4xx,
    );
    counter(
        out,
        "mogs_serve_responses_5xx_total",
        "Responses with a 5xx status.",
        serve.responses_5xx,
    );
    histogram(
        out,
        "mogs_serve_request_latency_seconds",
        "Request wall time, parse to response flush.",
        &serve.request_latency,
    );
    gauge(
        out,
        "mogs_serve_jobs_live",
        "Jobs queued or running in the store.",
        store.live as f64,
    );
    gauge(
        out,
        "mogs_serve_jobs_retained",
        "Terminal jobs retained for polling.",
        store.terminal as f64,
    );
    counter(
        out,
        "mogs_serve_jobs_evicted_total",
        "Terminal jobs evicted by the retention cap.",
        store.evicted,
    );
    family(
        out,
        "mogs_serve_checkpoints_discarded_total",
        "Checkpoint files deleted by the startup GC sweep, by reason.",
        "counter",
    );
    for (reason, count) in &serve.checkpoints_discarded {
        series(
            out,
            "mogs_serve_checkpoints_discarded_total",
            &[("reason", reason.as_str())],
            *count as f64,
        );
    }

    family(
        out,
        "mogs_serve_requests_total",
        "HTTP requests attributed to a tenant.",
        "counter",
    );
    for t in tenants {
        series(
            out,
            "mogs_serve_requests_total",
            &[("tenant", &t.name)],
            t.requests_total as f64,
        );
    }
    family(
        out,
        "mogs_serve_jobs_rejected_quota_total",
        "Submissions refused by the tenant's own quota (429).",
        "counter",
    );
    for t in tenants {
        series(
            out,
            "mogs_serve_jobs_rejected_quota_total",
            &[("tenant", &t.name)],
            t.rejected_quota as f64,
        );
    }
    family(
        out,
        "mogs_serve_jobs_rejected_backpressure_total",
        "Submissions refused by engine backpressure or the batch reserve (503).",
        "counter",
    );
    for t in tenants {
        series(
            out,
            "mogs_serve_jobs_rejected_backpressure_total",
            &[("tenant", &t.name)],
            t.rejected_backpressure as f64,
        );
    }
    family(
        out,
        "mogs_serve_jobs_in_flight",
        "Jobs queued or running per tenant.",
        "gauge",
    );
    for t in tenants {
        series(
            out,
            "mogs_serve_jobs_in_flight",
            &[("tenant", &t.name), ("priority", t.priority.name())],
            t.in_flight as f64,
        );
    }
}

fn family(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    family(out, name, help, "counter");
    series(out, name, &[], value as f64);
}

fn gauge(out: &mut String, name: &str, help: &str, value: f64) {
    family(out, name, help, "gauge");
    series(out, name, &[], value);
}

fn series(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (key, val)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{key}=\"{}\"", escape_label(val)));
        }
        out.push('}');
    }
    out.push_str(&format!(" {}\n", number(value)));
}

/// Converts one engine log₂-µs histogram to Prometheus form: cumulative
/// `_bucket` lines with exact second bounds, through the last occupied
/// bucket, then `+Inf`, `_sum`, `_count`.
fn histogram(out: &mut String, name: &str, help: &str, snap: &HistogramSnapshot) {
    family(out, name, help, "histogram");
    let last = snap
        .buckets
        .iter()
        .rposition(|&c| c > 0)
        .map_or(0, |i| i + 1);
    let mut cumulative = 0u64;
    for (i, &count) in snap.buckets.iter().take(last).enumerate() {
        cumulative += count;
        // The engine indexes by bit length: bucket i holds integer-µs
        // samples in [2^(i-1), 2^i - 1] (bucket 0 holds exactly 0), so
        // the cumulative count through bucket i is the count of samples
        // <= 2^i - 1 — an exact Prometheus bound, not an approximation.
        let le = ((1u128 << i) - 1) as f64 / 1e6;
        out.push_str(&format!(
            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
            number(le)
        ));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", snap.count));
    out.push_str(&format!(
        "{name}_sum {}\n{name}_count {}\n",
        number(snap.total_us as f64 / 1e6),
        snap.count
    ));
}

/// Formats a float the Prometheus parser accepts, preferring integers
/// without a trailing `.0`.
fn number(value: f64) -> String {
    if value == value.trunc() && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Checks that `text` is well-formed Prometheus text format: every
/// non-comment line is `name[{labels}] value`, every series was
/// declared by a `# TYPE` line, histogram buckets are cumulative, and
/// each histogram's `+Inf` bucket equals its `_count`.
///
/// # Errors
///
/// A human-readable description of the first violation.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    use std::collections::HashMap;
    let mut types: HashMap<String, String> = HashMap::new();
    // Histogram name -> (last cumulative, last le, inf, count).
    let mut hist: HashMap<String, (u64, f64, Option<u64>, Option<u64>)> = HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut words = rest.splitn(3, ' ');
            match (words.next(), words.next(), words.next()) {
                (Some("HELP"), Some(_), Some(_)) => {}
                (Some("TYPE"), Some(name), Some(kind)) => {
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {n}: unknown TYPE `{kind}`"));
                    }
                    types.insert(name.to_string(), kind.to_string());
                }
                _ => return Err(format!("line {n}: malformed comment `{line}`")),
            }
            continue;
        }
        let (series_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: no value on `{line}`"))?;
        let value: f64 = value_part
            .parse()
            .map_err(|_| format!("line {n}: unparseable value `{value_part}`"))?;
        let (name, labels) = match series_part.split_once('{') {
            None => (series_part, None),
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {n}: unterminated label set"))?;
                (name, Some(labels))
            }
        };
        if !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {n}: invalid metric name `{name}`"));
        }
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|base| types.get(*base).is_some_and(|k| k == "histogram"))
            .unwrap_or(name);
        if !types.contains_key(base) {
            return Err(format!("line {n}: series `{name}` has no TYPE declaration"));
        }
        if types.get(base).is_some_and(|k| k == "histogram") {
            let entry = hist
                .entry(base.to_string())
                .or_insert((0, f64::NEG_INFINITY, None, None));
            if name.ends_with("_bucket") {
                let le_raw = labels
                    .and_then(|l| l.strip_prefix("le=\""))
                    .and_then(|l| l.strip_suffix('"'))
                    .ok_or_else(|| format!("line {n}: bucket without an le label"))?;
                let le = if le_raw == "+Inf" {
                    f64::INFINITY
                } else {
                    le_raw
                        .parse()
                        .map_err(|_| format!("line {n}: unparseable le `{le_raw}`"))?
                };
                let cumulative = value as u64;
                if le <= entry.1 {
                    return Err(format!("line {n}: bucket bounds not increasing"));
                }
                if cumulative < entry.0 {
                    return Err(format!("line {n}: bucket counts not cumulative"));
                }
                entry.0 = cumulative;
                entry.1 = le;
                if le.is_infinite() {
                    entry.2 = Some(cumulative);
                }
            } else if name.ends_with("_count") {
                entry.3 = Some(value as u64);
            }
        }
    }
    for (name, (_, _, inf, count)) in &hist {
        let inf = inf.ok_or_else(|| format!("histogram `{name}` has no +Inf bucket"))?;
        let count = count.ok_or_else(|| format!("histogram `{name}` has no _count"))?;
        if inf != count {
            return Err(format!(
                "histogram `{name}`: +Inf bucket {inf} != _count {count}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mogs_engine::LatencyHistogram;
    use std::time::Duration;

    fn sample_histogram() -> HistogramSnapshot {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(1)); // bucket 1 (us=1, bit length 1)
        h.record(Duration::from_micros(3)); // bucket 2
        h.record(Duration::from_micros(3)); // bucket 2
        h.record(Duration::from_micros(900)); // bucket 10
        h.snapshot()
    }

    #[test]
    fn histogram_text_is_pinned() {
        let mut out = String::new();
        histogram(
            &mut out,
            "mogs_engine_phase_latency_seconds",
            "Wall time per sweep phase (one colored group).",
            &sample_histogram(),
        );
        let expected = "\
# HELP mogs_engine_phase_latency_seconds Wall time per sweep phase (one colored group).
# TYPE mogs_engine_phase_latency_seconds histogram
mogs_engine_phase_latency_seconds_bucket{le=\"0\"} 0
mogs_engine_phase_latency_seconds_bucket{le=\"0.000001\"} 1
mogs_engine_phase_latency_seconds_bucket{le=\"0.000003\"} 3
mogs_engine_phase_latency_seconds_bucket{le=\"0.000007\"} 3
mogs_engine_phase_latency_seconds_bucket{le=\"0.000015\"} 3
mogs_engine_phase_latency_seconds_bucket{le=\"0.000031\"} 3
mogs_engine_phase_latency_seconds_bucket{le=\"0.000063\"} 3
mogs_engine_phase_latency_seconds_bucket{le=\"0.000127\"} 3
mogs_engine_phase_latency_seconds_bucket{le=\"0.000255\"} 3
mogs_engine_phase_latency_seconds_bucket{le=\"0.000511\"} 3
mogs_engine_phase_latency_seconds_bucket{le=\"0.001023\"} 4
mogs_engine_phase_latency_seconds_bucket{le=\"+Inf\"} 4
mogs_engine_phase_latency_seconds_sum 0.000907
mogs_engine_phase_latency_seconds_count 4
";
        assert_eq!(out, expected);
        validate_exposition(&out).expect("pinned output must validate");
    }

    #[test]
    fn checkpoint_histogram_text_is_pinned() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(120)); // bucket 7 (bit length of 120)
        h.record(Duration::from_micros(2)); // bucket 2
        let mut out = String::new();
        histogram(
            &mut out,
            "mogs_engine_checkpoint_write_seconds",
            "Wall time per checkpoint capture-and-write, on the sweep path.",
            &h.snapshot(),
        );
        let expected = "\
# HELP mogs_engine_checkpoint_write_seconds Wall time per checkpoint capture-and-write, on the sweep path.
# TYPE mogs_engine_checkpoint_write_seconds histogram
mogs_engine_checkpoint_write_seconds_bucket{le=\"0\"} 0
mogs_engine_checkpoint_write_seconds_bucket{le=\"0.000001\"} 0
mogs_engine_checkpoint_write_seconds_bucket{le=\"0.000003\"} 1
mogs_engine_checkpoint_write_seconds_bucket{le=\"0.000007\"} 1
mogs_engine_checkpoint_write_seconds_bucket{le=\"0.000015\"} 1
mogs_engine_checkpoint_write_seconds_bucket{le=\"0.000031\"} 1
mogs_engine_checkpoint_write_seconds_bucket{le=\"0.000063\"} 1
mogs_engine_checkpoint_write_seconds_bucket{le=\"0.000127\"} 2
mogs_engine_checkpoint_write_seconds_bucket{le=\"+Inf\"} 2
mogs_engine_checkpoint_write_seconds_sum 0.000122
mogs_engine_checkpoint_write_seconds_count 2
";
        assert_eq!(out, expected);
        validate_exposition(&out).expect("pinned output must validate");
    }

    #[test]
    fn empty_histogram_still_closes_with_inf_sum_count() {
        let mut out = String::new();
        histogram(
            &mut out,
            "x_seconds",
            "h.",
            &LatencyHistogram::new().snapshot(),
        );
        assert!(out.contains("x_seconds_bucket{le=\"+Inf\"} 0\n"), "{out}");
        assert!(out.contains("x_seconds_sum 0\n"), "{out}");
        assert!(out.contains("x_seconds_count 0\n"), "{out}");
        validate_exposition(&out).expect("valid");
    }

    #[test]
    fn full_exposition_validates_and_includes_both_layers() {
        use crate::metrics::ServeMetrics;
        use crate::store::StoreSnapshot;
        use crate::tenant::{TenantQuota, TenantRegistry};

        let engine = mogs_engine::EngineMetrics::new().snapshot();
        let serve = {
            let m = ServeMetrics::new();
            m.record_request(200, Duration::from_micros(42));
            m.record_request(429, Duration::from_micros(7));
            m.snapshot()
        };
        let registry = TenantRegistry::new();
        registry.register("acme", TenantQuota::default());
        registry.register("beta\"co", TenantQuota::default());
        registry.record_request("acme");
        let text = encode_metrics(
            &engine,
            &serve,
            &registry.snapshot(),
            StoreSnapshot {
                live: 1,
                terminal: 2,
                evicted: 3,
            },
        );
        validate_exposition(&text).expect("full exposition must validate");
        // The satellite series: phase latency histogram + queue HWM.
        assert!(
            text.contains("# TYPE mogs_engine_phase_latency_seconds histogram"),
            "{text}"
        );
        assert!(text.contains("mogs_engine_queue_depth_hwm 0\n"));
        // The checkpoint families ride the same engine snapshot.
        assert!(text.contains("mogs_engine_checkpoints_written_total 0\n"));
        assert!(text.contains("mogs_engine_checkpoints_restored_total 0\n"));
        assert!(
            text.contains("# TYPE mogs_engine_checkpoint_write_seconds histogram"),
            "{text}"
        );
        // Serve-layer per-tenant series, with escaped label values.
        assert!(text.contains("mogs_serve_requests_total{tenant=\"acme\"} 1\n"));
        assert!(text.contains("tenant=\"beta\\\"co\""));
        assert!(text.contains("mogs_serve_jobs_rejected_quota_total{tenant=\"acme\"} 0\n"));
        assert!(text.contains("mogs_serve_jobs_evicted_total 3\n"));
    }

    #[test]
    fn checkpoint_gc_labels_are_pinned() {
        use crate::metrics::ServeMetrics;
        use crate::store::StoreSnapshot;
        use mogs_ckpt::{GcReason, GcReport};

        let metrics = ServeMetrics::new();
        metrics.record_gc(&GcReport {
            discarded: vec![
                ("a.ckpt.tmp".into(), GcReason::Orphan),
                ("b.ckpt".into(), GcReason::Stale),
                ("c.ckpt".into(), GcReason::Stale),
            ],
        });
        let text = encode_metrics(
            &mogs_engine::EngineMetrics::new().snapshot(),
            &metrics.snapshot(),
            &[],
            StoreSnapshot {
                live: 0,
                terminal: 0,
                evicted: 0,
            },
        );
        validate_exposition(&text).expect("exposition must validate");
        // The per-reason label set is pinned: exactly these three series,
        // in this order, with these label strings.
        let expected = "\
# HELP mogs_serve_checkpoints_discarded_total Checkpoint files deleted by the startup GC sweep, by reason.
# TYPE mogs_serve_checkpoints_discarded_total counter
mogs_serve_checkpoints_discarded_total{reason=\"orphan\"} 1
mogs_serve_checkpoints_discarded_total{reason=\"corrupt\"} 0
mogs_serve_checkpoints_discarded_total{reason=\"stale\"} 2
";
        assert!(
            text.contains(expected),
            "missing pinned GC family in:\n{text}"
        );
    }

    #[test]
    fn validator_rejects_non_cumulative_buckets() {
        let bad = "\
# HELP h h.
# TYPE h histogram
h_bucket{le=\"0.1\"} 5
h_bucket{le=\"0.2\"} 3
h_bucket{le=\"+Inf\"} 5
h_sum 1
h_count 5
";
        assert!(validate_exposition(bad).is_err());
    }

    #[test]
    fn validator_rejects_inf_count_mismatch() {
        let bad = "\
# HELP h h.
# TYPE h histogram
h_bucket{le=\"+Inf\"} 4
h_sum 1
h_count 5
";
        assert!(validate_exposition(bad).is_err());
    }

    #[test]
    fn validator_rejects_undeclared_series() {
        assert!(validate_exposition("orphan 1\n").is_err());
    }
}

//! Request routing: one `handle_*` function per endpoint, all returning
//! `Result<Response, ServeError>`.
//!
//! The `mogs-audit` `serve-handler-error` rule pins this shape: a
//! handler surfaces failures as typed [`ServeError`] values — rendered
//! into a response exactly once, in [`Router::handle`] — and never
//! unwraps request input. The router owns no threads and no sockets;
//! it is a pure `Request -> Response` function over the shared engine,
//! tenant registry, job store, and metrics, which is what makes every
//! endpoint testable without a listener.
//!
//! Admission order in [`handle_submit`](Router::handle_submit) is the
//! quota-vs-backpressure decision table from DESIGN §13:
//!
//! 1. parse + validate the spec (400),
//! 2. tenant registered? (403),
//! 3. tenant quota — in-flight cap, per-job site cap (429),
//! 4. batch-priority reserve — batch jobs only (503),
//! 5. engine `try_submit` — bounded queue (503).
//!
//! Per-tenant checks run before global ones so a tenant over its own
//! cap sees 429 even while the engine also happens to be full.

use std::sync::Arc;

use mogs_ckpt::CheckpointStore;
use mogs_engine::{CheckpointPolicy, Engine};

use crate::ckpt::job_key;
use crate::error::ServeError;
use crate::fleet::FleetRunner;
use crate::http::{json_string, Request, Response};
use crate::jobspec::JobRequest;
use crate::metrics::ServeMetrics;
use crate::prometheus::encode_metrics;
use crate::store::{JobResultView, JobStore};
use crate::tenant::{Priority, TenantRegistry};

/// Shared serving state behind the connection workers.
pub struct Router {
    engine: Arc<Engine>,
    tenants: Arc<TenantRegistry>,
    store: Arc<JobStore>,
    metrics: Arc<ServeMetrics>,
    /// `Retry-After` hint on 429/503 responses, seconds.
    retry_after_s: u64,
    /// Batch-priority jobs are refused once the engine queue is this
    /// deep, reserving the remaining capacity for interactive tenants.
    batch_queue_ceiling: u64,
    /// When set, every submission checkpoints under `job-<id>` and
    /// terminal jobs get their checkpoints deleted.
    ckpt: Option<(CheckpointStore, CheckpointPolicy)>,
    /// Bounded random jitter added to every rendered `Retry-After`
    /// header, seconds (0 disables).
    retry_jitter_s: u64,
    /// The optional fleet backend behind `/v1/fleet/jobs`.
    fleet: Option<FleetRunner>,
}

impl Router {
    /// Assembles a router over the shared serving state.
    pub fn new(
        engine: Arc<Engine>,
        tenants: Arc<TenantRegistry>,
        store: Arc<JobStore>,
        metrics: Arc<ServeMetrics>,
        retry_after_s: u64,
        batch_queue_ceiling: u64,
    ) -> Self {
        Router {
            engine,
            tenants,
            store,
            metrics,
            retry_after_s,
            batch_queue_ceiling,
            ckpt: None,
            retry_jitter_s: 0,
            fleet: None,
        }
    }

    /// Adds bounded random jitter to every `Retry-After` header this
    /// router renders: the hint becomes `base + U(0..=jitter)` seconds.
    #[must_use]
    pub fn with_retry_jitter(mut self, jitter_s: u64) -> Self {
        self.retry_jitter_s = jitter_s;
        self
    }

    /// Enables the fleet backend: `POST /v1/fleet/jobs` and
    /// `GET /v1/fleet/jobs/{id}` route to `runner`.
    #[must_use]
    pub fn with_fleet(mut self, runner: FleetRunner) -> Self {
        self.fleet = Some(runner);
        self
    }

    /// Enables durable checkpointing: every submission gets a
    /// sweep-boundary writer keyed `job-<id>` with the raw request body
    /// as meta, and checkpoints of terminal jobs are deleted on the
    /// refresh that observes them finish.
    #[must_use]
    pub fn with_checkpoints(mut self, store: CheckpointStore, policy: CheckpointPolicy) -> Self {
        self.ckpt = Some((store, policy));
        self
    }

    /// [`JobStore::refresh`] plus checkpoint hygiene: jobs that just
    /// reached a terminal state have their checkpoints removed, so a
    /// restart never resurrects finished work.
    pub fn refresh_store(&self) {
        let finished = self.store.refresh(&self.tenants);
        if let Some((ckpt_store, _)) = &self.ckpt {
            for id in finished {
                let _ = ckpt_store.remove(&job_key(id));
            }
        }
    }

    /// The job store (used by the server for shutdown bookkeeping).
    pub fn store(&self) -> &Arc<JobStore> {
        &self.store
    }

    /// The tenant registry.
    pub fn tenants(&self) -> &Arc<TenantRegistry> {
        &self.tenants
    }

    /// The serve-layer metrics.
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// Routes one request and renders any error into its response.
    pub fn handle(&self, request: &Request) -> Response {
        let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
        let result = match (request.method.as_str(), segments.as_slice()) {
            ("POST", ["v1", "jobs"]) => self.handle_submit(request),
            ("GET", ["v1", "jobs", id]) => self.handle_status(id),
            ("GET", ["v1", "jobs", id, "result"]) => self.handle_result(id),
            ("DELETE", ["v1", "jobs", id]) => self.handle_cancel(id),
            ("POST", ["v1", "fleet", "jobs"]) => self.handle_fleet_submit(request),
            ("GET", ["v1", "fleet", "jobs", id]) => self.handle_fleet_status(id),
            ("GET", ["metrics"]) => self.handle_metrics(),
            (
                _,
                ["v1", "jobs"]
                | ["v1", "jobs", _]
                | ["v1", "jobs", _, "result"]
                | ["v1", "fleet", "jobs"]
                | ["v1", "fleet", "jobs", _]
                | ["metrics"],
            ) => Err(ServeError::MethodNotAllowed {
                method: request.method.clone(),
            }),
            _ => Err(ServeError::NotFound {
                what: request.path.clone(),
            }),
        };
        result.unwrap_or_else(|err| err.into_response_with_jitter(self.retry_jitter_s))
    }

    /// The fleet runner, or 404 when the backend is not enabled.
    fn fleet(&self) -> Result<&FleetRunner, ServeError> {
        self.fleet.as_ref().ok_or_else(|| ServeError::NotFound {
            what: "fleet backend (not enabled on this server)".to_string(),
        })
    }

    /// `POST /v1/fleet/jobs`: hand the body to the fleet backend.
    fn handle_fleet_submit(&self, request: &Request) -> Result<Response, ServeError> {
        let body = request.body_utf8()?;
        self.fleet()?.submit(body, self.retry_after_s)
    }

    /// `GET /v1/fleet/jobs/{id}`: fleet job state.
    fn handle_fleet_status(&self, id: &str) -> Result<Response, ServeError> {
        let id = parse_id(id)?;
        self.fleet()?.status(id)
    }

    /// `POST /v1/jobs`: parse, admit, submit, store.
    fn handle_submit(&self, request: &Request) -> Result<Response, ServeError> {
        let raw_body = request.body_utf8()?;
        let spec = JobRequest::parse(raw_body)?;
        self.tenants.record_request(&spec.tenant);
        // Free slots held by jobs that finished since the last request,
        // so quota decisions see current in-flight counts.
        self.refresh_store();
        self.tenants
            .admit(&spec.tenant, spec.sites(), self.retry_after_s)?;
        if self.tenants.priority(&spec.tenant) == Some(Priority::Batch)
            && self.engine.metrics().queue_depth >= self.batch_queue_ceiling
        {
            self.tenants.release(&spec.tenant);
            self.tenants.record_backpressure(&spec.tenant);
            return Err(ServeError::Backpressure {
                retry_after_s: self.retry_after_s,
            });
        }
        // The writer needs the serve id before the engine sees the job,
        // so checkpointed submissions reserve theirs up front. The meta
        // is the raw request body: recovery re-parses it to rebuild the
        // exact spec this state was captured under. A reserved id whose
        // submission fails below is simply never inserted.
        let (reserved_id, checkpoint) = match self.ckpt.as_ref() {
            Some((ckpt_store, policy)) => {
                let id = self.store.reserve();
                let writer = ckpt_store.writer(&job_key(id), raw_body.to_string());
                (Some(id), Some((*policy, writer)))
            }
            None => (None, None),
        };
        let submitted = match checkpoint {
            Some(checkpoint) => {
                spec.submit_with_checkpoint(&self.engine, self.retry_after_s, Some(checkpoint))
            }
            None => spec.submit(&self.engine, self.retry_after_s),
        };
        match submitted {
            Ok((handle, diag)) => {
                let id = match reserved_id {
                    Some(id) => {
                        self.store.insert_reserved(
                            id,
                            &spec.tenant,
                            spec.workload.name(),
                            spec.width,
                            spec.height,
                            handle,
                            diag,
                        );
                        id
                    }
                    None => self.store.insert(
                        &spec.tenant,
                        spec.workload.name(),
                        spec.width,
                        spec.height,
                        handle,
                        diag,
                    ),
                };
                Ok(Response::json(
                    201,
                    format!(
                        "{{\"id\":{id},\"state\":\"queued\",\"tenant\":{}}}",
                        json_string(&spec.tenant)
                    ),
                ))
            }
            Err(err) => {
                self.tenants.release(&spec.tenant);
                if matches!(err, ServeError::Backpressure { .. }) {
                    self.tenants.record_backpressure(&spec.tenant);
                }
                Err(err)
            }
        }
    }

    /// `GET /v1/jobs/{id}`: current lifecycle state.
    fn handle_status(&self, id: &str) -> Result<Response, ServeError> {
        let id = parse_id(id)?;
        self.refresh_store();
        let view = self.store.status(id).ok_or_else(|| ServeError::NotFound {
            what: format!("job {id}"),
        })?;
        self.tenants.record_request(&view.tenant);
        Ok(Response::json(
            200,
            format!(
                "{{\"id\":{},\"tenant\":{},\"workload\":{},\"state\":{}}}",
                view.id,
                json_string(&view.tenant),
                json_string(&view.workload),
                json_string(view.state.name())
            ),
        ))
    }

    /// `GET /v1/jobs/{id}/result`: label map and optional uncertainty
    /// maps for a terminal job.
    fn handle_result(&self, id: &str) -> Result<Response, ServeError> {
        let id = parse_id(id)?;
        self.refresh_store();
        if let Some(view) = self.store.status(id) {
            self.tenants.record_request(&view.tenant);
        }
        let result = self.store.result(id)?;
        Ok(Response::json(200, render_result(&result)))
    }

    /// `DELETE /v1/jobs/{id}`: request cancellation of a live job.
    fn handle_cancel(&self, id: &str) -> Result<Response, ServeError> {
        let id = parse_id(id)?;
        self.refresh_store();
        if let Some(view) = self.store.status(id) {
            self.tenants.record_request(&view.tenant);
        }
        self.store.cancel(id)?;
        Ok(Response::json(
            200,
            format!("{{\"id\":{id},\"cancelling\":true}}"),
        ))
    }

    /// `GET /metrics`: engine + serve families in Prometheus text
    /// format.
    fn handle_metrics(&self) -> Result<Response, ServeError> {
        self.refresh_store();
        let text = encode_metrics(
            &self.engine.metrics(),
            &self.metrics.snapshot(),
            &self.tenants.snapshot(),
            self.store.snapshot(),
        );
        Ok(Response::text(200, text))
    }
}

fn parse_id(raw: &str) -> Result<u64, ServeError> {
    raw.parse().map_err(|_| ServeError::BadRequest {
        reason: format!("job id `{raw}` is not an integer"),
    })
}

/// Renders a terminal result as JSON, leaning on the vendored serde for
/// the numeric arrays.
fn render_result(view: &JobResultView) -> String {
    let mut body = format!(
        "{{\"id\":{},\"state\":{},\"width\":{},\"height\":{},\"iterations_run\":{},\"cancelled\":{},",
        view.id,
        json_string(view.state.name()),
        view.width,
        view.height,
        view.iterations_run,
        view.cancelled,
    );
    match view.degraded {
        Some((failed_over_at, units_lost)) => body.push_str(&format!(
            "\"degraded\":{{\"failed_over_at\":{failed_over_at},\"units_lost\":{units_lost}}},"
        )),
        None => body.push_str("\"degraded\":null,"),
    }
    body.push_str(&format!(
        "\"labels\":{}",
        serde::json::to_string(&view.labels)
    ));
    if let Some(map) = &view.map_estimate {
        body.push_str(&format!(
            ",\"map_estimate\":{}",
            serde::json::to_string(map)
        ));
    }
    if let Some(marginal) = &view.marginal_map {
        let indices: Vec<u64> = marginal.iter().map(|&i| i as u64).collect();
        body.push_str(&format!(
            ",\"marginal_map\":{}",
            serde::json::to_string(&indices)
        ));
    }
    if let Some(entropy) = &view.entropy {
        body.push_str(&format!(",\"entropy\":{}", serde::json::to_string(entropy)));
    }
    body.push('}');
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::TenantQuota;
    use mogs_engine::EngineConfig;

    fn test_router(queue_capacity: usize) -> Router {
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: 2,
            queue_capacity,
            max_active_jobs: 2,
            phase_deadline: None,
            max_phase_retries: 0,
        }));
        let tenants = Arc::new(TenantRegistry::new());
        tenants.register(
            "acme",
            TenantQuota {
                max_in_flight: 2,
                max_sites_per_job: 4096,
                priority: Priority::Interactive,
            },
        );
        Router::new(
            engine,
            tenants,
            Arc::new(JobStore::new(16)),
            Arc::new(ServeMetrics::new()),
            1,
            4,
        )
    }

    fn request(method: &str, path: &str, body: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn body_text(response: &Response) -> String {
        String::from_utf8(response.body.clone()).expect("utf8 body")
    }

    #[test]
    fn submit_poll_result_round_trip() {
        let router = test_router(8);
        let submit = router.handle(&request(
            "POST",
            "/v1/jobs",
            r#"{"tenant":"acme","workload":"segmentation","width":8,"height":8,"iterations":4}"#,
        ));
        assert_eq!(submit.status, 201, "{}", body_text(&submit));
        assert!(body_text(&submit).contains("\"id\":1"));
        // Poll until terminal (tiny job; bounded spin).
        let mut state = String::new();
        for _ in 0..500 {
            let poll = router.handle(&request("GET", "/v1/jobs/1", ""));
            assert_eq!(poll.status, 200);
            state = body_text(&poll);
            if state.contains("\"done\"") {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(state.contains("\"state\":\"done\""), "state: {state}");
        let result = router.handle(&request("GET", "/v1/jobs/1/result", ""));
        assert_eq!(result.status, 200, "{}", body_text(&result));
        let body = body_text(&result);
        assert!(body.contains("\"labels\":["), "{body}");
        assert!(body.contains("\"iterations_run\":4"), "{body}");
    }

    #[test]
    fn result_before_terminal_is_409_and_unknown_is_404() {
        let router = test_router(8);
        let submit = router.handle(&request(
            "POST",
            "/v1/jobs",
            r#"{"tenant":"acme","workload":"segmentation","width":16,"height":16,"iterations":400}"#,
        ));
        assert_eq!(submit.status, 201);
        let early = router.handle(&request("GET", "/v1/jobs/1/result", ""));
        // 409 while live; the tiny chance it already finished gives 200.
        assert!(
            early.status == 409 || early.status == 200,
            "status {}",
            early.status
        );
        assert_eq!(
            router.handle(&request("GET", "/v1/jobs/99", "")).status,
            404
        );
        assert_eq!(
            router
                .handle(&request("GET", "/v1/jobs/not-a-number", ""))
                .status,
            400
        );
        router.handle(&request("DELETE", "/v1/jobs/1", ""));
    }

    #[test]
    fn unknown_routes_and_methods_are_typed() {
        let router = test_router(8);
        assert_eq!(router.handle(&request("GET", "/nope", "")).status, 404);
        assert_eq!(router.handle(&request("PUT", "/v1/jobs", "")).status, 405);
        assert_eq!(router.handle(&request("POST", "/metrics", "")).status, 405);
    }

    #[test]
    fn fleet_routes_404_when_disabled_and_work_when_enabled() {
        let router = test_router(8);
        // Backend off: typed 404, and the method gate still answers 405.
        assert_eq!(
            router
                .handle(&request("POST", "/v1/fleet/jobs", "{}"))
                .status,
            404
        );
        assert_eq!(
            router
                .handle(&request("DELETE", "/v1/fleet/jobs", ""))
                .status,
            405
        );
        // Backend on: submit, poll to terminal, read the labels back.
        let router = test_router(8).with_fleet(crate::fleet::FleetRunner::new(
            crate::fleet::FleetSetup::default(),
        ));
        let spec = mogs_fleet::FleetSpec {
            workload: mogs_fleet::Workload::Demo {
                width: 6,
                height: 4,
                labels: 3,
            },
            backend: mogs_fleet::BackendKind::Softmax,
            iterations: 3,
            threads: 2,
            seed: 17,
            burn_in: 1,
        };
        let accepted = router.handle(&request("POST", "/v1/fleet/jobs", &spec.encode()));
        assert_eq!(accepted.status, 202, "{}", body_text(&accepted));
        let mut done = String::new();
        for _ in 0..1000 {
            let poll = router.handle(&request("GET", "/v1/fleet/jobs/1", ""));
            assert_eq!(poll.status, 200, "{}", body_text(&poll));
            done = body_text(&poll);
            if !done.contains("\"running\"") {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(done.contains("\"state\":\"done\""), "{done}");
        assert!(done.contains("\"labels\":["), "{done}");
        assert_eq!(
            router
                .handle(&request("GET", "/v1/fleet/jobs/99", ""))
                .status,
            404
        );
    }

    #[test]
    fn unknown_tenant_is_403_and_malformed_body_is_400() {
        let router = test_router(8);
        let forbidden = router.handle(&request(
            "POST",
            "/v1/jobs",
            r#"{"tenant":"ghost","workload":"segmentation"}"#,
        ));
        assert_eq!(forbidden.status, 403);
        let malformed = router.handle(&request("POST", "/v1/jobs", "{not json"));
        assert_eq!(malformed.status, 400);
    }

    #[test]
    fn metrics_endpoint_serves_valid_prometheus_text() {
        let router = test_router(8);
        let response = router.handle(&request("GET", "/metrics", ""));
        assert_eq!(response.status, 200);
        assert_eq!(
            response.header_value("Content-Type"),
            Some("text/plain; version=0.0.4; charset=utf-8")
        );
        crate::prometheus::validate_exposition(&body_text(&response)).expect("valid exposition");
    }
}

//! The listener: `std::net::TcpListener` + a crossbeam-channel
//! connection worker pool.
//!
//! Accepted connections travel over a bounded channel to a fixed pool
//! of connection workers; each worker owns one connection at a time,
//! reading requests and writing responses until the client closes, the
//! read timeout fires, or the per-connection request cap is reached.
//! When the channel is full the accept thread blocks, which pushes
//! further connections into the OS listen backlog — admission control
//! at the socket layer, mirroring the engine's bounded job queue one
//! level up.
//!
//! Wedge avoidance, the property the lifecycle test and `serve-bench`
//! drive: a worker can never be parked indefinitely. Reads carry
//! [`ServeConfig::read_timeout`] (an idle keep-alive connection is
//! closed, not waited on), request handling is non-blocking end to end
//! (the job store polls handles, it never calls `wait()`), oversized
//! bodies are refused *before* they are read and the connection is
//! closed since its framing is unsound, and malformed requests get a
//! typed 4xx while the worker moves on. See DESIGN §13 for how
//! `conn_workers` should be sized against the engine's own pool.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use mogs_ckpt::CheckpointStore;
use mogs_engine::Engine;

use crate::ckpt::{recover, CheckpointSetup, RecoveryReport};
use crate::fleet::{FleetRunner, FleetSetup};
use crate::http::{read_request, Limits, Response};
use crate::metrics::ServeMetrics;
use crate::router::Router;
use crate::store::JobStore;
use crate::tenant::TenantRegistry;

/// Tunables for one [`Server`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Connection workers. Sized independently of the engine's worker
    /// pool: connection workers are I/O-bound (parse, route, poll) and
    /// cheap, engine workers are compute-bound — see DESIGN §13.
    pub conn_workers: usize,
    /// Cap on a request's declared `Content-Length`, bytes.
    pub max_body_bytes: usize,
    /// Cap on a request line plus header block, bytes.
    pub max_header_bytes: usize,
    /// `Retry-After` hint on 429/503 responses, seconds.
    pub retry_after_s: u64,
    /// Bounded random jitter added on top of `retry_after_s` in the
    /// rendered header — each 429/503 carries
    /// `retry_after_s + U(0..=retry_jitter_s)` so synchronized clients
    /// decorrelate their retries. Zero (the default) disables jitter.
    pub retry_jitter_s: u64,
    /// Batch-priority jobs are refused once the engine queue depth
    /// reaches this, reserving headroom for interactive tenants.
    pub batch_queue_ceiling: u64,
    /// Terminal jobs retained for polling before oldest-first eviction.
    pub max_terminal_retained: usize,
    /// Per-read socket timeout; bounds how long an idle keep-alive
    /// connection can hold a worker.
    pub read_timeout: Duration,
    /// Requests served on one connection before it is closed, bounding
    /// how long any single client can occupy a worker.
    pub keep_alive_max_requests: usize,
    /// Durable sweep-boundary checkpoints: every submission checkpoints
    /// under its serve id, and [`Server::bind`] re-admits resumable jobs
    /// found in the directory before serving traffic. `None` disables
    /// checkpointing (the default).
    pub checkpoint: Option<CheckpointSetup>,
    /// Optional multi-process fleet backend: when set, `/v1/fleet/jobs`
    /// routes submissions through the `mogs-fleet` coordinator. `None`
    /// (the default) leaves the fleet routes answering 404.
    pub fleet: Option<FleetSetup>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            conn_workers: 8,
            max_body_bytes: 1024 * 1024,
            max_header_bytes: 16 * 1024,
            retry_after_s: 1,
            retry_jitter_s: 0,
            batch_queue_ceiling: 8,
            max_terminal_retained: 256,
            read_timeout: Duration::from_secs(2),
            keep_alive_max_requests: 256,
            checkpoint: None,
            fleet: None,
        }
    }
}

/// A running HTTP front-end over one engine.
pub struct Server {
    local_addr: SocketAddr,
    router: Arc<Router>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// What startup recovery did; `None` when checkpointing is off.
    recovery: Option<RecoveryReport>,
}

impl Server {
    /// Binds `addr`, spawns the accept thread and connection workers,
    /// and starts serving the given engine to the given tenants.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from bind/configure, and checkpoint
    /// directory errors when `config.checkpoint` is set.
    ///
    /// # Panics
    ///
    /// Panics if `config.conn_workers` is zero.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        config: ServeConfig,
        engine: Arc<Engine>,
        tenants: Arc<TenantRegistry>,
    ) -> std::io::Result<Server> {
        assert!(
            config.conn_workers > 0,
            "need at least one connection worker"
        );
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Non-blocking accept so the thread can observe the stop flag.
        listener.set_nonblocking(true)?;
        let metrics = Arc::new(ServeMetrics::new());
        let mut router = Router::new(
            Arc::clone(&engine),
            tenants,
            Arc::new(JobStore::new(config.max_terminal_retained)),
            Arc::clone(&metrics),
            config.retry_after_s,
            config.batch_queue_ceiling,
        )
        .with_retry_jitter(config.retry_jitter_s);
        if let Some(setup) = &config.fleet {
            router = router.with_fleet(FleetRunner::new(setup.clone()));
        }
        // Recovery runs before the first connection worker spawns, so
        // every resumed job is re-admitted (and its serve id reclaimed)
        // before any request can race it. Accepted connections simply
        // wait in the OS listen backlog meanwhile.
        let mut recovery = None;
        if let Some(setup) = &config.checkpoint {
            let ckpt_store = CheckpointStore::open(&setup.dir, setup.retain)
                .map_err(|e| std::io::Error::other(format!("checkpoint dir: {e}")))?;
            let policy = setup.policy();
            recovery = Some(recover(
                &ckpt_store,
                policy,
                &engine,
                router.tenants(),
                router.store(),
                config.retry_after_s,
            ));
            // GC after recovery: anything resumable was just resumed, so
            // the age bound only ever deletes leftovers.
            if let Some(age) = setup.gc_max_age {
                if let Ok(report) = ckpt_store.gc(age) {
                    metrics.record_gc(&report);
                }
            }
            router = router.with_checkpoints(ckpt_store, policy);
        }
        let router = Arc::new(router);
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = bounded(config.conn_workers * 2);
        let workers = (0..config.conn_workers)
            .map(|i| {
                let rx = rx.clone();
                let router = Arc::clone(&router);
                let config = config.clone();
                std::thread::Builder::new()
                    .name(format!("serve-conn-{i}"))
                    .spawn(move || {
                        while let Ok(stream) = rx.recv() {
                            serve_connection(stream, &router, &config);
                        }
                    })
                    .expect("spawn connection worker")
            })
            .collect();
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let router = Arc::clone(&router);
            std::thread::Builder::new()
                .name("serve-accept".to_string())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                router
                                    .metrics()
                                    .connections_accepted
                                    .fetch_add(1, Ordering::Relaxed);
                                // A full channel blocks here, pushing
                                // overload into the OS listen backlog.
                                if tx.send(stream).is_err() {
                                    break;
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => break,
                        }
                    }
                    // Dropping tx closes the channel; workers drain any
                    // queued connections and exit.
                })
                .expect("spawn accept thread")
        };
        Ok(Server {
            local_addr,
            router,
            stop,
            accept_thread: Some(accept_thread),
            workers,
            recovery,
        })
    }

    /// What startup recovery did (resumed ids, discarded checkpoints).
    /// `None` when the config has no [`CheckpointSetup`].
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared router (store, tenants, metrics).
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// Stops accepting, drains queued connections, and joins every
    /// thread. In-flight engine jobs are untouched — shutting down the
    /// front-end does not cancel work.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Serves one connection until close, timeout, error, or the request
/// cap.
fn serve_connection(stream: TcpStream, router: &Router, config: &ServeConfig) {
    if stream.set_read_timeout(Some(config.read_timeout)).is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut write_half = stream;
    let limits = Limits {
        max_header_bytes: config.max_header_bytes,
        max_body_bytes: config.max_body_bytes,
    };
    for served in 0.. {
        let start = Instant::now();
        let (response, close_after) = match read_request(&mut reader, limits) {
            // Clean close or idle timeout — nothing to respond to.
            Ok(None) => return,
            Ok(Some(request)) => {
                let response = router.handle(&request);
                let close = request.wants_close()
                    || response.close_connection
                    || served + 1 >= config.keep_alive_max_requests;
                (response, close)
            }
            // Parse errors answer with their typed status and close:
            // after a framing error the stream position is unknown.
            Err(err) => (err.into_response(), true),
        };
        record(router, &response, start);
        if response.write_to(&mut write_half).is_err() || close_after {
            return;
        }
    }
}

fn record(router: &Router, response: &Response, start: Instant) {
    router
        .metrics()
        .record_request(response.status, start.elapsed());
}

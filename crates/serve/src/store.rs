//! The job store: in-memory registry of every job the server has
//! admitted, so clients can disconnect and poll later.
//!
//! The store is poll-driven, never blocking: it holds each job's
//! [`JobHandle`](mogs_engine::JobHandle) and advances state via the
//! handle's non-blocking [`poll`](mogs_engine::JobHandle::poll) on
//! every [`refresh`](JobStore::refresh) — a connection worker is never
//! parked on `wait()`, so a slow job cannot wedge the pool. `poll`
//! moves the output out of the handle exactly once; the store is that
//! single ownership hand-off point and keeps the output for later
//! `GET /v1/jobs/{id}/result` calls.
//!
//! Retention is bounded: terminal jobs (Done, Degraded, Failed,
//! Cancelled) are kept up to a cap and then evicted oldest-first —
//! live jobs are never evicted. A client that sleeps past the
//! retention window gets 404, the same answer as for an id that never
//! existed.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use mogs_diag::MultiChainDiag;
use mogs_engine::{EngineError, JobHandle, JobOutput, JobStatus};
use parking_lot::Mutex;

use crate::error::ServeError;
use crate::tenant::TenantRegistry;

/// Serve-level lifecycle of a stored job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the engine's submission queue.
    Queued,
    /// Being swept by the engine's worker pool.
    Running,
    /// Ran its full budget on healthy hardware.
    Done,
    /// Completed, but on the exact-backend fallback after quarantined
    /// units dropped the RSU pool below its health floor.
    Degraded,
    /// Ended in a typed engine failure.
    Failed,
    /// Ended through its cancellation handle.
    Cancelled,
}

impl JobState {
    /// Stable lowercase name for JSON bodies and metrics labels.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Degraded => "degraded",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job can change state again.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

struct StoredJob {
    tenant: String,
    workload: String,
    width: usize,
    height: usize,
    state: JobState,
    /// Present until the job reaches a terminal state.
    handle: Option<JobHandle>,
    /// Present when the spec requested diagnostics.
    diag: Option<Arc<MultiChainDiag>>,
    /// The output moved out of the handle by `poll`.
    outcome: Option<Result<JobOutput, EngineError>>,
}

/// What `GET /v1/jobs/{id}` reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatusView {
    /// The job id.
    pub id: u64,
    /// The owning tenant.
    pub tenant: String,
    /// The workload kind (`segmentation`, `motion`, `stereo`, `raw`).
    pub workload: String,
    /// Current lifecycle state.
    pub state: JobState,
}

/// What `GET /v1/jobs/{id}/result` reports for a terminal job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResultView {
    /// The job id.
    pub id: u64,
    /// Terminal state (Done, Degraded, or Cancelled).
    pub state: JobState,
    /// Field width in sites.
    pub width: usize,
    /// Field height in sites.
    pub height: usize,
    /// Final label map, row-major label values.
    pub labels: Vec<u8>,
    /// Marginal MAP estimate when the engine tracked modes past
    /// burn-in.
    pub map_estimate: Option<Vec<u8>>,
    /// Sweeps actually completed (less than the budget if cancelled).
    pub iterations_run: usize,
    /// Whether the job ended through its cancellation handle.
    pub cancelled: bool,
    /// Set when the job failed over to the exact backend mid-flight:
    /// `(first exact sweep, units lost)`.
    pub degraded: Option<(usize, usize)>,
    /// Per-site posterior-mode label *indices* from the diagnostics
    /// marginals, when the spec requested diag.
    pub marginal_map: Option<Vec<usize>>,
    /// Per-site posterior entropy in bits, when the spec requested
    /// diag.
    pub entropy: Option<Vec<f64>>,
}

/// Counters the store contributes to `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreSnapshot {
    /// Jobs currently queued or running.
    pub live: u64,
    /// Terminal jobs still retained.
    pub terminal: u64,
    /// Terminal jobs evicted by the retention cap, lifetime total.
    pub evicted: u64,
}

struct Inner {
    jobs: HashMap<u64, StoredJob>,
    /// Terminal ids, oldest first — the eviction order.
    terminal_order: VecDeque<u64>,
    next_id: u64,
    evicted: u64,
}

/// Bounded in-memory registry of admitted jobs.
pub struct JobStore {
    inner: Mutex<Inner>,
    max_terminal: usize,
}

impl JobStore {
    /// An empty store retaining at most `max_terminal` finished jobs.
    pub fn new(max_terminal: usize) -> Self {
        JobStore {
            inner: Mutex::new(Inner {
                jobs: HashMap::new(),
                terminal_order: VecDeque::new(),
                next_id: 1,
                evicted: 0,
            }),
            max_terminal: max_terminal.max(1),
        }
    }

    /// Registers an admitted job and returns its serve-level id.
    pub fn insert(
        &self,
        tenant: &str,
        workload: &str,
        width: usize,
        height: usize,
        handle: JobHandle,
        diag: Option<Arc<MultiChainDiag>>,
    ) -> u64 {
        let id = self.reserve();
        self.insert_reserved(id, tenant, workload, width, height, handle, diag);
        id
    }

    /// Allocates the next serve-level id *before* the job is admitted —
    /// the checkpointing path needs the id on the submission itself (the
    /// checkpoint store key is derived from it), so the id must exist
    /// before `try_submit`. A reserved id whose submission then fails is
    /// simply never inserted; ids are not reused.
    pub fn reserve(&self) -> u64 {
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        id
    }

    /// Registers an admitted job under an id from [`reserve`].
    ///
    /// [`reserve`]: JobStore::reserve
    #[allow(clippy::too_many_arguments)]
    pub fn insert_reserved(
        &self,
        id: u64,
        tenant: &str,
        workload: &str,
        width: usize,
        height: usize,
        handle: JobHandle,
        diag: Option<Arc<MultiChainDiag>>,
    ) {
        let mut inner = self.inner.lock();
        // Recovery inserts ids minted by a previous process; keep the
        // counter ahead of them so fresh submissions never collide.
        inner.next_id = inner.next_id.max(id + 1);
        inner.jobs.insert(
            id,
            StoredJob {
                tenant: tenant.to_string(),
                workload: workload.to_string(),
                width,
                height,
                state: JobState::Queued,
                handle: Some(handle),
                diag,
                outcome: None,
            },
        );
    }

    /// Registers a job re-admitted from a checkpoint under its original
    /// serve id, bumping the id counter past it.
    #[allow(clippy::too_many_arguments)]
    pub fn insert_recovered(
        &self,
        id: u64,
        tenant: &str,
        workload: &str,
        width: usize,
        height: usize,
        handle: JobHandle,
        diag: Option<Arc<MultiChainDiag>>,
    ) {
        self.insert_reserved(id, tenant, workload, width, height, handle, diag);
    }

    /// Polls every live job's handle and advances its state, releasing
    /// the tenant's in-flight slot and applying the retention cap on
    /// each terminal transition. Called from request handlers (and the
    /// metrics endpoint) rather than a dedicated thread — cheap enough
    /// that the extra thread would buy nothing.
    ///
    /// Returns the ids that reached a terminal state on *this* call, so
    /// the router can delete their now-obsolete checkpoints.
    pub fn refresh(&self, tenants: &TenantRegistry) -> Vec<u64> {
        let mut inner = self.inner.lock();
        let ids: Vec<u64> = inner
            .jobs
            .iter()
            .filter(|(_, job)| !job.state.is_terminal())
            .map(|(&id, _)| id)
            .collect();
        let mut newly_terminal = Vec::new();
        for id in ids {
            let Some(job) = inner.jobs.get_mut(&id) else {
                continue;
            };
            let Some(handle) = job.handle.as_ref() else {
                continue;
            };
            match handle.poll() {
                None => {
                    job.state = match handle.status() {
                        JobStatus::Queued => JobState::Queued,
                        // Finished-with-no-output cannot happen here:
                        // the store is the only poller, so a Finished
                        // handle yields its output on this same call.
                        JobStatus::Running | JobStatus::Finished => JobState::Running,
                    };
                }
                Some(outcome) => {
                    job.state = match &outcome {
                        Ok(output) if output.cancelled => JobState::Cancelled,
                        Ok(output) if output.degraded.is_some() => JobState::Degraded,
                        Ok(_) => JobState::Done,
                        Err(_) => JobState::Failed,
                    };
                    job.outcome = Some(outcome);
                    job.handle = None;
                    tenants.release(&job.tenant);
                    newly_terminal.push(id);
                }
            }
        }
        inner.terminal_order.extend(newly_terminal.iter().copied());
        while inner.terminal_order.len() > self.max_terminal {
            if let Some(oldest) = inner.terminal_order.pop_front() {
                inner.jobs.remove(&oldest);
                inner.evicted += 1;
            }
        }
        newly_terminal
    }

    /// The job's current status, if it is still known.
    pub fn status(&self, id: u64) -> Option<JobStatusView> {
        let inner = self.inner.lock();
        inner.jobs.get(&id).map(|job| JobStatusView {
            id,
            tenant: job.tenant.clone(),
            workload: job.workload.clone(),
            state: job.state,
        })
    }

    /// The terminal result of a job.
    ///
    /// # Errors
    ///
    /// [`ServeError::NotFound`] for unknown (or evicted) ids,
    /// [`ServeError::Conflict`] while the job is still queued or
    /// running, [`ServeError::JobFailed`] when the job ended in a typed
    /// engine failure.
    pub fn result(&self, id: u64) -> Result<JobResultView, ServeError> {
        let inner = self.inner.lock();
        let Some(job) = inner.jobs.get(&id) else {
            return Err(ServeError::NotFound {
                what: format!("job {id}"),
            });
        };
        if !job.state.is_terminal() {
            return Err(ServeError::Conflict {
                reason: format!(
                    "job {id} is still {}; poll GET /v1/jobs/{id} until terminal",
                    job.state.name()
                ),
            });
        }
        let output = match &job.outcome {
            Some(Ok(output)) => output,
            Some(Err(err)) => {
                return Err(ServeError::JobFailed {
                    variant: err.variant().to_string(),
                    message: err.to_string(),
                });
            }
            // Terminal implies an outcome was stored; defensive only.
            None => {
                return Err(ServeError::NotFound {
                    what: format!("output of job {id}"),
                });
            }
        };
        let marginals = job.diag.as_ref().and_then(|d| d.merged_marginals());
        Ok(JobResultView {
            id,
            state: job.state,
            width: job.width,
            height: job.height,
            labels: output.labels.iter().map(|l| l.value()).collect(),
            map_estimate: output
                .map_estimate
                .as_ref()
                .map(|m| m.iter().map(|l| l.value()).collect()),
            iterations_run: output.iterations_run,
            cancelled: output.cancelled,
            degraded: output
                .degraded
                .as_ref()
                .map(|d| (d.failed_over_at, d.units_lost)),
            marginal_map: marginals.as_ref().map(|m| m.map_label_indices()),
            entropy: marginals.as_ref().map(|m| m.entropy_map()),
        })
    }

    /// Requests cancellation of a live job.
    ///
    /// # Errors
    ///
    /// [`ServeError::NotFound`] for unknown ids,
    /// [`ServeError::Conflict`] when the job is already terminal.
    pub fn cancel(&self, id: u64) -> Result<(), ServeError> {
        let inner = self.inner.lock();
        let Some(job) = inner.jobs.get(&id) else {
            return Err(ServeError::NotFound {
                what: format!("job {id}"),
            });
        };
        match &job.handle {
            Some(handle) if !job.state.is_terminal() => {
                handle.cancel();
                Ok(())
            }
            _ => Err(ServeError::Conflict {
                reason: format!("job {id} is already {}", job.state.name()),
            }),
        }
    }

    /// Store counters for `/metrics`.
    pub fn snapshot(&self) -> StoreSnapshot {
        let inner = self.inner.lock();
        let terminal = inner.terminal_order.len() as u64;
        StoreSnapshot {
            live: inner.jobs.len() as u64 - terminal,
            terminal,
            evicted: inner.evicted,
        }
    }
}

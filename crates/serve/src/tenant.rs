//! Multi-tenant admission: registered tenants, per-tenant quotas, and
//! two priority classes.
//!
//! The registry is the first of the two admission gates a job passes
//! (the second is the engine's own bounded queue). Its decisions are
//! *per tenant*: a tenant at its in-flight cap gets
//! [`ServeError::Quota`] (429) while every other tenant keeps
//! submitting. Engine backpressure is the opposite — global — and is
//! deliberately NOT decided here; the router maps
//! [`TrySubmitError::Full`](mogs_engine::TrySubmitError) onto
//! [`ServeError::Backpressure`] (503) so the two failure modes stay
//! distinguishable all the way to the client's status code.
//!
//! Priority is a two-class scheme over the engine's single queue:
//! [`Priority::Interactive`] jobs may use the whole queue, while
//! [`Priority::Batch`] jobs are refused (as backpressure, 503) once the
//! queue depth reaches the configured batch ceiling — a reserve of
//! headroom for interactive tenants rather than true preemption, which
//! the engine's FIFO scheduler does not offer.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::error::ServeError;

/// Admission priority class for a tenant's jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// May fill the engine queue to capacity.
    Interactive,
    /// Refused once the queue depth reaches the batch ceiling, keeping
    /// headroom free for interactive tenants.
    Batch,
}

impl Priority {
    /// Stable lowercase name, used as a Prometheus label value.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        }
    }
}

/// Per-tenant admission limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Jobs this tenant may have queued or running at once.
    pub max_in_flight: usize,
    /// Largest field (in sites) one job may request.
    pub max_sites_per_job: usize,
    /// The tenant's priority class.
    pub priority: Priority,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            max_in_flight: 4,
            max_sites_per_job: 1 << 20,
            priority: Priority::Interactive,
        }
    }
}

#[derive(Debug)]
struct TenantState {
    quota: TenantQuota,
    in_flight: usize,
    requests_total: u64,
    rejected_quota: u64,
    rejected_backpressure: u64,
}

/// Point-in-time copy of one tenant's counters, for `/metrics`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// The tenant id.
    pub name: String,
    /// The tenant's priority class.
    pub priority: Priority,
    /// Jobs currently queued or running.
    pub in_flight: usize,
    /// HTTP requests attributed to this tenant.
    pub requests_total: u64,
    /// Submissions refused by this tenant's own quota (429s).
    pub rejected_quota: u64,
    /// Submissions refused by engine backpressure or the batch reserve
    /// while attributed to this tenant (503s).
    pub rejected_backpressure: u64,
}

/// The set of tenants allowed to submit, with their quotas and
/// counters.
///
/// All state sits behind one mutex: admission is a handful of integer
/// comparisons, never I/O, so contention is irrelevant next to the
/// per-job MRF construction it gates.
#[derive(Debug, Default)]
pub struct TenantRegistry {
    tenants: Mutex<HashMap<String, TenantState>>,
}

impl TenantRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        TenantRegistry::default()
    }

    /// Registers (or reconfigures) a tenant. Counters survive a
    /// reconfigure; only the quota is replaced.
    pub fn register(&self, name: &str, quota: TenantQuota) {
        let mut tenants = self.tenants.lock();
        tenants
            .entry(name.to_string())
            .and_modify(|state| state.quota = quota)
            .or_insert(TenantState {
                quota,
                in_flight: 0,
                requests_total: 0,
                rejected_quota: 0,
                rejected_backpressure: 0,
            });
    }

    /// The tenant's priority class, if registered.
    pub fn priority(&self, tenant: &str) -> Option<Priority> {
        self.tenants
            .lock()
            .get(tenant)
            .map(|state| state.quota.priority)
    }

    /// Counts one HTTP request against a tenant. Unknown tenants are
    /// ignored (the request is about to 403 anyway).
    pub fn record_request(&self, tenant: &str) {
        if let Some(state) = self.tenants.lock().get_mut(tenant) {
            state.requests_total += 1;
        }
    }

    /// Runs the per-tenant admission checks and, on success, charges
    /// one in-flight slot.
    ///
    /// The slot must be returned exactly once: via [`release`] when the
    /// job reaches a terminal state, or via [`record_backpressure`] /
    /// [`release`] when the engine refuses the submission after this
    /// gate passed.
    ///
    /// [`release`]: TenantRegistry::release
    /// [`record_backpressure`]: TenantRegistry::record_backpressure
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] for unregistered tenants,
    /// [`ServeError::Quota`] when the in-flight cap or per-job site cap
    /// rejects the job.
    pub fn admit(&self, tenant: &str, sites: usize, retry_after_s: u64) -> Result<(), ServeError> {
        let mut tenants = self.tenants.lock();
        let Some(state) = tenants.get_mut(tenant) else {
            return Err(ServeError::UnknownTenant {
                tenant: tenant.to_string(),
            });
        };
        if sites > state.quota.max_sites_per_job {
            state.rejected_quota += 1;
            return Err(ServeError::Quota {
                tenant: tenant.to_string(),
                reason: format!(
                    "job of {sites} sites exceeds the per-job cap of {}",
                    state.quota.max_sites_per_job
                ),
                retry_after_s,
            });
        }
        if state.in_flight >= state.quota.max_in_flight {
            state.rejected_quota += 1;
            return Err(ServeError::Quota {
                tenant: tenant.to_string(),
                reason: format!(
                    "{} in-flight jobs at the cap of {}",
                    state.in_flight, state.quota.max_in_flight
                ),
                retry_after_s,
            });
        }
        state.in_flight += 1;
        Ok(())
    }

    /// Returns an in-flight slot (job reached a terminal state, or the
    /// engine refused it after admission).
    pub fn release(&self, tenant: &str) {
        if let Some(state) = self.tenants.lock().get_mut(tenant) {
            state.in_flight = state.in_flight.saturating_sub(1);
        }
    }

    /// Counts one engine-backpressure refusal against a tenant (the
    /// 503 path; the quota counter is charged inside [`admit`]).
    ///
    /// [`admit`]: TenantRegistry::admit
    pub fn record_backpressure(&self, tenant: &str) {
        if let Some(state) = self.tenants.lock().get_mut(tenant) {
            state.rejected_backpressure += 1;
        }
    }

    /// Copies every tenant's counters, sorted by name so `/metrics`
    /// output is stable.
    pub fn snapshot(&self) -> Vec<TenantSnapshot> {
        let tenants = self.tenants.lock();
        let mut out: Vec<TenantSnapshot> = tenants
            .iter()
            .map(|(name, state)| TenantSnapshot {
                name: name.clone(),
                priority: state.quota.priority,
                in_flight: state.in_flight,
                requests_total: state.requests_total,
                rejected_quota: state.rejected_quota,
                rejected_backpressure: state.rejected_backpressure,
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> TenantRegistry {
        let reg = TenantRegistry::new();
        reg.register(
            "acme",
            TenantQuota {
                max_in_flight: 2,
                max_sites_per_job: 100,
                priority: Priority::Interactive,
            },
        );
        reg
    }

    #[test]
    fn unknown_tenants_are_403_not_quota() {
        let err = registry().admit("ghost", 1, 1).expect_err("unregistered");
        assert_eq!(err.status(), 403);
    }

    #[test]
    fn in_flight_cap_rejects_with_429_and_release_reopens() {
        let reg = registry();
        reg.admit("acme", 10, 1).expect("slot 1");
        reg.admit("acme", 10, 1).expect("slot 2");
        let err = reg.admit("acme", 10, 1).expect_err("at the cap");
        assert_eq!(err.status(), 429);
        reg.release("acme");
        reg.admit("acme", 10, 1).expect("slot reopened");
        let snap = &reg.snapshot()[0];
        assert_eq!(snap.in_flight, 2);
        assert_eq!(snap.rejected_quota, 1);
    }

    #[test]
    fn oversized_jobs_reject_without_charging_a_slot() {
        let reg = registry();
        let err = reg.admit("acme", 101, 3).expect_err("too many sites");
        assert_eq!(err.status(), 429);
        assert_eq!(err.retry_after_s(), Some(3));
        assert_eq!(reg.snapshot()[0].in_flight, 0);
    }

    #[test]
    fn quotas_are_isolated_between_tenants() {
        let reg = registry();
        reg.register("beta", TenantQuota::default());
        reg.admit("acme", 1, 1).expect("acme 1");
        reg.admit("acme", 1, 1).expect("acme 2");
        assert_eq!(
            reg.admit("acme", 1, 1).expect_err("acme full").status(),
            429
        );
        reg.admit("beta", 1, 1).expect("beta unaffected");
    }

    #[test]
    fn snapshots_are_name_sorted_and_count_requests() {
        let reg = registry();
        reg.register("beta", TenantQuota::default());
        reg.record_request("beta");
        reg.record_request("beta");
        reg.record_request("ghost"); // ignored
        let snaps = reg.snapshot();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].name, "acme");
        assert_eq!(snaps[1].name, "beta");
        assert_eq!(snaps[1].requests_total, 2);
    }
}

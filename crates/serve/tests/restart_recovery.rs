//! Restart durability over loopback: a job submitted to one server
//! process survives that process and finishes under the next one.
//!
//! The first server checkpoints every sweep into a shared directory and
//! is then torn down without ever observing the job's terminal state
//! (no status poll → no store refresh → the checkpoints stay on disk,
//! exactly as a crash would leave them; the engine drain stands in for
//! the sweeps that happened before the "crash"). The second server
//! binds over the same directory and must:
//!
//! * re-admit the job under its **original serve id** with the same
//!   tenant accounting ([`Server::recovery`] reports it);
//! * finish it with a label map **bit-identical** to a direct engine
//!   run of the same request (the tentpole resume contract, carried
//!   through HTTP);
//! * delete the checkpoints once the terminal state is observed, and
//!   hand out fresh ids *after* the recovered one.
//!
//! A second test pins the discard path: a checkpoint whose tenant is
//! unknown to the new process is reported, not resumed — and left on
//! disk for the operator.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mogs_ckpt::CheckpointStore;
use mogs_engine::{Engine, EngineConfig};
use mogs_gibbs::SoftmaxGibbs;
use mogs_serve::{
    http_request, job_key, CheckpointSetup, ClientResponse, JobRequest, Priority, ServeConfig,
    Server, TenantQuota, TenantRegistry,
};

const RETAIN: usize = 4;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mogs-serve-restart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn engine() -> Arc<Engine> {
    Arc::new(Engine::new(EngineConfig {
        workers: 2,
        queue_capacity: 8,
        max_active_jobs: 2,
        phase_deadline: None,
        max_phase_retries: 0,
    }))
}

fn registry(tenant: &str) -> Arc<TenantRegistry> {
    let tenants = TenantRegistry::new();
    tenants.register(
        tenant,
        TenantQuota {
            max_in_flight: 4,
            max_sites_per_job: 1 << 16,
            priority: Priority::Interactive,
        },
    );
    Arc::new(tenants)
}

fn config(dir: &std::path::Path) -> ServeConfig {
    ServeConfig {
        checkpoint: Some(CheckpointSetup {
            dir: dir.to_path_buf(),
            every_sweeps: 1,
            retain: RETAIN,
            gc_max_age: None,
        }),
        ..ServeConfig::default()
    }
}

fn get(addr: SocketAddr, path: &str) -> ClientResponse {
    http_request(addr, "GET", path, None).expect("GET")
}

fn wait_terminal(addr: SocketAddr, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let poll = get(addr, &format!("/v1/jobs/{id}"));
        assert_eq!(poll.status, 200, "poll failed: {}", poll.body_text());
        let body = poll.body_text();
        for terminal in ["done", "degraded", "failed", "cancelled"] {
            if body.contains(&format!("\"state\":\"{terminal}\"")) {
                return terminal.to_string();
            }
        }
        assert!(Instant::now() < deadline, "job {id} never became terminal");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn extract_id(body: &str) -> u64 {
    let start = body.find("\"id\":").expect("id in body") + 5;
    body[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric id")
}

fn json_int_array(body: &str, key: &str) -> Vec<u8> {
    let marker = format!("\"{key}\":[");
    let start = body
        .find(&marker)
        .unwrap_or_else(|| panic!("`{key}` in {body}"))
        + marker.len();
    let end = body[start..].find(']').expect("closing bracket") + start;
    body[start..end]
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| s.trim().parse().expect("integer element"))
        .collect()
}

/// Waits until at least one checkpoint for `key` is on disk.
fn wait_for_checkpoint(dir: &std::path::Path, key: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let store = CheckpointStore::open(dir, RETAIN).expect("open checkpoint dir");
        if store.latest(key).expect("read latest").is_some() {
            return;
        }
        assert!(Instant::now() < deadline, "no checkpoint for `{key}`");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn job_survives_a_server_restart_bit_identically() {
    let dir = temp_dir("resume");
    let spec_json = r#"{"tenant":"acme","workload":"segmentation",
        "width":16,"height":16,"iterations":12,"seed":42,"threads":2}"#;

    // Process 1: submit, wait for a durable checkpoint, tear down
    // without ever polling the job (so nothing observes terminal and
    // nothing deletes the checkpoints — crash semantics).
    let engine1 = engine();
    let server1 = Server::bind(
        "127.0.0.1:0",
        config(&dir),
        Arc::clone(&engine1),
        registry("acme"),
    )
    .expect("bind first server");
    assert_eq!(
        server1.recovery().expect("checkpointing on"),
        &mogs_serve::RecoveryReport::default(),
        "an empty directory recovers nothing"
    );
    let submitted =
        http_request(server1.local_addr(), "POST", "/v1/jobs", Some(spec_json)).expect("POST");
    assert_eq!(submitted.status, 201, "{}", submitted.body_text());
    let id = extract_id(&submitted.body_text());
    assert_eq!(id, 1);
    wait_for_checkpoint(&dir, &job_key(id));
    server1.shutdown();
    match Arc::try_unwrap(engine1) {
        Ok(engine) => engine.shutdown(),
        Err(_) => panic!("server shutdown must release its engine handle"),
    }

    // Process 2: recovery re-admits job 1 before serving traffic.
    let engine2 = engine();
    let server2 = Server::bind(
        "127.0.0.1:0",
        config(&dir),
        Arc::clone(&engine2),
        registry("acme"),
    )
    .expect("bind second server");
    let addr = server2.local_addr();
    let report = server2.recovery().expect("checkpointing on");
    assert_eq!(report.resumed, vec![id], "job 1 re-admitted: {report:?}");
    assert!(report.discarded.is_empty(), "{report:?}");

    assert_eq!(wait_terminal(addr, id), "done");
    let result = get(addr, &format!("/v1/jobs/{id}/result"));
    assert_eq!(result.status, 200, "{}", result.body_text());
    let served_labels = json_int_array(&result.body_text(), "labels");

    // Direct path: the identical request on a fresh engine. Resume from
    // any intermediate sweep must land on the same final labeling.
    let request = JobRequest::parse(spec_json).expect("same spec");
    let job =
        request
            .segmentation()
            .engine_job(SoftmaxGibbs::new(), request.iterations, request.seed);
    let direct = engine()
        .try_submit(job)
        .expect("direct submit")
        .wait_result()
        .expect("direct job completes");
    let direct_labels: Vec<u8> = direct.labels.iter().map(|l| l.value()).collect();
    assert_eq!(
        served_labels, direct_labels,
        "recovered job must be bit-identical to the uninterrupted run"
    );

    // The refresh that observed the terminal transition deleted the
    // job's checkpoints — done jobs must not be resurrected.
    let store = CheckpointStore::open(&dir, RETAIN).expect("open checkpoint dir");
    assert!(
        store.latest(&job_key(id)).expect("read latest").is_none(),
        "terminal job's checkpoints must be deleted"
    );

    // The id space continues past the recovered job.
    let next = http_request(addr, "POST", "/v1/jobs", Some(spec_json)).expect("POST");
    assert_eq!(next.status, 201, "{}", next.body_text());
    assert_eq!(extract_id(&next.body_text()), id + 1);
    server2.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_tenant_checkpoints_are_discarded_not_resumed() {
    let dir = temp_dir("discard");
    let spec_json = r#"{"tenant":"ghost","workload":"segmentation",
        "width":8,"height":8,"iterations":8,"seed":7}"#;

    let engine1 = engine();
    let server1 = Server::bind(
        "127.0.0.1:0",
        config(&dir),
        Arc::clone(&engine1),
        registry("ghost"),
    )
    .expect("bind first server");
    let submitted =
        http_request(server1.local_addr(), "POST", "/v1/jobs", Some(spec_json)).expect("POST");
    assert_eq!(submitted.status, 201, "{}", submitted.body_text());
    let id = extract_id(&submitted.body_text());
    wait_for_checkpoint(&dir, &job_key(id));
    server1.shutdown();
    drop(engine1);

    // The new process does not know tenant `ghost`: the checkpoint is
    // reported as discarded and stays on disk for the operator.
    let server2 = Server::bind("127.0.0.1:0", config(&dir), engine(), registry("acme"))
        .expect("bind second server");
    let report = server2.recovery().expect("checkpointing on");
    assert!(report.resumed.is_empty(), "{report:?}");
    assert_eq!(report.discarded.len(), 1, "{report:?}");
    assert_eq!(report.discarded[0].0, job_key(id));
    let store = CheckpointStore::open(&dir, RETAIN).expect("open checkpoint dir");
    assert!(
        store.latest(&job_key(id)).expect("read latest").is_some(),
        "discarded checkpoints must stay on disk"
    );
    server2.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

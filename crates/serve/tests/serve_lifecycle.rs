//! Full HTTP round-trips against a real listener on loopback.
//!
//! Every test binds its own server (port 0) over its own engine, so
//! they run in parallel without interference. The headline assertions:
//!
//! * a served segmentation job's label map is **bit-identical** to the
//!   direct engine path for the same spec and seed (the engine's
//!   determinism contract carried through HTTP);
//! * cancellation mid-flight returns 200 and the job lands in the
//!   terminal `cancelled` state;
//! * quota exhaustion answers 429 and engine queue saturation answers
//!   503, both with `Retry-After`;
//! * malformed JSON and oversized bodies get their 4xx without wedging
//!   the connection pool — follow-up requests on fresh connections
//!   still succeed.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mogs_engine::{Engine, EngineConfig};
use mogs_gibbs::SoftmaxGibbs;
use mogs_serve::{
    http_request, ClientResponse, JobRequest, Priority, ServeConfig, Server, TenantQuota,
    TenantRegistry,
};

fn engine(queue_capacity: usize, max_active_jobs: usize) -> Arc<Engine> {
    Arc::new(Engine::new(EngineConfig {
        workers: 2,
        queue_capacity,
        max_active_jobs,
        phase_deadline: None,
        max_phase_retries: 0,
    }))
}

fn quota(max_in_flight: usize) -> TenantQuota {
    TenantQuota {
        max_in_flight,
        max_sites_per_job: 1 << 16,
        priority: Priority::Interactive,
    }
}

fn serve(engine: Arc<Engine>, tenants: TenantRegistry, config: ServeConfig) -> Server {
    Server::bind("127.0.0.1:0", config, engine, Arc::new(tenants)).expect("bind loopback")
}

fn get(addr: SocketAddr, path: &str) -> ClientResponse {
    http_request(addr, "GET", path, None).expect("GET")
}

fn post_job(addr: SocketAddr, body: &str) -> ClientResponse {
    http_request(addr, "POST", "/v1/jobs", Some(body)).expect("POST")
}

/// Polls `GET /v1/jobs/{id}` until the state is terminal (or a 4xx
/// ends the wait), with a hard deadline so a hang fails instead of
/// wedging CI.
fn wait_terminal(addr: SocketAddr, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let poll = get(addr, &format!("/v1/jobs/{id}"));
        assert_eq!(poll.status, 200, "poll failed: {}", poll.body_text());
        let body = poll.body_text();
        for terminal in ["done", "degraded", "failed", "cancelled"] {
            if body.contains(&format!("\"state\":\"{terminal}\"")) {
                return terminal.to_string();
            }
        }
        assert!(Instant::now() < deadline, "job {id} never became terminal");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Extracts a JSON array of integers by key from a response body.
fn json_int_array(body: &str, key: &str) -> Vec<u8> {
    let marker = format!("\"{key}\":[");
    let start = body
        .find(&marker)
        .unwrap_or_else(|| panic!("`{key}` in {body}"))
        + marker.len();
    let end = body[start..].find(']').expect("closing bracket") + start;
    body[start..end]
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| s.trim().parse().expect("integer element"))
        .collect()
}

fn extract_id(body: &str) -> u64 {
    let start = body.find("\"id\":").expect("id in body") + 5;
    body[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric id")
}

#[test]
fn served_labels_are_bit_identical_to_the_direct_engine_path() {
    let shared = engine(8, 2);
    let tenants = TenantRegistry::new();
    tenants.register("acme", quota(4));
    let server = serve(Arc::clone(&shared), tenants, ServeConfig::default());
    let addr = server.local_addr();

    let spec_json = r#"{"tenant":"acme","workload":"segmentation",
        "width":16,"height":16,"iterations":12,"seed":42,"threads":2}"#;
    let submitted = post_job(addr, spec_json);
    assert_eq!(submitted.status, 201, "{}", submitted.body_text());
    let id = extract_id(&submitted.body_text());
    assert_eq!(wait_terminal(addr, id), "done");
    let result = get(addr, &format!("/v1/jobs/{id}/result"));
    assert_eq!(result.status, 200, "{}", result.body_text());
    let served_labels = json_int_array(&result.body_text(), "labels");

    // Direct path: the identical model and job, straight into a fresh
    // engine — determinism is per (seed, threads), not per engine
    // instance, exactly like `run_chains_on_engine`'s contract.
    let direct_engine = engine(8, 2);
    let request = JobRequest::parse(spec_json).expect("same spec");
    let job =
        request
            .segmentation()
            .engine_job(SoftmaxGibbs::new(), request.iterations, request.seed);
    let direct = direct_engine
        .try_submit(job)
        .expect("direct submit")
        .wait_result()
        .expect("direct job completes");
    let direct_labels: Vec<u8> = direct.labels.iter().map(|l| l.value()).collect();

    assert_eq!(
        served_labels, direct_labels,
        "served label map must be bit-identical to the direct engine path"
    );
    server.shutdown();
}

#[test]
fn diag_jobs_return_marginal_and_entropy_maps() {
    let shared = engine(8, 2);
    let tenants = TenantRegistry::new();
    tenants.register("acme", quota(4));
    let server = serve(shared, tenants, ServeConfig::default());
    let addr = server.local_addr();

    let submitted = post_job(
        addr,
        r#"{"tenant":"acme","workload":"segmentation","width":8,"height":8,
            "iterations":10,"seed":7,"diag":true}"#,
    );
    assert_eq!(submitted.status, 201, "{}", submitted.body_text());
    let id = extract_id(&submitted.body_text());
    assert_eq!(wait_terminal(addr, id), "done");
    let body = get(addr, &format!("/v1/jobs/{id}/result")).body_text();
    let marginal = json_int_array(&body, "marginal_map");
    assert_eq!(marginal.len(), 64, "one posterior mode per site");
    assert!(
        body.contains("\"entropy\":["),
        "entropy map present: {body}"
    );
    server.shutdown();
}

#[test]
fn cancel_mid_flight_returns_200_then_terminal_cancelled() {
    let shared = engine(8, 2);
    let tenants = TenantRegistry::new();
    tenants.register("acme", quota(4));
    let server = serve(shared, tenants, ServeConfig::default());
    let addr = server.local_addr();

    let submitted = post_job(
        addr,
        r#"{"tenant":"acme","workload":"segmentation","width":32,"height":32,
            "iterations":200000,"seed":1}"#,
    );
    assert_eq!(submitted.status, 201, "{}", submitted.body_text());
    let id = extract_id(&submitted.body_text());
    let cancelled = http_request(addr, "DELETE", &format!("/v1/jobs/{id}"), None).expect("DELETE");
    assert_eq!(cancelled.status, 200, "{}", cancelled.body_text());
    assert_eq!(wait_terminal(addr, id), "cancelled");
    // A cancelled job still serves its partial labeling.
    let result = get(addr, &format!("/v1/jobs/{id}/result"));
    assert_eq!(result.status, 200, "{}", result.body_text());
    assert!(result.body_text().contains("\"cancelled\":true"));
    // Cancelling again conflicts with the terminal state.
    let again = http_request(addr, "DELETE", &format!("/v1/jobs/{id}"), None).expect("DELETE");
    assert_eq!(again.status, 409, "{}", again.body_text());
    server.shutdown();
}

#[test]
fn quota_exhaustion_answers_429_with_retry_after() {
    let shared = engine(8, 4);
    let tenants = TenantRegistry::new();
    tenants.register("small", quota(1));
    tenants.register("other", quota(4));
    let server = serve(shared, tenants, ServeConfig::default());
    let addr = server.local_addr();

    let long_job = r#"{"tenant":"small","workload":"segmentation","width":32,"height":32,
        "iterations":200000,"seed":2}"#;
    let first = post_job(addr, long_job);
    assert_eq!(first.status, 201, "{}", first.body_text());
    let id = extract_id(&first.body_text());
    let second = post_job(addr, long_job);
    assert_eq!(second.status, 429, "{}", second.body_text());
    assert!(
        second.header_value("retry-after").is_some(),
        "429 must carry Retry-After"
    );
    assert!(second.body_text().contains("\"error\":\"quota\""));
    // Another tenant is unaffected by `small`'s quota.
    let other = post_job(
        addr,
        r#"{"tenant":"other","workload":"segmentation","width":8,"height":8,
            "iterations":4,"seed":3}"#,
    );
    assert_eq!(other.status, 201, "{}", other.body_text());
    let _ = http_request(addr, "DELETE", &format!("/v1/jobs/{id}"), None);
    server.shutdown();
}

#[test]
fn engine_queue_saturation_answers_503_with_retry_after() {
    // One worker, one active job, one queue slot: the third long job
    // must hit TrySubmitError::Full and surface as backpressure.
    let shared = Arc::new(Engine::new(EngineConfig {
        workers: 1,
        queue_capacity: 1,
        max_active_jobs: 1,
        phase_deadline: None,
        max_phase_retries: 0,
    }));
    let tenants = TenantRegistry::new();
    tenants.register("acme", quota(32));
    let server = serve(shared, tenants, ServeConfig::default());
    let addr = server.local_addr();

    let long_job = r#"{"tenant":"acme","workload":"segmentation","width":32,"height":32,
        "iterations":200000,"seed":4}"#;
    let mut ids = Vec::new();
    let mut saw_backpressure = false;
    for _ in 0..6 {
        let response = post_job(addr, long_job);
        match response.status {
            201 => ids.push(extract_id(&response.body_text())),
            503 => {
                assert!(
                    response.header_value("retry-after").is_some(),
                    "503 must carry Retry-After"
                );
                assert!(response.body_text().contains("\"error\":\"backpressure\""));
                saw_backpressure = true;
                break;
            }
            other => panic!("unexpected status {other}: {}", response.body_text()),
        }
    }
    assert!(saw_backpressure, "queue never saturated in 6 submissions");
    for id in ids {
        let _ = http_request(addr, "DELETE", &format!("/v1/jobs/{id}"), None);
    }
    server.shutdown();
}

#[test]
fn malformed_and_oversized_bodies_get_4xx_without_wedging_the_pool() {
    let shared = engine(8, 2);
    let tenants = TenantRegistry::new();
    tenants.register("acme", quota(8));
    let server = serve(
        shared,
        tenants,
        ServeConfig {
            max_body_bytes: 512,
            ..ServeConfig::default()
        },
    );
    let addr = server.local_addr();

    for garbage in ["{not json", "", "[]", r#"{"tenant":42}"#, "\u{1}\u{2}"] {
        let response = post_job(addr, garbage);
        assert_eq!(response.status, 400, "garbage {garbage:?}");
    }
    let oversized = "x".repeat(4096);
    let response = post_job(addr, &oversized);
    assert_eq!(response.status, 413, "{}", response.body_text());
    assert!(response.body_text().contains("payload-too-large"));

    // The pool still serves real work after a burst of bad requests.
    let good = post_job(
        addr,
        r#"{"tenant":"acme","workload":"segmentation","width":8,"height":8,
            "iterations":4,"seed":5}"#,
    );
    assert_eq!(good.status, 201, "{}", good.body_text());
    let id = extract_id(&good.body_text());
    assert_eq!(wait_terminal(addr, id), "done");
    server.shutdown();
}

#[test]
fn metrics_endpoint_is_valid_prometheus_with_both_layers() {
    let shared = engine(8, 2);
    let tenants = TenantRegistry::new();
    tenants.register("acme", quota(4));
    let server = serve(shared, tenants, ServeConfig::default());
    let addr = server.local_addr();

    let submitted = post_job(
        addr,
        r#"{"tenant":"acme","workload":"segmentation","width":8,"height":8,
            "iterations":4,"seed":6}"#,
    );
    let id = extract_id(&submitted.body_text());
    assert_eq!(wait_terminal(addr, id), "done");
    let response = get(addr, "/metrics");
    assert_eq!(response.status, 200);
    let text = response.body_text();
    mogs_serve::validate_exposition(&text).expect("valid Prometheus text");
    assert!(
        text.contains("mogs_engine_jobs_completed_total 1"),
        "{text}"
    );
    assert!(text.contains("mogs_engine_queue_depth_hwm"), "{text}");
    assert!(text.contains("# TYPE mogs_engine_phase_latency_seconds histogram"));
    assert!(text.contains("mogs_serve_requests_total{tenant=\"acme\"}"));
    assert!(text.contains("# TYPE mogs_serve_request_latency_seconds histogram"));
    server.shutdown();
}

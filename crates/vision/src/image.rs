//! Grayscale images and PGM I/O.
//!
//! The applications work on 8-bit grayscale images. For the RSU-G data
//! path, intensities are reduced to the unit's 6-bit inputs with
//! [`GrayImage::to_6bit`]. Binary (`P5`) and ASCII (`P2`) PGM are supported
//! so inputs and results can be inspected with any image viewer.

use std::fmt;
use std::io::{self, BufRead, Read, Write};

/// An 8-bit grayscale image in row-major layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl GrayImage {
    /// An image filled with a constant value.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn filled(width: usize, height: usize, value: u8) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        GrayImage {
            width,
            height,
            pixels: vec![value; width * height],
        }
    }

    /// Builds an image by evaluating `f(x, y)` at every pixel.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> u8) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        let mut pixels = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                pixels.push(f(x, y));
            }
        }
        GrayImage {
            width,
            height,
            pixels,
        }
    }

    /// Wraps existing pixel data.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height` or a dimension is zero.
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<u8>) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        assert_eq!(
            pixels.len(),
            width * height,
            "pixel buffer must match dimensions"
        );
        GrayImage {
            width,
            height,
            pixels,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total pixel count.
    pub fn len(&self) -> usize {
        self.pixels.len()
    }

    /// Whether the image has no pixels (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.pixels.is_empty()
    }

    /// The raw pixel buffer.
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn get(&self, x: usize, y: usize) -> u8 {
        assert!(
            x < self.width && y < self.height,
            "({x}, {y}) out of bounds"
        );
        self.pixels[y * self.width + x]
    }

    /// Pixel at `(x, y)` with coordinates clamped to the image border
    /// (the standard boundary policy for window searches).
    pub fn get_clamped(&self, x: isize, y: isize) -> u8 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.pixels[cy * self.width + cx]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn set(&mut self, x: usize, y: usize, value: u8) {
        assert!(
            x < self.width && y < self.height,
            "({x}, {y}) out of bounds"
        );
        self.pixels[y * self.width + x] = value;
    }

    /// The image with every pixel reduced to the RSU-G's 6-bit data range
    /// (`value >> 2`).
    pub fn to_6bit(&self) -> GrayImage {
        GrayImage {
            width: self.width,
            height: self.height,
            pixels: self.pixels.iter().map(|p| p >> 2).collect(),
        }
    }

    /// Writes binary (`P5`) PGM.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_pgm<W: Write>(&self, mut w: W) -> io::Result<()> {
        write!(w, "P5\n{} {}\n255\n", self.width, self.height)?;
        w.write_all(&self.pixels)
    }

    /// Reads binary (`P5`) PGM with a 255 maxval.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for malformed headers or truncated pixel data.
    pub fn read_pgm<R: Read + BufRead>(mut r: R) -> io::Result<Self> {
        let mut header = String::new();
        // Read "P5", width, height, maxval tokens, skipping comments.
        let mut tokens = Vec::new();
        while tokens.len() < 4 {
            header.clear();
            if r.read_line(&mut header)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "truncated PGM header",
                ));
            }
            let line = header.split('#').next().unwrap_or("");
            tokens.extend(line.split_whitespace().map(str::to_owned));
        }
        if tokens[0] != "P5" {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a binary PGM (P5)",
            ));
        }
        let parse = |s: &str| {
            s.parse::<usize>()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad PGM dimension"))
        };
        let (width, height, maxval) = (parse(&tokens[1])?, parse(&tokens[2])?, parse(&tokens[3])?);
        if maxval != 255 || width == 0 || height == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unsupported PGM format",
            ));
        }
        let mut pixels = vec![0u8; width * height];
        r.read_exact(&mut pixels)?;
        Ok(GrayImage {
            width,
            height,
            pixels,
        })
    }

    /// Renders the image as coarse ASCII art (useful for terminal output of
    /// small results, e.g. the prototype's 50×67 segmentation).
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let mut out = String::with_capacity((self.width + 1) * self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                let v = usize::from(self.get(x, y));
                out.push(RAMP[v * (RAMP.len() - 1) / 255] as char);
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for GrayImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} grayscale image", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn from_fn_layout() {
        let img = GrayImage::from_fn(3, 2, |x, y| (x + 10 * y) as u8);
        assert_eq!(img.get(2, 1), 12);
        assert_eq!(img.pixels(), &[0, 1, 2, 10, 11, 12]);
    }

    #[test]
    fn clamped_access() {
        let img = GrayImage::from_fn(4, 4, |x, y| (x * 4 + y) as u8);
        assert_eq!(img.get_clamped(-3, -3), img.get(0, 0));
        assert_eq!(img.get_clamped(10, 1), img.get(3, 1));
    }

    #[test]
    fn six_bit_reduction() {
        let img = GrayImage::from_pixels(2, 1, vec![255, 3]);
        assert_eq!(img.to_6bit().pixels(), &[63, 0]);
    }

    #[test]
    fn pgm_round_trip() {
        let img = GrayImage::from_fn(5, 3, |x, y| (x * 50 + y * 10) as u8);
        let mut buf = Vec::new();
        img.write_pgm(&mut buf).unwrap();
        let restored = GrayImage::read_pgm(Cursor::new(buf)).unwrap();
        assert_eq!(img, restored);
    }

    #[test]
    fn pgm_rejects_garbage() {
        assert!(GrayImage::read_pgm(Cursor::new(b"P3\n2 2\n255\nxxxx".to_vec())).is_err());
        assert!(GrayImage::read_pgm(Cursor::new(b"P5\n2 2\n255\nx".to_vec())).is_err());
        assert!(GrayImage::read_pgm(Cursor::new(Vec::new())).is_err());
    }

    #[test]
    fn pgm_skips_comments() {
        let data = b"P5\n# a comment\n2 1\n255\nAB".to_vec();
        let img = GrayImage::read_pgm(Cursor::new(data)).unwrap();
        assert_eq!(img.pixels(), b"AB");
    }

    #[test]
    fn ascii_render_shape() {
        let img = GrayImage::filled(4, 2, 255);
        let art = img.to_ascii();
        assert_eq!(art, "@@@@\n@@@@\n");
    }

    #[test]
    #[should_panic(expected = "pixel buffer must match dimensions")]
    fn bad_buffer_size_panics() {
        GrayImage::from_pixels(2, 2, vec![0; 3]);
    }
}

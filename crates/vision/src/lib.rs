//! # mogs-vision — low-level vision applications on MRF-MCMC
//!
//! The application layer of the `mogs` workspace: the three workloads the
//! paper evaluates (§8.1), each formulated as first-order MRF inference and
//! runnable on any [`mogs_gibbs::LabelSampler`] — the exact software Gibbs
//! sampler or the RSU-G hardware model from `mogs-core`.
//!
//! * [`segmentation`] — image segmentation: 5 intensity classes per pixel
//!   (Geman & Geman 1984; Szirányi et al. 2000).
//! * [`motion`] — dense motion estimation: a 7×7 search window per pixel,
//!   49 vector labels (Konrad & Dubois 1992).
//! * [`stereo`] — stereo vision: 5 disparity labels aligning a rectified
//!   pair (Tappen & Freeman 2003).
//! * [`restoration`] — image restoration/denoising on 8 gray levels, the
//!   original Gibbs-sampling application (Geman & Geman 1984).
//!
//! Because the paper's test content is not available, [`synthetic`]
//! generates deterministic scenes **with ground truth** (piecewise-constant
//! regions under noise, translated texture frames, disparity-shifted
//! pairs), which lets the workspace verify inference *quality*, not only
//! speed. [`image`] provides the grayscale image type and PGM I/O so users
//! can run the applications on their own data.
//!
//! ## Example: segmenting a noisy two-region scene
//!
//! ```
//! use mogs_gibbs::SoftmaxGibbs;
//! use mogs_vision::segmentation::{Segmentation, SegmentationConfig};
//! use mogs_vision::synthetic;
//!
//! let scene = synthetic::region_scene(24, 24, 2, 12.0, 7);
//! let app = Segmentation::new(scene.image.clone(), SegmentationConfig {
//!     num_labels: 2,
//!     ..SegmentationConfig::default()
//! });
//! let result = app.run(SoftmaxGibbs::new(), 30, 0);
//! let accuracy = mogs_vision::metrics::label_accuracy(
//!     result.map_estimate.as_ref().unwrap(),
//!     &scene.truth,
//! );
//! assert!(accuracy > 0.8, "accuracy {accuracy}");
//! ```

pub mod image;
pub mod metrics;
pub mod motion;
pub mod pyramid;
pub mod restoration;
pub mod segmentation;
pub mod stereo;
pub mod synthetic;
pub mod texture_model;

pub use image::GrayImage;
pub use motion::{MotionConfig, MotionEstimation};
pub use restoration::{Restoration, RestorationConfig};
pub use segmentation::{Segmentation, SegmentationConfig};
pub use stereo::{StereoConfig, StereoMatching};
pub use texture_model::{TextureConfig, TextureModel};

//! Quality metrics for the vision applications.
//!
//! The paper verifies its applications functionally against MATLAB and by
//! eye; with synthetic ground truth we can do better and report numeric
//! quality, which the fidelity experiments (software Gibbs vs RSU-G) need.

use mogs_mrf::Label;

/// Fraction of sites whose predicted label equals the ground truth.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn label_accuracy(predicted: &[Label], truth: &[Label]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "labelings must align");
    assert!(!predicted.is_empty(), "labelings must be non-empty");
    let correct = predicted.iter().zip(truth).filter(|(p, t)| p == t).count();
    correct as f64 / predicted.len() as f64
}

/// Mean Euclidean distance between each predicted flow vector and a
/// constant ground-truth displacement.
///
/// # Panics
///
/// Panics if `flow` is empty.
pub fn mean_endpoint_error(flow: &[(i32, i32)], truth: (i32, i32)) -> f64 {
    assert!(!flow.is_empty(), "flow field must be non-empty");
    let total: f64 = flow
        .iter()
        .map(|&(dx, dy)| {
            let ex = f64::from(dx - truth.0);
            let ey = f64::from(dy - truth.1);
            (ex * ex + ey * ey).sqrt()
        })
        .sum();
    total / flow.len() as f64
}

/// Mean Euclidean distance between a predicted flow field and a per-pixel
/// ground-truth field.
///
/// # Panics
///
/// Panics if the fields differ in length or are empty.
pub fn mean_endpoint_error_field(flow: &[(i32, i32)], truth: &[(i32, i32)]) -> f64 {
    assert_eq!(flow.len(), truth.len(), "flow fields must align");
    assert!(!flow.is_empty(), "flow field must be non-empty");
    let total: f64 = flow
        .iter()
        .zip(truth)
        .map(|(&(dx, dy), &(tx, ty))| {
            let ex = f64::from(dx - tx);
            let ey = f64::from(dy - ty);
            (ex * ex + ey * ey).sqrt()
        })
        .sum();
    total / flow.len() as f64
}

/// Mean absolute label difference (useful for ordered label spaces such as
/// disparity and intensity classes, where "off by one" is better than
/// "off by four").
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mean_absolute_label_error(predicted: &[Label], truth: &[Label]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "labelings must align");
    assert!(!predicted.is_empty(), "labelings must be non-empty");
    let total: f64 = predicted
        .iter()
        .zip(truth)
        .map(|(p, t)| f64::from(p.value().abs_diff(t.value())))
        .sum();
    total / predicted.len() as f64
}

/// Total variation distance between two discrete distributions.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must align");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(values: &[u8]) -> Vec<Label> {
        values.iter().map(|&v| Label::new(v)).collect()
    }

    #[test]
    fn accuracy_counts_matches() {
        let acc = label_accuracy(&labels(&[0, 1, 2, 3]), &labels(&[0, 1, 0, 3]));
        assert_eq!(acc, 0.75);
    }

    #[test]
    fn perfect_accuracy_is_one() {
        let l = labels(&[5, 6, 7]);
        assert_eq!(label_accuracy(&l, &l), 1.0);
    }

    #[test]
    fn endpoint_error_is_euclidean() {
        let err = mean_endpoint_error(&[(1, 1), (4, 5)], (1, 1));
        assert!((err - (0.0 + 5.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn absolute_error_respects_ordering() {
        let e = mean_absolute_label_error(&labels(&[0, 2]), &labels(&[1, 2]));
        assert_eq!(e, 0.5);
    }

    #[test]
    fn total_variation_bounds() {
        assert_eq!(total_variation(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
        assert_eq!(total_variation(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        let tv = total_variation(&[0.7, 0.3], &[0.5, 0.5]);
        assert!((tv - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "labelings must align")]
    fn mismatched_lengths_panic() {
        label_accuracy(&labels(&[0]), &labels(&[0, 1]));
    }
}

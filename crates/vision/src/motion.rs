//! Dense motion estimation by MRF-MCMC (paper §8.1).
//!
//! Every pixel of frame 1 gets a displacement label from a 7×7 search
//! window (49 labels, encoded as the RSU-G's 3+3-bit vector labels); the
//! singleton energy is the squared intensity difference between the pixel
//! and its displaced position in frame 2, and the smoothness prior favours
//! locally consistent flow (Konrad & Dubois 1992). This is the paper's
//! heavyweight workload: `M = 49` makes the per-pixel sampling cost — and
//! hence the RSU-G advantage — much larger than segmentation's `M = 5`.

use crate::image::GrayImage;
use mogs_engine::prelude::*;
use mogs_gibbs::chain::{ChainConfig, ChainResult, McmcChain};
use mogs_gibbs::sampler::LabelSampler;
use mogs_gibbs::schedule::TemperatureSchedule;
use mogs_mrf::energy::SingletonPotential;
use mogs_mrf::{Grid2D, Label, LabelSpace, MarkovRandomField, SmoothnessPrior};

/// Search-window radius: displacements span `-3..=3` in each axis.
pub const WINDOW_RADIUS: i32 = 3;

/// Search-window side: 7, for the paper's 49 labels.
pub const WINDOW_SIDE: u8 = (2 * WINDOW_RADIUS + 1) as u8;

/// Configuration of the motion model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotionConfig {
    /// Smoothness prior weight over displacement vectors.
    pub smoothness_weight: f64,
    /// Singleton weight (hardware `2⁻⁴` pre-factor by default).
    pub singleton_weight: f64,
    /// Sampling temperature.
    pub temperature: f64,
    /// Worker threads for the checkerboard sweep.
    pub threads: usize,
    /// Fraction of iterations treated as burn-in for the marginal MAP.
    pub burn_in_fraction: f64,
}

impl Default for MotionConfig {
    fn default() -> Self {
        MotionConfig {
            smoothness_weight: 1.0,
            singleton_weight: 1.0 / 8.0,
            temperature: 1.5,
            threads: 1,
            burn_in_fraction: 0.3,
        }
    }
}

/// Converts a vector label to its displacement `(dx, dy)`, each in
/// `-3..=3`.
pub fn label_to_flow(label: Label) -> (i32, i32) {
    let (lo, hi) = label.components();
    (i32::from(lo) - WINDOW_RADIUS, i32::from(hi) - WINDOW_RADIUS)
}

/// Converts a displacement to its vector label.
///
/// # Panics
///
/// Panics if either component is outside `-3..=3`.
pub fn flow_to_label(dx: i32, dy: i32) -> Label {
    assert!(
        dx.abs() <= WINDOW_RADIUS && dy.abs() <= WINDOW_RADIUS,
        "displacement must fit the 7x7 window"
    );
    Label::from_components((dx + WINDOW_RADIUS) as u8, (dy + WINDOW_RADIUS) as u8)
}

/// Singleton potential: squared 6-bit intensity difference between the
/// pixel in frame 1 and its displaced position in frame 2.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSingleton {
    frame1: GrayImage,
    frame2: GrayImage,
    weight: f64,
}

impl SingletonPotential for FlowSingleton {
    fn energy(&self, site: usize, label: Label) -> f64 {
        let width = self.frame1.width();
        let (x, y) = (site % width, site / width);
        let (dx, dy) = label_to_flow(label);
        let a = f64::from(self.frame1.get(x, y));
        let b = f64::from(
            self.frame2
                .get_clamped(x as isize + dx as isize, y as isize + dy as isize),
        );
        self.weight * (a - b) * (a - b)
    }
}

/// The dense motion estimation application.
#[derive(Debug, Clone)]
pub struct MotionEstimation {
    config: MotionConfig,
    mrf: MarkovRandomField<FlowSingleton>,
    width: usize,
    height: usize,
}

impl MotionEstimation {
    /// Builds the motion model for two frames.
    ///
    /// # Panics
    ///
    /// Panics if the frames' dimensions differ.
    pub fn new(frame1: &GrayImage, frame2: &GrayImage, config: MotionConfig) -> Self {
        assert_eq!(
            frame1.width(),
            frame2.width(),
            "frames must share dimensions"
        );
        assert_eq!(
            frame1.height(),
            frame2.height(),
            "frames must share dimensions"
        );
        let grid = Grid2D::new(frame1.width(), frame1.height());
        let space = LabelSpace::window(WINDOW_SIDE, WINDOW_SIDE);
        let singleton = FlowSingleton {
            frame1: frame1.to_6bit(),
            frame2: frame2.to_6bit(),
            weight: config.singleton_weight,
        };
        let mrf = MarkovRandomField::builder(grid, space)
            .prior(SmoothnessPrior::squared_difference(
                config.smoothness_weight,
            ))
            .temperature(config.temperature)
            .singleton(singleton)
            .build();
        MotionEstimation {
            config,
            width: frame1.width(),
            height: frame1.height(),
            mrf,
        }
    }

    /// The underlying MRF.
    pub fn mrf(&self) -> &MarkovRandomField<FlowSingleton> {
        &self.mrf
    }

    /// Runs MCMC for `iterations` full sweeps. The chain starts from the
    /// zero-displacement label so early iterations are physically
    /// plausible.
    pub fn run<L>(&self, sampler: L, iterations: usize, seed: u64) -> ChainResult
    where
        L: LabelSampler + Clone + Send + Sync,
    {
        let config = ChainConfig {
            schedule: TemperatureSchedule::constant(self.config.temperature),
            burn_in: (iterations as f64 * self.config.burn_in_fraction) as usize,
            track_modes: true,
            rao_blackwell: false,
            threads: self.config.threads,
            seed,
        };
        let initial = vec![flow_to_label(0, 0); self.width * self.height];
        let mut chain = McmcChain::with_initial(&self.mrf, sampler, config, initial);
        chain.run(iterations);
        chain.result()
    }

    /// Packages this estimation as an engine job, starting from the same
    /// zero-displacement labeling as [`MotionEstimation::run`]. Uses at
    /// least two deterministic chunks; for `config.threads >= 2` the
    /// result is bit-identical to `run` with the same arguments.
    pub fn engine_job<L>(
        &self,
        sampler: L,
        iterations: usize,
        seed: u64,
    ) -> InferenceJob<FlowSingleton, L>
    where
        L: LabelSampler,
    {
        InferenceJob {
            mrf: self.mrf.clone(),
            sampler,
            schedule: TemperatureSchedule::constant(self.config.temperature),
            iterations,
            threads: self.config.threads.max(2),
            seed,
            burn_in: (iterations as f64 * self.config.burn_in_fraction) as usize,
            track_modes: true,
            record_energy: true,
            initial: Some(vec![flow_to_label(0, 0); self.width * self.height]),
            groups: None,
            sink: None,
            fault_plan: None,
            health: None,
            checkpoint: None,
        }
    }

    /// Runs the estimation through a persistent engine instead of
    /// spawning per-sweep threads.
    ///
    /// # Panics
    ///
    /// Panics if the engine rejects the job (already shut down or failed
    /// admission).
    pub fn run_on_engine<L>(
        &self,
        engine: &Engine,
        sampler: L,
        iterations: usize,
        seed: u64,
    ) -> ChainResult
    where
        L: SweepKernel + Clone + Send + Sync + 'static,
    {
        engine
            .submit(self.engine_job(sampler, iterations, seed))
            .expect("engine accepts motion job")
            .wait()
            .into_chain_result()
    }

    /// Extracts the flow field from a labeling.
    pub fn flow_field(&self, labels: &[Label]) -> Vec<(i32, i32)> {
        labels.iter().map(|&l| label_to_flow(l)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mean_endpoint_error;
    use crate::synthetic;
    use mogs_gibbs::SoftmaxGibbs;

    #[test]
    fn label_flow_round_trip() {
        for dx in -3..=3 {
            for dy in -3..=3 {
                assert_eq!(label_to_flow(flow_to_label(dx, dy)), (dx, dy));
            }
        }
    }

    #[test]
    fn zero_flow_is_window_centre() {
        let l = flow_to_label(0, 0);
        assert_eq!(l.components(), (3, 3));
    }

    #[test]
    fn engine_path_matches_chain_path_bit_for_bit() {
        let scene = synthetic::translated_pair(12, 12, 1, -1, 2.0, 8);
        let app = MotionEstimation::new(
            &scene.frame1,
            &scene.frame2,
            MotionConfig {
                threads: 2,
                ..MotionConfig::default()
            },
        );
        let reference = app.run(SoftmaxGibbs::new(), 12, 6);
        let engine = mogs_engine::Engine::with_default_config();
        let result = app.run_on_engine(&engine, SoftmaxGibbs::new(), 12, 6);
        assert_eq!(result, reference, "engine motion must be bit-identical");
    }

    #[test]
    fn recovers_a_constant_translation() {
        let scene = synthetic::translated_pair(24, 24, 2, -1, 2.0, 21);
        let app = MotionEstimation::new(&scene.frame1, &scene.frame2, MotionConfig::default());
        let result = app.run(SoftmaxGibbs::new(), 40, 3);
        let flow = app.flow_field(result.map_estimate.as_ref().unwrap());
        let err = mean_endpoint_error(&flow, scene.flow);
        assert!(err < 0.6, "mean endpoint error {err}");
    }

    #[test]
    fn recovers_a_moving_object_over_static_background() {
        let scene = synthetic::moving_object_pair(32, 32, 2, 1, 2.0, 25);
        let app = MotionEstimation::new(&scene.frame1, &scene.frame2, MotionConfig::default());
        let result = app.run(SoftmaxGibbs::new(), 50, 7);
        let flow = app.flow_field(result.map_estimate.as_ref().unwrap());
        let err = crate::metrics::mean_endpoint_error_field(&flow, &scene.flow_field);
        // Dis-occluded and boundary pixels are genuinely ambiguous, so the
        // bar is looser than for a global translation.
        assert!(err < 1.0, "field mean endpoint error {err}");
        // Interior object pixels must carry the object's motion.
        let center = 16 * 32 + 16;
        assert_eq!(
            flow[center],
            (2, 1),
            "object centre flow {:?}",
            flow[center]
        );
        // A far-background pixel must be static.
        assert_eq!(
            flow[2 * 32 + 2],
            (0, 0),
            "background flow {:?}",
            flow[2 * 32 + 2]
        );
    }

    #[test]
    fn energy_decreases_from_zero_flow() {
        let scene = synthetic::translated_pair(20, 20, 3, 2, 0.0, 22);
        let app = MotionEstimation::new(&scene.frame1, &scene.frame2, MotionConfig::default());
        let result = app.run(SoftmaxGibbs::new(), 25, 4);
        assert!(result.energy_trace[24] < result.energy_trace[0]);
    }

    #[test]
    fn singleton_prefers_true_displacement() {
        let scene = synthetic::translated_pair(20, 20, 1, 1, 0.0, 23);
        let app = MotionEstimation::new(&scene.frame1, &scene.frame2, MotionConfig::default());
        // At an interior pixel the true label should have (near-)zero
        // singleton energy.
        let site = 10 * 20 + 10;
        let truth = flow_to_label(1, 1);
        let e_true = app.mrf().singleton().energy(site, truth);
        let e_zero = app.mrf().singleton().energy(site, flow_to_label(0, 0));
        assert!(e_true <= e_zero, "true {e_true} vs zero {e_zero}");
        assert!(e_true < 0.5, "true-label energy should be ~0, got {e_true}");
    }

    #[test]
    #[should_panic(expected = "frames must share dimensions")]
    fn mismatched_frames_rejected() {
        let a = GrayImage::filled(4, 4, 0);
        let b = GrayImage::filled(5, 4, 0);
        MotionEstimation::new(&a, &b, MotionConfig::default());
    }
}

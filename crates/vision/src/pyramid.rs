//! Coarse-to-fine (pyramid) MCMC for segmentation.
//!
//! The paper runs 5000 flat iterations for HD segmentation; classic
//! multigrid practice solves a downsampled version of the problem first
//! and warm-starts the finer level from the upsampled coarse labeling, so
//! the expensive fine level only has to refine boundaries. This module
//! implements the standard 2× mean-pyramid schedule over the segmentation
//! application and lets the experiment harness quantify the iteration
//! savings — an algorithmic lever orthogonal to the RSU-G hardware one,
//! and multiplicative with it.

use crate::image::GrayImage;
use crate::segmentation::{Segmentation, SegmentationConfig};
use mogs_gibbs::chain::ChainResult;
use mogs_gibbs::sampler::LabelSampler;
use mogs_mrf::Label;

/// Downsamples an image by 2× with 2×2 block means (odd trailing
/// rows/columns fold into the last block).
pub fn downsample(image: &GrayImage) -> GrayImage {
    let w2 = image.width().div_ceil(2);
    let h2 = image.height().div_ceil(2);
    GrayImage::from_fn(w2, h2, |x, y| {
        let mut total = 0u32;
        let mut count = 0u32;
        for dy in 0..2 {
            for dx in 0..2 {
                let sx = 2 * x + dx;
                let sy = 2 * y + dy;
                if sx < image.width() && sy < image.height() {
                    total += u32::from(image.get(sx, sy));
                    count += 1;
                }
            }
        }
        (total / count) as u8
    })
}

/// Upsamples a coarse labeling to a finer grid by nearest-neighbour
/// replication.
///
/// # Panics
///
/// Panics if the coarse labeling does not match the coarse dimensions, or
/// the fine grid is not the 2×-up size of the coarse one (within the odd
/// remainder).
pub fn upsample_labels(
    coarse: &[Label],
    coarse_w: usize,
    coarse_h: usize,
    fine_w: usize,
    fine_h: usize,
) -> Vec<Label> {
    assert_eq!(
        coarse.len(),
        coarse_w * coarse_h,
        "coarse labeling must match its grid"
    );
    assert!(
        fine_w.div_ceil(2) == coarse_w && fine_h.div_ceil(2) == coarse_h,
        "fine grid must be the 2x-up size of the coarse grid"
    );
    let mut fine = Vec::with_capacity(fine_w * fine_h);
    for y in 0..fine_h {
        for x in 0..fine_w {
            fine.push(coarse[(y / 2) * coarse_w + x / 2]);
        }
    }
    fine
}

/// Per-level iteration counts, coarsest level first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PyramidSchedule {
    /// Iterations per level, coarsest first; the last entry runs at full
    /// resolution. Length = number of levels.
    pub iterations: Vec<usize>,
}

impl PyramidSchedule {
    /// A schedule with `levels` levels running `per_level` iterations each.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0`.
    pub fn uniform(levels: usize, per_level: usize) -> Self {
        assert!(levels > 0, "need at least one level");
        PyramidSchedule {
            iterations: vec![per_level; levels],
        }
    }
}

/// Runs coarse-to-fine segmentation: solve the coarsest level from
/// scratch, then warm-start each finer level from the upsampled result.
/// Returns the full-resolution result.
///
/// # Panics
///
/// Panics if the schedule has no levels.
pub fn segment_coarse_to_fine<L>(
    image: &GrayImage,
    config: &SegmentationConfig,
    sampler: L,
    schedule: &PyramidSchedule,
    seed: u64,
) -> ChainResult
where
    L: LabelSampler + Clone + Send + Sync,
{
    let levels = schedule.iterations.len();
    // Build the image pyramid, finest first.
    let mut pyramid = vec![image.clone()];
    for _ in 1..levels {
        let next = downsample(pyramid.last().expect("non-empty pyramid"));
        pyramid.push(next);
    }
    // Solve coarsest → finest.
    let mut carried: Option<(Vec<Label>, usize, usize)> = None;
    let mut result = None;
    for (level_from_coarse, &iterations) in schedule.iterations.iter().enumerate() {
        let level_image = &pyramid[levels - 1 - level_from_coarse];
        let app = Segmentation::new(level_image.clone(), config.clone());
        let initial = match carried.take() {
            Some((labels, cw, ch)) => {
                upsample_labels(&labels, cw, ch, level_image.width(), level_image.height())
            }
            None => vec![Label::new(0); level_image.len()],
        };
        let level_result = app.run_from(
            sampler.clone(),
            iterations,
            seed + level_from_coarse as u64,
            initial,
        );
        let labels = level_result
            .map_estimate
            .clone()
            .unwrap_or_else(|| level_result.labels.clone());
        carried = Some((labels, level_image.width(), level_image.height()));
        result = Some(level_result);
    }
    result.expect("schedule has at least one level")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::label_accuracy;
    use crate::synthetic;
    use mogs_gibbs::SoftmaxGibbs;

    #[test]
    fn downsample_halves_dimensions() {
        let img = GrayImage::from_fn(9, 7, |x, y| (x * 10 + y) as u8);
        let d = downsample(&img);
        assert_eq!((d.width(), d.height()), (5, 4));
        // A 2x2 block of a linear ramp averages to its centre value.
        let full = GrayImage::from_fn(4, 4, |x, _| (x * 20) as u8);
        let half = downsample(&full);
        assert_eq!(half.get(0, 0), 10);
    }

    #[test]
    fn upsample_replicates_blocks() {
        let coarse = vec![Label::new(0), Label::new(1), Label::new(2), Label::new(3)];
        let fine = upsample_labels(&coarse, 2, 2, 4, 4);
        assert_eq!(fine[0], Label::new(0));
        assert_eq!(fine[3], Label::new(1));
        assert_eq!(fine[15], Label::new(3));
    }

    #[test]
    fn upsample_handles_odd_sizes() {
        let coarse = vec![Label::new(1); 6]; // 3x2 coarse for a 5x3 fine
        let fine = upsample_labels(&coarse, 3, 2, 5, 3);
        assert_eq!(fine.len(), 15);
        assert!(fine.iter().all(|&l| l == Label::new(1)));
    }

    #[test]
    fn coarse_to_fine_beats_flat_on_equal_fine_budget() {
        // Give both runs the same number of FULL-RESOLUTION iterations;
        // the pyramid additionally runs cheap coarse levels. It should win
        // (or at worst tie) on accuracy.
        let scene = synthetic::region_scene(48, 48, 5, 7.0, 60);
        let config = SegmentationConfig::default();
        let fine_iters = 8;

        let flat_app = Segmentation::new(scene.image.clone(), config.clone());
        let flat = flat_app.run(SoftmaxGibbs::new(), fine_iters, 1);
        let flat_acc = label_accuracy(
            flat.map_estimate.as_ref().unwrap_or(&flat.labels),
            &scene.truth,
        );

        let schedule = PyramidSchedule {
            iterations: vec![20, 12, fine_iters], // quarter, half, full
        };
        let pyramid =
            segment_coarse_to_fine(&scene.image, &config, SoftmaxGibbs::new(), &schedule, 1);
        let pyr_acc = label_accuracy(
            pyramid.map_estimate.as_ref().unwrap_or(&pyramid.labels),
            &scene.truth,
        );
        assert!(
            pyr_acc >= flat_acc - 0.02,
            "pyramid {pyr_acc:.3} vs flat {flat_acc:.3}"
        );
        assert!(pyr_acc > 0.85, "pyramid accuracy {pyr_acc:.3}");
    }

    #[test]
    fn single_level_schedule_equals_flat_run() {
        let scene = synthetic::region_scene(24, 24, 2, 8.0, 61);
        let config = SegmentationConfig {
            num_labels: 2,
            ..SegmentationConfig::default()
        };
        let schedule = PyramidSchedule::uniform(1, 15);
        let pyramid =
            segment_coarse_to_fine(&scene.image, &config, SoftmaxGibbs::new(), &schedule, 2);
        let app = Segmentation::new(scene.image.clone(), config);
        let flat = app.run(SoftmaxGibbs::new(), 15, 2);
        assert_eq!(
            pyramid.labels, flat.labels,
            "one level must be the flat chain"
        );
    }

    #[test]
    #[should_panic(expected = "2x-up size")]
    fn mismatched_upsample_rejected() {
        let coarse = vec![Label::new(0); 4];
        upsample_labels(&coarse, 2, 2, 10, 10);
    }
}

//! Image restoration (denoising) by MRF-MCMC — the original application of
//! Gibbs sampling to images (Geman & Geman 1984, the paper's reference
//! [11] and the root of its segmentation formulation).
//!
//! The label space is a quantized intensity scale: each pixel's label *is*
//! its restored gray level, on 8 levels — exactly the 3-bit scalar range
//! the RSU-G doubleton datapath operates on, so this application exercises
//! the hardware's native precision with no slack at all. The singleton
//! pulls each label toward the observed noisy pixel; the (optionally
//! truncated) smoothness prior removes the noise while the truncation
//! preserves edges.

use crate::image::GrayImage;
use mogs_gibbs::chain::{ChainConfig, ChainResult, McmcChain};
use mogs_gibbs::sampler::LabelSampler;
use mogs_gibbs::schedule::TemperatureSchedule;
use mogs_mrf::energy::SingletonPotential;
use mogs_mrf::{Grid2D, Label, LabelSpace, MarkovRandomField, Neighborhood, SmoothnessPrior};

/// Number of restoration gray levels (3-bit hardware scalar range).
pub const GRAY_LEVELS: u16 = 8;

/// Configuration of the restoration model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RestorationConfig {
    /// Smoothness prior weight.
    pub smoothness_weight: f64,
    /// Truncation cap on the squared label difference (`None` = pure
    /// quadratic; a cap preserves edges).
    pub truncation: Option<f64>,
    /// Singleton weight.
    pub singleton_weight: f64,
    /// Clique neighbourhood: second order couples diagonals too, which
    /// smooths oblique structure better (paper §9's "other MRF problems").
    pub neighborhood: Neighborhood,
    /// Sampling temperature.
    pub temperature: f64,
    /// Worker threads for the checkerboard sweep.
    pub threads: usize,
    /// Fraction of iterations treated as burn-in for the marginal MAP.
    pub burn_in_fraction: f64,
}

impl Default for RestorationConfig {
    fn default() -> Self {
        RestorationConfig {
            smoothness_weight: 1.0,
            truncation: Some(4.0),
            singleton_weight: 0.5,
            neighborhood: Neighborhood::FirstOrder,
            temperature: 1.0,
            threads: 1,
            burn_in_fraction: 0.3,
        }
    }
}

/// Singleton potential: squared distance between a pixel's 3-bit
/// observation and the candidate gray level.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservationSingleton {
    observed3: Vec<u8>,
    weight: f64,
}

impl SingletonPotential for ObservationSingleton {
    fn energy(&self, site: usize, label: Label) -> f64 {
        let d = f64::from(self.observed3[site]) - f64::from(label.value());
        self.weight * d * d
    }
}

/// The image restoration application.
#[derive(Debug, Clone)]
pub struct Restoration {
    config: RestorationConfig,
    mrf: MarkovRandomField<ObservationSingleton>,
    width: usize,
    height: usize,
}

impl Restoration {
    /// Builds the restoration model for a noisy image (quantized to 8 gray
    /// levels internally).
    pub fn new(noisy: &GrayImage, config: RestorationConfig) -> Self {
        let grid = Grid2D::new(noisy.width(), noisy.height());
        let space = LabelSpace::scalar(GRAY_LEVELS);
        let singleton = ObservationSingleton {
            observed3: noisy.pixels().iter().map(|p| p >> 5).collect(),
            weight: config.singleton_weight,
        };
        let prior = match config.truncation {
            Some(cap) => SmoothnessPrior::truncated_quadratic(config.smoothness_weight, cap),
            None => SmoothnessPrior::squared_difference(config.smoothness_weight),
        };
        let mrf = MarkovRandomField::builder(grid, space)
            .prior(prior)
            .neighborhood(config.neighborhood)
            .temperature(config.temperature)
            .singleton(singleton)
            .build();
        Restoration {
            config,
            mrf,
            width: noisy.width(),
            height: noisy.height(),
        }
    }

    /// The underlying MRF.
    pub fn mrf(&self) -> &MarkovRandomField<ObservationSingleton> {
        &self.mrf
    }

    /// Runs MCMC for `iterations` full sweeps, starting from the observed
    /// labels (the natural warm start for restoration).
    pub fn run<L>(&self, sampler: L, iterations: usize, seed: u64) -> ChainResult
    where
        L: LabelSampler + Clone + Send + Sync,
    {
        let config = ChainConfig {
            schedule: TemperatureSchedule::constant(self.config.temperature),
            burn_in: (iterations as f64 * self.config.burn_in_fraction) as usize,
            track_modes: true,
            rao_blackwell: false,
            threads: self.config.threads,
            seed,
        };
        let initial: Vec<Label> = self
            .mrf
            .singleton()
            .observed3
            .iter()
            .map(|&v| Label::new(v))
            .collect();
        let mut chain = McmcChain::with_initial(&self.mrf, sampler, config, initial);
        chain.run(iterations);
        chain.result()
    }

    /// Renders a labeling back to an 8-bit image (levels spread over the
    /// gray range).
    pub fn labels_to_image(&self, labels: &[Label]) -> GrayImage {
        GrayImage::from_pixels(
            self.width,
            self.height,
            labels.iter().map(|l| (l.value() << 5) | 0x10).collect(),
        )
    }

    /// Peak signal-to-noise ratio between two images (dB).
    ///
    /// # Panics
    ///
    /// Panics if the images' dimensions differ.
    pub fn psnr(a: &GrayImage, b: &GrayImage) -> f64 {
        assert_eq!(a.width(), b.width(), "images must share dimensions");
        assert_eq!(a.height(), b.height(), "images must share dimensions");
        let mse: f64 = a
            .pixels()
            .iter()
            .zip(b.pixels())
            .map(|(&x, &y)| {
                let d = f64::from(x) - f64::from(y);
                d * d
            })
            .sum::<f64>()
            / a.len() as f64;
        if mse == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (255.0 * 255.0 / mse).log10()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mogs_gibbs::SoftmaxGibbs;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A piecewise-constant test card with additive noise.
    fn noisy_card(seed: u64, sigma: f64) -> (GrayImage, GrayImage) {
        let clean = GrayImage::from_fn(32, 32, |x, _| if x < 16 { 0x30 } else { 0xD0 });
        let mut rng = StdRng::seed_from_u64(seed);
        let noisy = GrayImage::from_fn(32, 32, |x, y| {
            let z: f64 = {
                let u1: f64 = 1.0 - rng.gen::<f64>();
                let u2: f64 = rng.gen();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            };
            (f64::from(clean.get(x, y)) + z * sigma).clamp(0.0, 255.0) as u8
        });
        (clean, noisy)
    }

    #[test]
    fn restoration_improves_psnr() {
        let (clean, noisy) = noisy_card(1, 25.0);
        let app = Restoration::new(&noisy, RestorationConfig::default());
        let result = app.run(SoftmaxGibbs::new(), 40, 1);
        let restored = app.labels_to_image(result.map_estimate.as_ref().unwrap());
        let before = Restoration::psnr(&clean, &noisy);
        let after = Restoration::psnr(&clean, &restored);
        assert!(
            after > before + 2.0,
            "PSNR before {before:.1} after {after:.1}"
        );
    }

    #[test]
    fn truncation_preserves_the_edge() {
        let (_, noisy) = noisy_card(2, 20.0);
        let app = Restoration::new(&noisy, RestorationConfig::default());
        let result = app.run(SoftmaxGibbs::new(), 40, 2);
        let labels = result.map_estimate.unwrap();
        // The left and right halves should settle on different levels.
        let left = usize::from(labels[16 * 32 + 4].value());
        let right = usize::from(labels[16 * 32 + 28].value());
        assert!(right > left + 2, "edge lost: left {left} right {right}");
    }

    #[test]
    fn pure_quadratic_oversmooths_relative_to_truncated() {
        let (clean, noisy) = noisy_card(3, 25.0);
        let truncated = Restoration::new(&noisy, RestorationConfig::default());
        let quadratic = Restoration::new(
            &noisy,
            RestorationConfig {
                truncation: None,
                ..RestorationConfig::default()
            },
        );
        let r_t = truncated.run(SoftmaxGibbs::new(), 40, 3);
        let r_q = quadratic.run(SoftmaxGibbs::new(), 40, 3);
        let psnr_t = Restoration::psnr(
            &clean,
            &truncated.labels_to_image(r_t.map_estimate.as_ref().unwrap()),
        );
        let psnr_q = Restoration::psnr(
            &clean,
            &quadratic.labels_to_image(r_q.map_estimate.as_ref().unwrap()),
        );
        assert!(
            psnr_t >= psnr_q,
            "truncated {psnr_t:.1} dB should beat quadratic {psnr_q:.1} dB on an edge image"
        );
    }

    #[test]
    fn second_order_restoration_also_denoises() {
        let (clean, noisy) = noisy_card(5, 25.0);
        let app = Restoration::new(
            &noisy,
            RestorationConfig {
                neighborhood: Neighborhood::SecondOrder,
                ..RestorationConfig::default()
            },
        );
        let result = app.run(SoftmaxGibbs::new(), 40, 5);
        let restored = app.labels_to_image(result.map_estimate.as_ref().unwrap());
        let before = Restoration::psnr(&clean, &noisy);
        let after = Restoration::psnr(&clean, &restored);
        assert!(
            after > before + 2.0,
            "PSNR before {before:.1} after {after:.1}"
        );
    }

    #[test]
    fn psnr_identity_is_infinite() {
        let img = GrayImage::filled(4, 4, 7);
        assert!(Restoration::psnr(&img, &img).is_infinite());
    }

    #[test]
    fn warm_start_matches_observation() {
        let (_, noisy) = noisy_card(4, 10.0);
        let app = Restoration::new(&noisy, RestorationConfig::default());
        let result = app.run(SoftmaxGibbs::new(), 1, 4);
        // After one sweep the labeling is close to the quantized input.
        let matches = result
            .labels
            .iter()
            .zip(noisy.pixels())
            .filter(|(l, &p)| l.value() == p >> 5)
            .count();
        assert!(matches > result.labels.len() / 2);
    }
}

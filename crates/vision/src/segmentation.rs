//! Image segmentation by MRF-MCMC (paper §8.1).
//!
//! Each pixel's label is one of `M` intensity classes (the paper uses 5);
//! the singleton energy pulls a pixel toward the class whose mean intensity
//! matches its observation and the smoothness prior pulls neighbours
//! together. Class means are evenly spaced by default (classes ordered by
//! brightness, so the squared-difference prior — the RSU-G's hardware
//! doubleton — is meaningful) or can be supplied explicitly.
//!
//! All arithmetic uses 6-bit data values and the hardware singleton form
//! `(data1 − data2)²`, so a run on the software sampler and a run on the
//! RSU-G model see *identical* energies.

use crate::image::GrayImage;
use mogs_engine::prelude::*;
use mogs_gibbs::chain::{ChainConfig, ChainResult, McmcChain};
use mogs_gibbs::sampler::LabelSampler;
use mogs_gibbs::schedule::TemperatureSchedule;
use mogs_mrf::energy::SingletonPotential;
use mogs_mrf::{Grid2D, Label, LabelSpace, MarkovRandomField, SmoothnessPrior};

/// Configuration of the segmentation model.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentationConfig {
    /// Number of intensity classes `M` (the paper uses 5).
    pub num_labels: u16,
    /// Explicit 6-bit class means; `None` spaces them evenly.
    pub class_means_6bit: Option<Vec<u8>>,
    /// Smoothness prior weight.
    pub smoothness_weight: f64,
    /// Singleton weight (the hardware's `2⁻⁴` pre-factor by default).
    pub singleton_weight: f64,
    /// Sampling temperature.
    pub temperature: f64,
    /// Worker threads for the checkerboard sweep.
    pub threads: usize,
    /// Fraction of iterations treated as burn-in for the marginal MAP.
    pub burn_in_fraction: f64,
}

impl Default for SegmentationConfig {
    fn default() -> Self {
        SegmentationConfig {
            num_labels: 5,
            class_means_6bit: None,
            smoothness_weight: 2.0,
            singleton_weight: 1.0 / 16.0,
            temperature: 4.0,
            threads: 1,
            burn_in_fraction: 0.3,
        }
    }
}

/// Singleton potential: squared distance between a pixel's 6-bit intensity
/// and a class's 6-bit mean — the exact RSU-G singleton form.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassMeanSingleton {
    pixels6: Vec<u8>,
    means6: Vec<u8>,
    weight: f64,
}

impl ClassMeanSingleton {
    /// The per-label `DATA2` values (class means) the RSU-G data path
    /// receives.
    pub fn means_6bit(&self) -> &[u8] {
        &self.means6
    }
}

impl SingletonPotential for ClassMeanSingleton {
    fn energy(&self, site: usize, label: Label) -> f64 {
        let p = f64::from(self.pixels6[site]);
        let m = f64::from(self.means6[usize::from(label.value())]);
        self.weight * (p - m) * (p - m)
    }
}

/// The image segmentation application.
#[derive(Debug, Clone)]
pub struct Segmentation {
    image: GrayImage,
    config: SegmentationConfig,
    mrf: MarkovRandomField<ClassMeanSingleton>,
}

impl Segmentation {
    /// Builds the segmentation model for an image.
    ///
    /// # Panics
    ///
    /// Panics if `num_labels` is outside `1..=64` or explicit class means
    /// have the wrong length.
    pub fn new(image: GrayImage, config: SegmentationConfig) -> Self {
        let space = LabelSpace::scalar(config.num_labels);
        let means6 = match &config.class_means_6bit {
            Some(m) => {
                assert_eq!(m.len(), space.count(), "one class mean per label");
                assert!(m.iter().all(|&v| v < 64), "class means are 6-bit");
                m.clone()
            }
            None => (0..config.num_labels)
                .map(|k| ((f64::from(k) + 0.5) * 64.0 / f64::from(config.num_labels)) as u8)
                .collect(),
        };
        let grid = Grid2D::new(image.width(), image.height());
        let singleton = ClassMeanSingleton {
            pixels6: image.to_6bit().pixels().to_vec(),
            means6,
            weight: config.singleton_weight,
        };
        let mrf = MarkovRandomField::builder(grid, space)
            .prior(SmoothnessPrior::squared_difference(
                config.smoothness_weight,
            ))
            .temperature(config.temperature)
            .singleton(singleton)
            .build();
        Segmentation { image, config, mrf }
    }

    /// The input image.
    pub fn image(&self) -> &GrayImage {
        &self.image
    }

    /// The underlying MRF (for custom chains or RSU data extraction).
    pub fn mrf(&self) -> &MarkovRandomField<ClassMeanSingleton> {
        &self.mrf
    }

    /// The 6-bit class means (the RSU-G `DATA2` stream).
    pub fn class_means_6bit(&self) -> &[u8] {
        self.mrf.singleton().means_6bit()
    }

    /// Runs MCMC for `iterations` full sweeps with the given sampler.
    pub fn run<L>(&self, sampler: L, iterations: usize, seed: u64) -> ChainResult
    where
        L: LabelSampler + Clone + Send + Sync,
    {
        let initial = self.mrf.uniform_labeling();
        self.run_from(sampler, iterations, seed, initial)
    }

    /// Runs MCMC from an explicit initial labeling (e.g. a coarse-to-fine
    /// warm start from [`crate::pyramid`]).
    ///
    /// # Panics
    ///
    /// Panics if the labeling does not validate against the field.
    pub fn run_from<L>(
        &self,
        sampler: L,
        iterations: usize,
        seed: u64,
        initial: Vec<Label>,
    ) -> ChainResult
    where
        L: LabelSampler + Clone + Send + Sync,
    {
        let config = ChainConfig {
            schedule: TemperatureSchedule::constant(self.config.temperature),
            burn_in: (iterations as f64 * self.config.burn_in_fraction) as usize,
            track_modes: true,
            rao_blackwell: false,
            threads: self.config.threads,
            seed,
        };
        let mut chain = McmcChain::with_initial(&self.mrf, sampler, config, initial);
        chain.run(iterations);
        chain.result()
    }

    /// Packages this segmentation as an engine job (for
    /// [`mogs_engine::Engine::submit`]). The job uses at least two
    /// deterministic chunks; for `config.threads >= 2` its result is
    /// bit-identical to [`Segmentation::run`] with the same arguments.
    pub fn engine_job<L>(
        &self,
        sampler: L,
        iterations: usize,
        seed: u64,
    ) -> InferenceJob<ClassMeanSingleton, L>
    where
        L: LabelSampler,
    {
        InferenceJob {
            mrf: self.mrf.clone(),
            sampler,
            schedule: TemperatureSchedule::constant(self.config.temperature),
            iterations,
            threads: self.config.threads.max(2),
            seed,
            burn_in: (iterations as f64 * self.config.burn_in_fraction) as usize,
            track_modes: true,
            record_energy: true,
            initial: None,
            groups: None,
            sink: None,
            fault_plan: None,
            health: None,
            checkpoint: None,
        }
    }

    /// Runs the segmentation through a persistent engine instead of
    /// spawning per-sweep threads. See [`Segmentation::engine_job`] for
    /// the determinism contract relative to [`Segmentation::run`].
    ///
    /// # Panics
    ///
    /// Panics if the engine rejects the job (already shut down or failed
    /// admission).
    pub fn run_on_engine<L>(
        &self,
        engine: &Engine,
        sampler: L,
        iterations: usize,
        seed: u64,
    ) -> ChainResult
    where
        L: SweepKernel + Clone + Send + Sync + 'static,
    {
        engine
            .submit(self.engine_job(sampler, iterations, seed))
            .expect("engine accepts segmentation job")
            .wait()
            .into_chain_result()
    }

    /// Renders a labeling as an image (each label painted with its class
    /// mean, back at 8-bit scale).
    pub fn labels_to_image(&self, labels: &[Label]) -> GrayImage {
        let means = self.class_means_6bit();
        GrayImage::from_pixels(
            self.image.width(),
            self.image.height(),
            labels
                .iter()
                .map(|l| means[usize::from(l.value())] << 2)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::label_accuracy;
    use crate::synthetic;
    use mogs_gibbs::SoftmaxGibbs;

    #[test]
    fn default_class_means_are_even() {
        let app = Segmentation::new(GrayImage::filled(4, 4, 0), SegmentationConfig::default());
        assert_eq!(app.class_means_6bit(), &[6, 19, 32, 44, 57]);
    }

    #[test]
    fn segments_a_clean_two_region_scene() {
        let scene = synthetic::region_scene(20, 20, 2, 8.0, 11);
        let app = Segmentation::new(
            scene.image.clone(),
            SegmentationConfig {
                num_labels: 2,
                ..SegmentationConfig::default()
            },
        );
        let result = app.run(SoftmaxGibbs::new(), 40, 1);
        let acc = label_accuracy(result.map_estimate.as_ref().unwrap(), &scene.truth);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn engine_path_matches_chain_path_bit_for_bit() {
        let scene = synthetic::region_scene(16, 16, 3, 8.0, 4);
        let app = Segmentation::new(
            scene.image.clone(),
            SegmentationConfig {
                num_labels: 3,
                threads: 2,
                ..SegmentationConfig::default()
            },
        );
        let reference = app.run(SoftmaxGibbs::new(), 30, 9);
        let engine = Engine::with_default_config();
        let result = app.run_on_engine(&engine, SoftmaxGibbs::new(), 30, 9);
        assert_eq!(
            result, reference,
            "engine segmentation must be bit-identical"
        );
    }

    #[test]
    fn five_label_scene_converges() {
        let scene = synthetic::region_scene(24, 24, 5, 6.0, 13);
        let app = Segmentation::new(scene.image.clone(), SegmentationConfig::default());
        let result = app.run(SoftmaxGibbs::new(), 60, 2);
        let acc = label_accuracy(result.map_estimate.as_ref().unwrap(), &scene.truth);
        assert!(acc > 0.8, "accuracy {acc}");
        assert!(result.energy_trace[59] < result.energy_trace[0]);
    }

    #[test]
    fn explicit_class_means_accepted() {
        let app = Segmentation::new(
            GrayImage::filled(4, 4, 100),
            SegmentationConfig {
                num_labels: 2,
                class_means_6bit: Some(vec![5, 50]),
                ..SegmentationConfig::default()
            },
        );
        assert_eq!(app.class_means_6bit(), &[5, 50]);
    }

    #[test]
    fn labels_to_image_paints_means() {
        let app = Segmentation::new(
            GrayImage::filled(2, 1, 0),
            SegmentationConfig {
                num_labels: 2,
                class_means_6bit: Some(vec![10, 40]),
                ..SegmentationConfig::default()
            },
        );
        let img = app.labels_to_image(&[Label::new(0), Label::new(1)]);
        assert_eq!(img.pixels(), &[40, 160]);
    }

    #[test]
    #[should_panic(expected = "one class mean per label")]
    fn wrong_mean_count_panics() {
        Segmentation::new(
            GrayImage::filled(2, 2, 0),
            SegmentationConfig {
                num_labels: 3,
                class_means_6bit: Some(vec![1, 2]),
                ..SegmentationConfig::default()
            },
        );
    }
}

//! Stereo vision by MRF-MCMC (paper §8.1).
//!
//! For a rectified pair, each left-image pixel gets one of `M = 5`
//! disparity labels; the singleton energy is the squared intensity
//! difference between the left pixel and the right pixel shifted by the
//! candidate disparity (Tappen & Freeman 2003), and the smoothness prior
//! favours piecewise-constant disparity surfaces.

use crate::image::GrayImage;
use mogs_engine::prelude::*;
use mogs_gibbs::chain::{ChainConfig, ChainResult, McmcChain};
use mogs_gibbs::sampler::LabelSampler;
use mogs_gibbs::schedule::TemperatureSchedule;
use mogs_mrf::energy::SingletonPotential;
use mogs_mrf::{Grid2D, Label, LabelSpace, MarkovRandomField, SmoothnessPrior};

/// Configuration of the stereo model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StereoConfig {
    /// Number of disparity labels (the paper uses 5; label value =
    /// disparity in pixels).
    pub num_disparities: u16,
    /// Smoothness prior weight.
    pub smoothness_weight: f64,
    /// Singleton weight (hardware `2⁻⁴` pre-factor by default).
    pub singleton_weight: f64,
    /// Sampling temperature.
    pub temperature: f64,
    /// Worker threads for the checkerboard sweep.
    pub threads: usize,
    /// Fraction of iterations treated as burn-in for the marginal MAP.
    pub burn_in_fraction: f64,
}

impl Default for StereoConfig {
    fn default() -> Self {
        StereoConfig {
            num_disparities: 5,
            smoothness_weight: 2.0,
            singleton_weight: 1.0 / 8.0,
            temperature: 1.5,
            threads: 1,
            burn_in_fraction: 0.3,
        }
    }
}

/// Singleton potential: squared 6-bit difference between the left pixel
/// and the disparity-shifted right pixel.
#[derive(Debug, Clone, PartialEq)]
pub struct DisparitySingleton {
    left: GrayImage,
    right: GrayImage,
    weight: f64,
}

impl SingletonPotential for DisparitySingleton {
    fn energy(&self, site: usize, label: Label) -> f64 {
        let width = self.left.width();
        let (x, y) = (site % width, site / width);
        let d = isize::from(label.value());
        let a = f64::from(self.left.get(x, y));
        let b = f64::from(self.right.get_clamped(x as isize - d, y as isize));
        self.weight * (a - b) * (a - b)
    }
}

/// The stereo matching application.
#[derive(Debug, Clone)]
pub struct StereoMatching {
    config: StereoConfig,
    mrf: MarkovRandomField<DisparitySingleton>,
}

impl StereoMatching {
    /// Builds the stereo model for a rectified pair.
    ///
    /// # Panics
    ///
    /// Panics if the images' dimensions differ or the disparity count is
    /// outside `1..=64`.
    pub fn new(left: &GrayImage, right: &GrayImage, config: StereoConfig) -> Self {
        assert_eq!(left.width(), right.width(), "images must share dimensions");
        assert_eq!(
            left.height(),
            right.height(),
            "images must share dimensions"
        );
        let grid = Grid2D::new(left.width(), left.height());
        let space = LabelSpace::scalar(config.num_disparities);
        let singleton = DisparitySingleton {
            left: left.to_6bit(),
            right: right.to_6bit(),
            weight: config.singleton_weight,
        };
        let mrf = MarkovRandomField::builder(grid, space)
            .prior(SmoothnessPrior::squared_difference(
                config.smoothness_weight,
            ))
            .temperature(config.temperature)
            .singleton(singleton)
            .build();
        StereoMatching { config, mrf }
    }

    /// The underlying MRF.
    pub fn mrf(&self) -> &MarkovRandomField<DisparitySingleton> {
        &self.mrf
    }

    /// Runs MCMC for `iterations` full sweeps.
    pub fn run<L>(&self, sampler: L, iterations: usize, seed: u64) -> ChainResult
    where
        L: LabelSampler + Clone + Send + Sync,
    {
        let config = ChainConfig {
            schedule: TemperatureSchedule::constant(self.config.temperature),
            burn_in: (iterations as f64 * self.config.burn_in_fraction) as usize,
            track_modes: true,
            rao_blackwell: false,
            threads: self.config.threads,
            seed,
        };
        let mut chain = McmcChain::new(&self.mrf, sampler, config);
        chain.run(iterations);
        chain.result()
    }

    /// Packages this matching as an engine job. Uses at least two
    /// deterministic chunks; for `config.threads >= 2` the result is
    /// bit-identical to [`StereoMatching::run`] with the same arguments.
    pub fn engine_job<L>(
        &self,
        sampler: L,
        iterations: usize,
        seed: u64,
    ) -> InferenceJob<DisparitySingleton, L>
    where
        L: LabelSampler,
    {
        InferenceJob {
            mrf: self.mrf.clone(),
            sampler,
            schedule: TemperatureSchedule::constant(self.config.temperature),
            iterations,
            threads: self.config.threads.max(2),
            seed,
            burn_in: (iterations as f64 * self.config.burn_in_fraction) as usize,
            track_modes: true,
            record_energy: true,
            initial: None,
            groups: None,
            sink: None,
            fault_plan: None,
            health: None,
            checkpoint: None,
        }
    }

    /// Runs the matching through a persistent engine instead of spawning
    /// per-sweep threads.
    ///
    /// # Panics
    ///
    /// Panics if the engine rejects the job (already shut down or failed
    /// admission).
    pub fn run_on_engine<L>(
        &self,
        engine: &Engine,
        sampler: L,
        iterations: usize,
        seed: u64,
    ) -> ChainResult
    where
        L: SweepKernel + Clone + Send + Sync + 'static,
    {
        engine
            .submit(self.engine_job(sampler, iterations, seed))
            .expect("engine accepts stereo job")
            .wait()
            .into_chain_result()
    }

    /// Renders a disparity labeling as an image (disparity stretched over
    /// the gray range for visibility).
    pub fn disparity_image(&self, labels: &[Label]) -> GrayImage {
        let max_d = (self.config.num_disparities - 1).max(1);
        let grid = self.mrf.grid();
        GrayImage::from_pixels(
            grid.width(),
            grid.height(),
            labels
                .iter()
                .map(|l| (u16::from(l.value()) * 255 / max_d) as u8)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::label_accuracy;
    use crate::synthetic;
    use mogs_gibbs::SoftmaxGibbs;

    #[test]
    fn recovers_foreground_disparity() {
        let scene = synthetic::stereo_pair(32, 32, 3, 2.0, 31);
        let app = StereoMatching::new(&scene.left, &scene.right, StereoConfig::default());
        let result = app.run(SoftmaxGibbs::new(), 80, 5);
        let acc = label_accuracy(result.map_estimate.as_ref().unwrap(), &scene.truth);
        // Smooth synthetic texture leaves genuine ambiguity (aperture
        // problem + the occluded band at the foreground edge), so 70% on a
        // 5-way choice is a solid recovery.
        assert!(acc > 0.70, "disparity accuracy {acc}");
    }

    #[test]
    fn engine_path_matches_chain_path_bit_for_bit() {
        let scene = synthetic::stereo_pair(16, 16, 2, 2.0, 17);
        let app = StereoMatching::new(
            &scene.left,
            &scene.right,
            StereoConfig {
                threads: 2,
                ..StereoConfig::default()
            },
        );
        let reference = app.run(SoftmaxGibbs::new(), 20, 7);
        let engine = mogs_engine::Engine::with_default_config();
        let result = app.run_on_engine(&engine, SoftmaxGibbs::new(), 20, 7);
        assert_eq!(result, reference, "engine stereo must be bit-identical");
    }

    #[test]
    fn singleton_prefers_true_disparity_in_foreground() {
        let scene = synthetic::stereo_pair(32, 32, 2, 0.0, 32);
        let app = StereoMatching::new(&scene.left, &scene.right, StereoConfig::default());
        let site = 16 * 32 + 16; // centre: foreground
        let e_true = app.mrf().singleton().energy(site, Label::new(2));
        let e_zero = app.mrf().singleton().energy(site, Label::new(0));
        assert!(e_true <= e_zero);
        assert!(
            e_true < 0.5,
            "true-disparity energy should be ~0, got {e_true}"
        );
    }

    #[test]
    fn disparity_image_stretches_range() {
        let scene = synthetic::stereo_pair(16, 16, 1, 0.0, 33);
        let app = StereoMatching::new(&scene.left, &scene.right, StereoConfig::default());
        let labels = vec![Label::new(4); 256];
        let img = app.disparity_image(&labels);
        assert!(img.pixels().iter().all(|&p| p == 255));
    }

    #[test]
    fn energy_decreases_over_iterations() {
        let scene = synthetic::stereo_pair(24, 24, 2, 2.0, 34);
        let app = StereoMatching::new(&scene.left, &scene.right, StereoConfig::default());
        let result = app.run(SoftmaxGibbs::new(), 25, 6);
        assert!(result.energy_trace[24] < result.energy_trace[0]);
    }

    #[test]
    #[should_panic(expected = "images must share dimensions")]
    fn mismatched_pair_rejected() {
        let a = GrayImage::filled(4, 4, 0);
        let b = GrayImage::filled(4, 5, 0);
        StereoMatching::new(&a, &b, StereoConfig::default());
    }
}

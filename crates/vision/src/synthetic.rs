//! Deterministic synthetic scenes with ground truth.
//!
//! The paper evaluates on real photographs; those are not distributable, so
//! every experiment here runs on synthetic content with the same
//! *structure* (piecewise-constant regions for segmentation, translated
//! texture for motion, disparity-shifted pairs for stereo) plus the ground
//! truth the paper never had — letting quality be measured numerically
//! rather than by eye. All generators are seeded and deterministic.

use crate::image::GrayImage;
use mogs_mrf::Label;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A scene with per-pixel ground-truth labels.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledScene {
    /// The observed (noisy) image.
    pub image: GrayImage,
    /// Ground-truth label per pixel.
    pub truth: Vec<Label>,
}

/// A two-frame motion scene.
#[derive(Debug, Clone, PartialEq)]
pub struct MotionScene {
    /// Frame at time `t`.
    pub frame1: GrayImage,
    /// Frame at time `t+1`.
    pub frame2: GrayImage,
    /// Ground-truth displacement `(dx, dy)` applied between the frames.
    pub flow: (i32, i32),
}

/// A rectified stereo scene.
#[derive(Debug, Clone, PartialEq)]
pub struct StereoScene {
    /// Left image.
    pub left: GrayImage,
    /// Right image.
    pub right: GrayImage,
    /// Ground-truth disparity per pixel (label value = disparity).
    pub truth: Vec<Label>,
}

/// A piecewise-constant region scene for segmentation: `regions` Voronoi
/// cells with well-separated mean intensities, plus Gaussian noise of the
/// given standard deviation.
///
/// Region `k`'s mean intensity is `(k + 0.5) · 256 / regions`, matching the
/// evenly spaced class means [`crate::segmentation::SegmentationConfig`]
/// assumes by default.
///
/// # Panics
///
/// Panics if `regions` is zero or exceeds 64.
pub fn region_scene(
    width: usize,
    height: usize,
    regions: usize,
    noise_sigma: f64,
    seed: u64,
) -> LabeledScene {
    assert!(
        regions > 0 && regions <= 64,
        "region count must be in 1..=64"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    // Voronoi seed points, at least one per region.
    let sites: Vec<(f64, f64, usize)> = (0..regions.max(2) * 2)
        .map(|i| {
            (
                rng.gen::<f64>() * width as f64,
                rng.gen::<f64>() * height as f64,
                i % regions,
            )
        })
        .collect();
    let mut truth = Vec::with_capacity(width * height);
    let image = GrayImage::from_fn(width, height, |x, y| {
        let region = sites
            .iter()
            .min_by(|a, b| {
                let da = (a.0 - x as f64).powi(2) + (a.1 - y as f64).powi(2);
                let db = (b.0 - x as f64).powi(2) + (b.1 - y as f64).powi(2);
                da.total_cmp(&db)
            })
            .map(|s| s.2)
            .unwrap_or(0);
        truth.push(Label::new(region as u8));
        let mean = (region as f64 + 0.5) * 256.0 / regions as f64;
        let noisy = mean + gaussian(&mut rng) * noise_sigma;
        noisy.clamp(0.0, 255.0) as u8
    });
    LabeledScene { image, truth }
}

/// A random smooth texture (value noise blurred with a box filter), the
/// substrate for motion and stereo scenes: enough local contrast for
/// matching to be well-posed.
pub fn texture(width: usize, height: usize, seed: u64) -> GrayImage {
    let mut rng = StdRng::seed_from_u64(seed);
    let noise: Vec<i32> = (0..width * height).map(|_| rng.gen_range(0..256)).collect();
    // Two passes of a 3×3 box blur leave visible structure at the matching
    // window scale.
    let blur = |src: &[i32]| -> Vec<i32> {
        let mut out = vec![0i32; width * height];
        for y in 0..height {
            for x in 0..width {
                let mut total = 0;
                let mut count = 0;
                for dy in -1i32..=1 {
                    for dx in -1i32..=1 {
                        let nx = x as i32 + dx;
                        let ny = y as i32 + dy;
                        if nx >= 0 && ny >= 0 && (nx as usize) < width && (ny as usize) < height {
                            total += src[ny as usize * width + nx as usize];
                            count += 1;
                        }
                    }
                }
                out[y * width + x] = total / count;
            }
        }
        out
    };
    let smooth = blur(&blur(&noise));
    GrayImage::from_pixels(width, height, smooth.into_iter().map(|v| v as u8).collect())
}

/// A motion scene: a texture translated by `(dx, dy)` pixels between two
/// frames (border pixels replicate), with optional per-frame sensor noise.
///
/// # Panics
///
/// Panics if `|dx|` or `|dy|` exceeds 3 (the 7×7 search window's reach).
pub fn translated_pair(
    width: usize,
    height: usize,
    dx: i32,
    dy: i32,
    noise_sigma: f64,
    seed: u64,
) -> MotionScene {
    assert!(
        dx.abs() <= 3 && dy.abs() <= 3,
        "displacement must fit the 7x7 window"
    );
    let base = texture(width, height, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
    let noisy = |v: u8, rng: &mut StdRng| {
        (f64::from(v) + gaussian(rng) * noise_sigma).clamp(0.0, 255.0) as u8
    };
    let frame1 = GrayImage::from_fn(width, height, |x, y| noisy(base.get(x, y), &mut rng));
    let frame2 = GrayImage::from_fn(width, height, |x, y| {
        let v = base.get_clamped(x as isize - dx as isize, y as isize - dy as isize);
        noisy(v, &mut rng)
    });
    MotionScene {
        frame1,
        frame2,
        flow: (dx, dy),
    }
}

/// A motion scene with a *non-constant* flow field: a textured object
/// moves over a static textured background.
#[derive(Debug, Clone, PartialEq)]
pub struct MotionFieldScene {
    /// Frame at time `t`.
    pub frame1: GrayImage,
    /// Frame at time `t+1`.
    pub frame2: GrayImage,
    /// Ground-truth displacement per frame-1 pixel.
    pub flow_field: Vec<(i32, i32)>,
}

/// A moving-object scene: a bright textured rectangle (covering the centre
/// of frame 1) translates by `(dx, dy)` while the background stays still.
/// Ground truth is per-pixel: object pixels carry `(dx, dy)`, background
/// pixels `(0, 0)`. Pixels the object vacates are dis-occluded background
/// (their truth is `(0, 0)`; matching there is genuinely ambiguous, as in
/// real footage).
///
/// # Panics
///
/// Panics if `|dx|` or `|dy|` exceeds 3 (the 7×7 window's reach).
pub fn moving_object_pair(
    width: usize,
    height: usize,
    dx: i32,
    dy: i32,
    noise_sigma: f64,
    seed: u64,
) -> MotionFieldScene {
    assert!(
        dx.abs() <= 3 && dy.abs() <= 3,
        "displacement must fit the 7x7 window"
    );
    let background = texture(width, height, seed);
    // Object texture: brighter and differently seeded so it is trackable.
    let object = texture(width, height, seed ^ 0xCAFE);
    let in_object = |x: isize, y: isize| {
        x >= (width / 4) as isize
            && x < (3 * width / 4) as isize
            && y >= (height / 4) as isize
            && y < (3 * height / 4) as isize
    };
    let object_pixel = |x: isize, y: isize| object.get_clamped(x, y) / 2 + 128;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD00D);
    let noisy = |v: u8, rng: &mut StdRng| {
        (f64::from(v) + gaussian(rng) * noise_sigma).clamp(0.0, 255.0) as u8
    };
    let mut flow_field = Vec::with_capacity(width * height);
    let frame1 = GrayImage::from_fn(width, height, |x, y| {
        let (xi, yi) = (x as isize, y as isize);
        if in_object(xi, yi) {
            flow_field.push((dx, dy));
            noisy(object_pixel(xi, yi), &mut rng)
        } else {
            flow_field.push((0, 0));
            noisy(background.get(x, y), &mut rng)
        }
    });
    let frame2 = GrayImage::from_fn(width, height, |x, y| {
        let (xi, yi) = (x as isize, y as isize);
        // The object occupies its shifted footprint in frame 2.
        let (ox, oy) = (xi - dx as isize, yi - dy as isize);
        if in_object(ox, oy) {
            noisy(object_pixel(ox, oy), &mut rng)
        } else {
            noisy(background.get(x, y), &mut rng)
        }
    });
    MotionFieldScene {
        frame1,
        frame2,
        flow_field,
    }
}

/// A stereo scene: a fronto-parallel foreground rectangle at
/// `foreground_disparity` over a zero-disparity background.
///
/// Uses the standard rectified convention `x_left − x_right = d`, so the
/// right image satisfies `R(x, y) = L(x + d, y)` where `d` is the disparity
/// of the scene point — and a left pixel `(x, y)` with disparity `d`
/// matches `R(x − d, y)`, which is exactly what the stereo singleton
/// evaluates. Ground truth is reported per *left* pixel.
///
/// # Panics
///
/// Panics if `foreground_disparity` is not in `1..=4` (the 5-label space).
pub fn stereo_pair(
    width: usize,
    height: usize,
    foreground_disparity: u8,
    noise_sigma: f64,
    seed: u64,
) -> StereoScene {
    assert!(
        (1..=4).contains(&foreground_disparity),
        "disparity must be in 1..=4 for a 5-label space"
    );
    let left = texture(width, height, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    // Foreground membership is defined in LEFT-image coordinates.
    let in_foreground = |x: isize, y: isize| {
        x >= (width / 4) as isize
            && x < (3 * width / 4) as isize
            && y >= (height / 4) as isize
            && y < (3 * height / 4) as isize
    };
    let mut truth = Vec::with_capacity(width * height);
    for y in 0..height {
        for x in 0..width {
            let d = if in_foreground(x as isize, y as isize) {
                foreground_disparity
            } else {
                0
            };
            truth.push(Label::new(d));
        }
    }
    let right = GrayImage::from_fn(width, height, |x, y| {
        // The scene point seen at right-image x is the left pixel x + d;
        // check membership at that left coordinate (foreground occludes).
        let d_fg = foreground_disparity as isize;
        let d = if in_foreground(x as isize + d_fg, y as isize) {
            d_fg
        } else {
            0
        };
        let v = left.get_clamped(x as isize + d, y as isize);
        (f64::from(v) + gaussian(&mut rng) * noise_sigma).clamp(0.0, 255.0) as u8
    });
    StereoScene { left, right, truth }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_scene_is_deterministic() {
        let a = region_scene(16, 16, 3, 10.0, 5);
        let b = region_scene(16, 16, 3, 10.0, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn region_scene_labels_cover_regions() {
        let s = region_scene(32, 32, 4, 0.0, 1);
        let mut seen = [false; 4];
        for l in &s.truth {
            seen[usize::from(l.value())] = true;
        }
        assert!(seen.iter().all(|&s| s), "every region should appear");
    }

    #[test]
    fn noiseless_region_scene_matches_means() {
        let s = region_scene(16, 16, 2, 0.0, 2);
        for (i, l) in s.truth.iter().enumerate() {
            let expect = (f64::from(l.value()) + 0.5) * 128.0;
            let got = f64::from(s.image.pixels()[i]);
            assert!((got - expect).abs() <= 1.0);
        }
    }

    #[test]
    fn translated_pair_shifts_content() {
        let s = translated_pair(32, 32, 2, 1, 0.0, 3);
        // Interior pixels of frame2 equal frame1 shifted by (2, 1).
        for y in 5..27 {
            for x in 5..27 {
                assert_eq!(
                    s.frame2.get(x, y),
                    s.frame1.get(x - 2, y - 1),
                    "mismatch at ({x}, {y})"
                );
            }
        }
    }

    #[test]
    fn stereo_pair_shifts_foreground_only() {
        let s = stereo_pair(40, 40, 3, 0.0, 4);
        // A background pixel far from the rectangle matches unshifted.
        assert_eq!(s.right.get(2, 2), s.left.get(2, 2));
        // A left foreground pixel (x, y) with disparity d matches
        // R(x − d, y) — the relation the stereo singleton evaluates.
        assert_eq!(s.left.get(20, 20), s.right.get(17, 20));
        assert_eq!(s.truth[20 * 40 + 20], Label::new(3));
        assert_eq!(s.truth[2 * 40 + 2], Label::new(0));
    }

    #[test]
    fn texture_has_contrast() {
        let t = texture(32, 32, 9);
        let min = *t.pixels().iter().min().unwrap();
        let max = *t.pixels().iter().max().unwrap();
        assert!(
            max - min > 40,
            "texture should span a usable range, got {min}..{max}"
        );
    }

    #[test]
    #[should_panic(expected = "displacement must fit")]
    fn oversized_displacement_rejected() {
        translated_pair(16, 16, 4, 0, 0.0, 0);
    }
}

//! MRF texture modelling: sampling textures *from the prior* (§1 lists
//! texture modeling among the MRF applications).
//!
//! With no data term, Gibbs sampling draws labelings directly from the
//! smoothness prior — the generative direction of the same model the other
//! applications use for inference. The coupling strength and temperature
//! control the texture's correlation length: weak coupling gives salt-and-
//! pepper noise, strong coupling gives large coherent patches (and, for
//! Potts couplings beyond the critical point, system-spanning domains —
//! the Potts model's ordering transition).

use crate::image::GrayImage;
use mogs_gibbs::chain::{ChainConfig, McmcChain};
use mogs_gibbs::sampler::LabelSampler;
use mogs_gibbs::schedule::TemperatureSchedule;
use mogs_mrf::energy::ZeroSingleton;
use mogs_mrf::{Grid2D, Label, LabelSpace, MarkovRandomField, SmoothnessPrior};

/// Configuration of the texture model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TextureConfig {
    /// Number of gray levels (labels).
    pub levels: u16,
    /// The smoothness prior shaping the texture.
    pub prior: SmoothnessPrior,
    /// Sampling temperature.
    pub temperature: f64,
    /// Gibbs sweeps to run before taking the sample.
    pub sweeps: usize,
}

impl Default for TextureConfig {
    fn default() -> Self {
        TextureConfig {
            levels: 8,
            prior: SmoothnessPrior::potts(1.2),
            temperature: 1.0,
            sweeps: 60,
        }
    }
}

/// A generative MRF texture model (a pure-prior field).
#[derive(Debug, Clone)]
pub struct TextureModel {
    config: TextureConfig,
    mrf: MarkovRandomField<ZeroSingleton>,
}

impl TextureModel {
    /// Builds the model over a `width × height` lattice.
    pub fn new(width: usize, height: usize, config: TextureConfig) -> Self {
        let mrf = MarkovRandomField::builder(
            Grid2D::new(width, height),
            LabelSpace::scalar(config.levels),
        )
        .prior(config.prior)
        .temperature(config.temperature)
        .singleton(ZeroSingleton)
        .build();
        TextureModel { config, mrf }
    }

    /// The underlying field.
    pub fn mrf(&self) -> &MarkovRandomField<ZeroSingleton> {
        &self.mrf
    }

    /// Draws one texture sample with the given sampler.
    pub fn sample<L>(&self, sampler: L, seed: u64) -> Vec<Label>
    where
        L: LabelSampler + Clone + Send + Sync,
    {
        let chain_config = ChainConfig {
            schedule: TemperatureSchedule::constant(self.config.temperature),
            burn_in: 0,
            rao_blackwell: false,
            track_modes: false,
            threads: 1,
            seed,
        };
        // A random start mixes faster than all-zero for a pure prior:
        // scatter the labels with a cheap LCG keyed to the seed.
        let m = self.mrf.space().count() as u64;
        let initial: Vec<Label> = (0..self.mrf.grid().len() as u64)
            .map(|i| {
                let h = (i ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33;
                Label::new((h % m) as u8)
            })
            .collect();
        let mut chain = McmcChain::with_initial(&self.mrf, sampler, chain_config, initial);
        chain.run(self.config.sweeps);
        chain.result().labels
    }

    /// Renders a labeling as an image (levels spread over the gray range).
    pub fn to_image(&self, labels: &[Label]) -> GrayImage {
        let grid = self.mrf.grid();
        let max = (self.config.levels - 1).max(1);
        GrayImage::from_pixels(
            grid.width(),
            grid.height(),
            labels
                .iter()
                .map(|l| (u16::from(l.value()) * 255 / max) as u8)
                .collect(),
        )
    }

    /// Nearest-neighbour agreement rate of a labeling: the fraction of
    /// horizontally adjacent site pairs with equal labels — a simple
    /// correlation-length proxy (uniform random labelings score `1/M`).
    pub fn neighbor_agreement(&self, labels: &[Label]) -> f64 {
        let grid = self.mrf.grid();
        let mut pairs = 0usize;
        let mut agree = 0usize;
        for y in 0..grid.height() {
            for x in 0..grid.width() - 1 {
                pairs += 1;
                if labels[grid.index(x, y)] == labels[grid.index(x + 1, y)] {
                    agree += 1;
                }
            }
        }
        agree as f64 / pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mogs_gibbs::SoftmaxGibbs;

    #[test]
    fn stronger_coupling_means_more_coherent_texture() {
        let weak = TextureModel::new(
            32,
            32,
            TextureConfig {
                prior: SmoothnessPrior::potts(0.2),
                ..TextureConfig::default()
            },
        );
        let strong = TextureModel::new(
            32,
            32,
            TextureConfig {
                prior: SmoothnessPrior::potts(2.0),
                ..TextureConfig::default()
            },
        );
        let a_weak = weak.neighbor_agreement(&weak.sample(SoftmaxGibbs::new(), 1));
        let a_strong = strong.neighbor_agreement(&strong.sample(SoftmaxGibbs::new(), 1));
        assert!(
            a_strong > a_weak + 0.2,
            "strong coupling {a_strong} vs weak {a_weak}"
        );
    }

    #[test]
    fn zero_ish_coupling_is_near_uniform() {
        let model = TextureModel::new(
            32,
            32,
            TextureConfig {
                prior: SmoothnessPrior::potts(0.01),
                sweeps: 20,
                ..TextureConfig::default()
            },
        );
        let agreement = model.neighbor_agreement(&model.sample(SoftmaxGibbs::new(), 2));
        // Uniform over 8 labels: agreement ≈ 1/8.
        assert!((agreement - 0.125).abs() < 0.05, "agreement {agreement}");
    }

    #[test]
    fn squared_difference_prior_gives_smooth_gradients() {
        // Squared-difference coupling penalizes big jumps more than small
        // ones, so adjacent disagreeing labels should usually differ by 1.
        let model = TextureModel::new(
            32,
            32,
            TextureConfig {
                prior: SmoothnessPrior::squared_difference(1.5),
                ..TextureConfig::default()
            },
        );
        let labels = model.sample(SoftmaxGibbs::new(), 3);
        let grid = model.mrf().grid();
        let mut small_steps = 0usize;
        let mut disagreements = 0usize;
        for y in 0..grid.height() {
            for x in 0..grid.width() - 1 {
                let a = labels[grid.index(x, y)].value();
                let b = labels[grid.index(x + 1, y)].value();
                if a != b {
                    disagreements += 1;
                    if a.abs_diff(b) == 1 {
                        small_steps += 1;
                    }
                }
            }
        }
        assert!(disagreements > 0, "texture cannot be perfectly flat at T=1");
        let frac = small_steps as f64 / disagreements as f64;
        assert!(frac > 0.9, "fraction of unit steps {frac}");
    }

    #[test]
    fn rendering_spreads_levels() {
        let model = TextureModel::new(8, 8, TextureConfig::default());
        let labels = vec![Label::new(7); 64];
        assert!(model.to_image(&labels).pixels().iter().all(|&p| p == 255));
    }

    #[test]
    fn samples_are_seed_deterministic() {
        let model = TextureModel::new(16, 16, TextureConfig::default());
        let a = model.sample(SoftmaxGibbs::new(), 9);
        let b = model.sample(SoftmaxGibbs::new(), 9);
        assert_eq!(a, b);
    }
}

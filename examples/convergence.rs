//! MCMC convergence diagnostics in practice: energy traces, effective
//! sample size, and the multi-chain Gelman–Rubin statistic over a
//! segmentation posterior — plus how annealing changes the picture.
//!
//! Run with: `cargo run --release --example convergence`

use mogs_gibbs::chain::{ChainConfig, McmcChain};
use mogs_gibbs::diagnostics::{effective_sample_size, integrated_autocorrelation_time};
use mogs_gibbs::multichain::run_chains;
use mogs_gibbs::schedule::TemperatureSchedule;
use mogs_gibbs::SoftmaxGibbs;
use mogs_vision::metrics::label_accuracy;
use mogs_vision::segmentation::{Segmentation, SegmentationConfig};
use mogs_vision::synthetic;

fn main() {
    let scene = synthetic::region_scene(32, 32, 5, 7.0, 3);
    let app = Segmentation::new(scene.image.clone(), SegmentationConfig::default());

    // --- Single-chain view: trace statistics. ------------------------------
    let mut chain = McmcChain::new(
        app.mrf(),
        SoftmaxGibbs::new(),
        ChainConfig {
            burn_in: 20,
            seed: 1,
            ..ChainConfig::default()
        },
    );
    chain.run(120);
    let trace = &chain.energy_trace()[20..];
    println!(
        "single chain: 120 iterations, post-burn-in energy mean {:.0}",
        trace.iter().sum::<f64>() / trace.len() as f64
    );
    println!(
        "  integrated autocorrelation time {:.1}, effective sample size {:.0} of {}",
        integrated_autocorrelation_time(trace),
        effective_sample_size(trace),
        trace.len()
    );

    // --- Multi-chain view: R-hat over four replicas. ------------------------
    println!("\nGelman-Rubin R-hat over 4 independent chains:");
    for iterations in [10usize, 20, 40, 80] {
        let config = ChainConfig {
            burn_in: iterations / 4,
            seed: 7,
            track_modes: false,
            ..ChainConfig::default()
        };
        let result = run_chains(app.mrf(), &SoftmaxGibbs::new(), config, 4, iterations);
        println!(
            "  {iterations:>3} iterations: R-hat {:.3} ({})",
            result.r_hat,
            if result.converged(1.1) {
                "converged"
            } else {
                "still mixing"
            }
        );
    }

    // --- Annealing: posterior sampling vs optimization. ---------------------
    let fixed = app.run(SoftmaxGibbs::new(), 80, 5);
    let mut annealed = McmcChain::new(
        app.mrf(),
        SoftmaxGibbs::new(),
        ChainConfig {
            schedule: TemperatureSchedule::geometric(4.0, 0.93, 0.2),
            burn_in: 0,
            seed: 5,
            ..ChainConfig::default()
        },
    );
    annealed.run(80);
    println!(
        "\nfixed temperature:   final energy {:.0}, marginal-MAP accuracy {:.1}%",
        fixed.energy_trace.last().unwrap(),
        100.0 * label_accuracy(fixed.map_estimate.as_ref().unwrap(), &scene.truth),
    );
    println!(
        "geometric annealing: final energy {:.0}, final-sample accuracy {:.1}%",
        annealed.energy_trace().last().unwrap(),
        100.0 * label_accuracy(annealed.labels(), &scene.truth),
    );
    println!(
        "\nAnnealing drives the chain toward a single low-energy labeling \
         (simulated annealing);\nfixed-temperature sampling + mode tracking \
         estimates the marginal MAP the paper's\napplications report."
    );
}

//! Image restoration (denoising) — the original Gibbs-sampling application
//! (Geman & Geman 1984) — on 8 gray levels, the RSU-G's native 3-bit
//! scalar label range, with edge-preserving truncated-quadratic smoothing.
//!
//! Run with: `cargo run --release --example denoising`

use mogs_core::rsu_g::RsuGSampler;
use mogs_gibbs::SoftmaxGibbs;
use mogs_mrf::precision::EnergyQuantizer;
use mogs_vision::image::GrayImage;
use mogs_vision::restoration::{Restoration, RestorationConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // A clean test card: two flat regions and a diagonal stripe.
    let clean = GrayImage::from_fn(48, 48, |x, y| {
        if x + y > 60 && x + y < 72 {
            0xFF
        } else if x < 24 {
            0x30
        } else {
            0xB0
        }
    });
    // Heavy additive Gaussian noise.
    let mut rng = StdRng::seed_from_u64(11);
    let noisy = GrayImage::from_fn(48, 48, |x, y| {
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (f64::from(clean.get(x, y)) + z * 30.0).clamp(0.0, 255.0) as u8
    });

    let config = RestorationConfig::default();
    let temperature = config.temperature;
    let app = Restoration::new(&noisy, config);

    let software = app.run(SoftmaxGibbs::new(), 50, 1);
    let restored_sw = app.labels_to_image(software.map_estimate.as_ref().unwrap());

    let hardware = app.run(
        RsuGSampler::new(EnergyQuantizer::new(8.0), temperature),
        50,
        1,
    );
    let restored_hw = app.labels_to_image(hardware.map_estimate.as_ref().unwrap());

    println!("noisy input:\n{}", noisy.to_ascii());
    println!("restored (software Gibbs):\n{}", restored_sw.to_ascii());
    println!(
        "PSNR vs clean:  noisy {:.1} dB -> software {:.1} dB, RSU-G model {:.1} dB",
        Restoration::psnr(&clean, &noisy),
        Restoration::psnr(&clean, &restored_sw),
        Restoration::psnr(&clean, &restored_hw),
    );
    println!(
        "\nThe truncated-quadratic prior removes the noise while keeping the \
         stripe's edges;\nthe RSU-G hardware model restores within ~1 dB of the \
         exact sampler."
    );
}

//! Eight concurrent segmentation jobs on one persistent engine.
//!
//! Demonstrates the mogs-engine lifecycle end to end: start a worker
//! pool once, submit a batch of independent inference jobs (each its own
//! field, seed, and sampler clone), wait for all of them, and read the
//! engine's metrics snapshot. Run with:
//!
//! ```text
//! cargo run --release --example engine_throughput
//! ```

use mogs_engine::{Engine, EngineConfig};
use mogs_gibbs::SoftmaxGibbs;
use mogs_vision::metrics::label_accuracy;
use mogs_vision::segmentation::{Segmentation, SegmentationConfig};
use mogs_vision::synthetic;
use std::time::Instant;

const JOBS: u64 = 8;
const SIDE: usize = 96;
const SWEEPS: usize = 30;

fn main() {
    let engine = Engine::new(EngineConfig {
        queue_capacity: JOBS as usize,
        max_active_jobs: 4,
        ..EngineConfig::default()
    });

    // Eight independent scenes; their jobs interleave on the shared
    // worker pool, bounded by `max_active_jobs`.
    let scenes: Vec<_> = (0..JOBS)
        .map(|k| synthetic::region_scene(SIDE, SIDE, 5, 6.0, k))
        .collect();
    let apps: Vec<_> = scenes
        .iter()
        .map(|scene| {
            Segmentation::new(
                scene.image.clone(),
                SegmentationConfig {
                    threads: 4,
                    ..SegmentationConfig::default()
                },
            )
        })
        .collect();

    let start = Instant::now();
    let handles: Vec<_> = apps
        .iter()
        .enumerate()
        .map(|(k, app)| {
            let job = app.engine_job(SoftmaxGibbs::new(), SWEEPS, 0x1000 + k as u64);
            engine.submit(job).expect("engine accepts the batch")
        })
        .collect();
    println!("submitted {JOBS} segmentation jobs ({SIDE}x{SIDE}, M=5, {SWEEPS} sweeps each)");

    for ((handle, app), scene) in handles.into_iter().zip(&apps).zip(&scenes) {
        let id = handle.id();
        let output = handle.wait();
        let map = output.map_estimate.as_ref().expect("past burn-in");
        let acc = label_accuracy(map, &scene.truth);
        println!(
            "{id}: {} sweeps, final energy {:.0}, accuracy {:.3}",
            output.iterations_run,
            output.energy_trace.last().copied().unwrap_or(f64::NAN),
            acc
        );
        let _ = app;
    }
    println!("batch wall time: {:.2?}", start.elapsed());

    println!("\nengine metrics:\n{}", engine.metrics().to_json());
    engine.shutdown();
}

//! Dense motion estimation end to end, plus the architecture models:
//! recover a translation with MCMC, then ask the calibrated GPU and
//! accelerator models what the same workload costs at paper scale.
//!
//! Run with: `cargo run --release --example motion_accelerator`

use mogs_arch::accelerator::Accelerator;
use mogs_arch::gpu::GpuModel;
use mogs_arch::kernel::KernelVariant;
use mogs_arch::workload::{ImageSize, Workload};
use mogs_gibbs::SoftmaxGibbs;
use mogs_vision::metrics::mean_endpoint_error;
use mogs_vision::motion::{MotionConfig, MotionEstimation};
use mogs_vision::synthetic;

fn main() {
    // --- Functional: recover a (2, -1) pixel translation. -----------------
    let scene = synthetic::translated_pair(48, 48, 2, -1, 2.0, 7);
    let app = MotionEstimation::new(&scene.frame1, &scene.frame2, MotionConfig::default());
    let result = app.run(SoftmaxGibbs::new(), 60, 3);
    let flow = app.flow_field(result.map_estimate.as_ref().unwrap());
    println!(
        "recovered flow for a (2,-1) translation: mean endpoint error {:.3} px",
        mean_endpoint_error(&flow, scene.flow)
    );

    // --- Performance: the paper's evaluation at HD scale. -----------------
    let gpu = GpuModel::calibrated();
    let accelerator = Accelerator::paper_design();
    let w = Workload::motion(ImageSize::HD);
    println!("\ndense motion estimation, 1920x1080, 400 iterations, M = 49 labels:");
    for variant in [
        KernelVariant::Baseline,
        KernelVariant::OptimizedSingleton,
        KernelVariant::rsu(1),
        KernelVariant::rsu(4),
    ] {
        println!(
            "  {:<8}  {:>6.2} s   ({:>4.1}x over GPU){}",
            variant.name(),
            gpu.execution_time(&w, variant),
            gpu.speedup_over_baseline(&w, variant),
            if gpu.is_memory_bound(&w, variant) {
                "  [memory-bound]"
            } else {
                ""
            },
        );
    }
    println!(
        "  {:<8}  {:>6.2} s   ({:>4.1}x over GPU)  [{} RSU-G1 units at 336 GB/s]",
        "accel",
        accelerator.execution_time(&w),
        accelerator.speedup_over_gpu(&gpu, &w),
        accelerator.units_required(),
    );
    println!(
        "\nPaper reference (Table 2 / §8.2): GPU 7.17 s, Opt 3.35 s, RSU-G1 0.45 s, \
         RSU-G4 0.21 s, accelerator 54x over GPU."
    );
}

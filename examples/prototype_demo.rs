//! The macro-scale prototype demonstration (paper §7, Figures 6–7): the
//! ratio-parameterization experiment and the two-label segmentation of a
//! 50×67 image, on the emulated bench rig.
//!
//! Run with: `cargo run --release --example prototype_demo`

use mogs_proto::experiments::{ratio_sweep, segment_demo, standard_targets};
use mogs_proto::rig::PrototypeRig;
use mogs_proto::timing::PrototypeTiming;

fn main() {
    // --- Experiment 1: pairwise relative-probability parameterization. ----
    let mut rig = PrototypeRig::default();
    println!("ratio parameterization (paper: <=10% error below 30, ~24% above):\n");
    println!("{:>8} {:>10} {:>8}", "target", "measured", "error");
    for point in ratio_sweep(&mut rig, &standard_targets(), 60_000, 42) {
        println!(
            "{:>8.0} {:>10.1} {:>7.1}%",
            point.target,
            point.measured,
            point.relative_error * 100.0
        );
    }

    // --- Experiment 2: two-label segmentation, sample at iteration 10. ----
    let result = segment_demo(PrototypeRig::default(), 7);
    println!("\nFigure 7 demo (50x67, 2 labels, 10 MCMC iterations):");
    println!("\ninput:\n{}", result.input.to_ascii());
    println!("sample at 10th iteration:\n{}", result.sample.to_ascii());
    println!("accuracy vs ground truth: {:.1}%", result.accuracy * 100.0);

    // --- Why the bench rig is functionally, not performance, interesting. -
    let timing = PrototypeTiming::default();
    println!(
        "\nbench timing: {:.0} s per image-iteration ({}s of it is the \
         proprietary laser-controller interface);",
        timing.iteration_seconds(50 * 67),
        timing.controller_delay_s,
    );
    println!(
        "an integrated RSU-G1 samples the same pixel ~{:.0}x faster.",
        timing.integration_gain(11.0)
    );
}

//! Quickstart: segment a noisy synthetic image with MRF-MCMC, on both the
//! exact software Gibbs sampler and the RSU-G hardware model, and compare.
//!
//! Run with: `cargo run --release --example quickstart`

use mogs_core::rsu_g::RsuGSampler;
use mogs_gibbs::SoftmaxGibbs;
use mogs_mrf::precision::EnergyQuantizer;
use mogs_vision::metrics::label_accuracy;
use mogs_vision::segmentation::{Segmentation, SegmentationConfig};
use mogs_vision::synthetic;

fn main() {
    // A 64x64 scene: five intensity regions under Gaussian noise, with the
    // generating ground truth kept for scoring.
    let scene = synthetic::region_scene(64, 64, 5, 8.0, 42);
    println!("input scene: {} ({} regions + noise)", scene.image, 5);

    let config = SegmentationConfig::default();
    let temperature = config.temperature;
    let app = Segmentation::new(scene.image.clone(), config);

    // 1) Exact software Gibbs sampling — the reference.
    let software = app.run(SoftmaxGibbs::new(), 80, 1);
    let software_map = software.map_estimate.expect("modes tracked");
    println!(
        "software Gibbs:  accuracy {:.1}%  final energy {:.0}",
        100.0 * label_accuracy(&software_map, &scene.truth),
        software.energy_trace.last().unwrap(),
    );

    // 2) The RSU-G hardware model — same MRF, same chain, but every label
    //    draw runs the paper's quantization chain (8-bit energies → 4-bit
    //    intensity codes → exponential TTFs in an 8-bit register →
    //    first-to-fire).
    let rsu = app.run(
        RsuGSampler::new(EnergyQuantizer::new(8.0), temperature),
        80,
        1,
    );
    let rsu_map = rsu.map_estimate.expect("modes tracked");
    println!(
        "RSU-G model:     accuracy {:.1}%  final energy {:.0}",
        100.0 * label_accuracy(&rsu_map, &scene.truth),
        rsu.energy_trace.last().unwrap(),
    );

    println!(
        "\nThe RSU-G's limited-precision optical sampling chain should track \
         the exact sampler\nwithin a few percent — that is the paper's core \
         fidelity claim (§4.4)."
    );
}

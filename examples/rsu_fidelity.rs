//! Sampling-fidelity deep dive: how close is the RSU-G's quantized
//! first-to-fire draw to the exact Gibbs conditional, and where does each
//! quantization stage lose precision?
//!
//! Run with: `cargo run --release --example rsu_fidelity`

use mogs_core::rsu_g::{RsuG, RsuGConfig, SiteInputs};
use mogs_gibbs::SoftmaxGibbs;
use mogs_ret::exponential::first_to_fire;
use mogs_vision::metrics::total_variation;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let t8 = 24.0;
    let mut rsu = RsuG::new(RsuGConfig::for_labels(5, t8));
    // A pixel pulled between classes: neighbours disagree and the data sits
    // between two class means.
    let inputs = SiteInputs {
        neighbors: [Some(1), Some(1), Some(2), Some(2)],
        data1: 22,
        data2: vec![6, 19, 32, 44, 57],
    };

    let energies = rsu.energies(&inputs);
    println!("8-bit energies per label:       {energies:?}");
    let codes = rsu.intensity_codes(&inputs);
    println!("4-bit intensity codes:          {codes:?}");

    let energies_f: Vec<f64> = energies.iter().map(|&e| f64::from(e)).collect();
    let exact = SoftmaxGibbs::probabilities(&energies_f, t8);
    let code_ideal = rsu.ideal_win_probabilities(&inputs);

    // Empirical winner distribution through the full chain (TTF register
    // quantization included).
    let mut rng = StdRng::seed_from_u64(9);
    let n = 200_000;
    let mut counts = [0usize; 5];
    for _ in 0..n {
        counts[usize::from(rsu.sample_site(&inputs, &mut rng).label.value())] += 1;
    }
    let empirical: Vec<f64> = counts.iter().map(|&c| c as f64 / f64::from(n)).collect();

    println!(
        "\n{:<8} {:>10} {:>12} {:>12}",
        "label", "exact", "code-ideal", "measured"
    );
    for m in 0..5 {
        println!(
            "{:<8} {:>10.4} {:>12.4} {:>12.4}",
            m, exact[m], code_ideal[m], empirical[m]
        );
    }
    println!(
        "\nTV(exact, code-ideal)  = {:.4}   <- 4-bit intensity quantization",
        total_variation(&exact, &code_ideal)
    );
    println!(
        "TV(exact, measured)    = {:.4}   <- + 8-bit TTF register effects",
        total_variation(&exact, &empirical)
    );

    // Sanity anchor: the pure first-to-fire principle with ideal
    // exponentials is exactly softmax.
    let rates: Vec<f64> = exact.clone();
    let mut wins = [0usize; 5];
    for _ in 0..n {
        wins[first_to_fire(&rates, &mut rng).unwrap()] += 1;
    }
    let ftf: Vec<f64> = wins.iter().map(|&c| c as f64 / f64::from(n)).collect();
    println!(
        "TV(exact, ideal first-to-fire) = {:.4}   <- statistical noise only",
        total_variation(&exact, &ftf)
    );
}

//! MRF texture modelling: sampling textures *from the prior* — the
//! generative direction of the same model the other examples invert.
//! Shows how coupling strength controls the correlation length, through
//! the Potts ordering transition.
//!
//! Run with: `cargo run --release --example texture_synthesis`

use mogs_gibbs::SoftmaxGibbs;
use mogs_mrf::SmoothnessPrior;
use mogs_vision::texture_model::{TextureConfig, TextureModel};

fn main() {
    println!("Potts textures at increasing coupling (48x48, 8 labels, 60 sweeps):\n");
    for coupling in [0.2, 0.8, 1.5] {
        let model = TextureModel::new(
            48,
            24,
            TextureConfig {
                prior: SmoothnessPrior::potts(coupling),
                ..TextureConfig::default()
            },
        );
        let labels = model.sample(SoftmaxGibbs::new(), 7);
        println!(
            "coupling {coupling}: neighbour agreement {:.0}% (uniform would be 12.5%)",
            100.0 * model.neighbor_agreement(&labels)
        );
        println!("{}", model.to_image(&labels).to_ascii());
    }
    println!(
        "Weak coupling gives salt-and-pepper noise; strong coupling grows \
         coherent domains —\nthe texture-modeling application §1 of the paper \
         lists, running on the same MRF machinery."
    );
}

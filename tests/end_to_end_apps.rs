//! Cross-crate integration: the three vision applications run end to end
//! on both the exact software sampler and the RSU-G hardware model, and
//! the hardware model does not meaningfully degrade solution quality.

use mogs_core::rsu_g::RsuGSampler;
use mogs_gibbs::{Metropolis, SoftmaxGibbs};
use mogs_mrf::precision::EnergyQuantizer;
use mogs_vision::metrics::{label_accuracy, mean_endpoint_error};
use mogs_vision::motion::{MotionConfig, MotionEstimation};
use mogs_vision::segmentation::{Segmentation, SegmentationConfig};
use mogs_vision::stereo::{StereoConfig, StereoMatching};
use mogs_vision::synthetic;

fn rsu(temperature: f64) -> RsuGSampler {
    // Scale 8 pre-factors model energies into the 8-bit hardware domain
    // (t8 = 8T), giving the LUT fine granularity and a wide cutoff — the
    // "weights pre-factored from the input data" step of §5.2.
    RsuGSampler::new(EnergyQuantizer::new(8.0), temperature)
}

#[test]
fn segmentation_software_vs_rsu() {
    let scene = synthetic::region_scene(32, 32, 5, 7.0, 100);
    let config = SegmentationConfig::default();
    let t = config.temperature;
    let app = Segmentation::new(scene.image.clone(), config);

    let soft = app.run(SoftmaxGibbs::new(), 60, 1);
    let hard = app.run(rsu(t), 60, 1);
    let acc_soft = label_accuracy(soft.map_estimate.as_ref().unwrap(), &scene.truth);
    let acc_hard = label_accuracy(hard.map_estimate.as_ref().unwrap(), &scene.truth);
    assert!(acc_soft > 0.8, "software accuracy {acc_soft}");
    assert!(
        acc_hard > acc_soft - 0.08,
        "RSU accuracy {acc_hard} vs software {acc_soft}"
    );
}

#[test]
fn motion_software_vs_rsu() {
    let scene = synthetic::translated_pair(28, 28, 2, 1, 2.0, 101);
    let config = MotionConfig::default();
    let t = config.temperature;
    let app = MotionEstimation::new(&scene.frame1, &scene.frame2, config);

    let soft = app.run(SoftmaxGibbs::new(), 50, 2);
    let hard = app.run(rsu(t), 50, 2);
    let epe_soft = mean_endpoint_error(
        &app.flow_field(soft.map_estimate.as_ref().unwrap()),
        scene.flow,
    );
    let epe_hard = mean_endpoint_error(
        &app.flow_field(hard.map_estimate.as_ref().unwrap()),
        scene.flow,
    );
    assert!(epe_soft < 0.8, "software EPE {epe_soft}");
    assert!(
        epe_hard < epe_soft + 0.5,
        "RSU EPE {epe_hard} vs software {epe_soft}"
    );
}

#[test]
fn stereo_software_vs_rsu() {
    let scene = synthetic::stereo_pair(32, 32, 3, 2.0, 102);
    let config = StereoConfig::default();
    let t = config.temperature;
    let app = StereoMatching::new(&scene.left, &scene.right, config);

    let soft = app.run(SoftmaxGibbs::new(), 60, 3);
    let hard = app.run(rsu(t), 60, 3);
    let acc_soft = label_accuracy(soft.map_estimate.as_ref().unwrap(), &scene.truth);
    let acc_hard = label_accuracy(hard.map_estimate.as_ref().unwrap(), &scene.truth);
    assert!(acc_soft > 0.65, "software accuracy {acc_soft}");
    assert!(
        acc_hard > acc_soft - 0.10,
        "RSU {acc_hard} vs software {acc_soft}"
    );
}

#[test]
fn metropolis_converges_slower_but_converges() {
    // Metropolis is the alternative MCMC kernel (§4.2); on the same budget
    // it should still reduce energy substantially.
    let scene = synthetic::region_scene(24, 24, 5, 7.0, 103);
    let app = Segmentation::new(scene.image.clone(), SegmentationConfig::default());
    let result = app.run(Metropolis::new(), 80, 4);
    assert!(result.energy_trace[79] < 0.6 * result.energy_trace[0]);
}

#[test]
fn parallel_and_sequential_chains_reach_similar_energy() {
    let scene = synthetic::region_scene(32, 32, 5, 7.0, 104);
    let seq_app = Segmentation::new(scene.image.clone(), SegmentationConfig::default());
    let par_app = Segmentation::new(
        scene.image.clone(),
        SegmentationConfig {
            threads: 4,
            ..SegmentationConfig::default()
        },
    );
    let seq = seq_app.run(SoftmaxGibbs::new(), 50, 5);
    let par = par_app.run(SoftmaxGibbs::new(), 50, 5);
    let (e_seq, e_par) = (
        *seq.energy_trace.last().unwrap(),
        *par.energy_trace.last().unwrap(),
    );
    let rel = (e_seq - e_par).abs() / e_seq.abs().max(1.0);
    assert!(rel < 0.1, "sequential {e_seq} vs parallel {e_par}");
}

#[test]
fn restoration_runs_on_both_neighborhood_orders() {
    use mogs_mrf::Neighborhood;
    use mogs_vision::image::GrayImage;
    use mogs_vision::restoration::{Restoration, RestorationConfig};
    // A diagonal stripe: the structure second-order diagonal cliques see
    // directly.
    let clean = GrayImage::from_fn(32, 32, |x, y| if (x + y) % 16 < 8 { 0x28 } else { 0xC4 });
    let noisy = {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        GrayImage::from_fn(32, 32, |x, y| {
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (f64::from(clean.get(x, y)) + z * 20.0).clamp(0.0, 255.0) as u8
        })
    };
    let mut psnrs = Vec::new();
    for neighborhood in [Neighborhood::FirstOrder, Neighborhood::SecondOrder] {
        let app = Restoration::new(
            &noisy,
            RestorationConfig {
                neighborhood,
                threads: 2,
                ..RestorationConfig::default()
            },
        );
        let result = app.run(SoftmaxGibbs::new(), 40, 6);
        let restored = app.labels_to_image(result.map_estimate.as_ref().unwrap());
        let psnr = Restoration::psnr(&clean, &restored);
        assert!(
            psnr > Restoration::psnr(&clean, &noisy) + 2.0,
            "{neighborhood:?}: restored PSNR {psnr:.1}"
        );
        psnrs.push(psnr);
    }
    // Both orders must be competitive on diagonal structure (within 3 dB).
    assert!(
        (psnrs[0] - psnrs[1]).abs() < 3.0,
        "first {} vs second {}",
        psnrs[0],
        psnrs[1]
    );
}

#[test]
fn energy_traces_are_monotone_in_expectation() {
    // Not strictly monotone (it is a sampler, not a descent method), but
    // the second-half mean must be far below the first few iterations.
    let scene = synthetic::region_scene(24, 24, 5, 7.0, 105);
    let app = Segmentation::new(scene.image.clone(), SegmentationConfig::default());
    let result = app.run(SoftmaxGibbs::new(), 60, 6);
    let early = result.energy_trace[0];
    let late: f64 = result.energy_trace[30..].iter().sum::<f64>() / 30.0;
    assert!(late < 0.8 * early, "early {early} late {late}");
}

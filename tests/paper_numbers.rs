//! The paper's headline numbers, asserted end to end across crates.
//! Every constant here is quoted from the paper text (abstract, §8, Tables
//! 2–4); the models must reproduce them within the stated tolerances.

use mogs_arch::accelerator::Accelerator;
use mogs_arch::gpu::GpuModel;
use mogs_arch::kernel::KernelVariant;
use mogs_arch::speedup::{figure8, table2};
use mogs_arch::workload::{ImageSize, VisionApp, Workload};
use mogs_core::area::AreaModel;
use mogs_core::power::{PowerModel, TechNode};
use mogs_core::variants::RsuVariant;

fn within(got: f64, paper: f64, tol: f64) -> bool {
    (got - paper).abs() / paper < tol
}

#[test]
fn abstract_headline_speedups() {
    // "an RSU augmented GPU provides speedups over a GPU of 3 and 16" (HD).
    let gpu = GpuModel::calibrated();
    let seg = gpu.speedup_over_baseline(
        &Workload::segmentation(ImageSize::HD),
        KernelVariant::rsu(1),
    );
    let motion = gpu.speedup_over_baseline(&Workload::motion(ImageSize::HD), KernelVariant::rsu(1));
    assert!(within(seg, 3.0, 0.15), "segmentation HD speedup {seg}");
    assert!(within(motion, 16.0, 0.15), "motion HD speedup {motion}");
}

#[test]
fn abstract_accelerator_speedups() {
    // "a discrete accelerator ... produces speedups of 21 and 54".
    let gpu = GpuModel::calibrated();
    let acc = Accelerator::paper_design();
    assert!(within(
        acc.speedup_over_gpu(&gpu, &Workload::segmentation(ImageSize::HD)),
        21.0,
        0.05
    ));
    assert!(within(
        acc.speedup_over_gpu(&gpu, &Workload::motion(ImageSize::HD)),
        54.0,
        0.05
    ));
    assert_eq!(acc.units_required(), 336);
}

#[test]
fn abstract_power_and_area() {
    // "optical components ... consume very little power (0.16 mW) and area
    // (0.0016 mm2) ... CMOS ... 3.75 mW ... total RSU-G power of 3.91 mW
    // and area of 0.0029 mm2."
    let power = PowerModel::new(TechNode::N15).rsu_g1();
    assert!((power.ret_mw - 0.16).abs() < 1e-9);
    assert!((power.logic_mw + power.lut_mw - 3.75).abs() < 1e-9);
    assert!((power.total_mw() - 3.91).abs() < 1e-9);
    let area = AreaModel::new(TechNode::N15).rsu_g1();
    assert!((area.ret_um2 / 1e6 - 0.0016).abs() < 1e-9);
    assert!((area.total_mm2() - 0.0029).abs() < 1e-4);
}

#[test]
fn table2_all_sixteen_cells() {
    let rows = table2(&GpuModel::calibrated());
    let paper: [(f64, f64, f64, f64); 4] = [
        (0.3, 0.23, 0.09, 0.09),
        (3.2, 2.6, 1.1, 1.1),
        (0.55, 0.27, 0.04, 0.02),
        (7.17, 3.35, 0.45, 0.21),
    ];
    for (row, (gpu, opt, g1, g4)) in rows.iter().zip(paper) {
        assert!(within(row.gpu, gpu, 0.01), "{:?} GPU {}", row.app, row.gpu);
        assert!(
            within(row.opt_gpu, opt, 0.15),
            "{:?} Opt {}",
            row.app,
            row.opt_gpu
        );
        assert!(
            within(row.rsu_g1, g1, 0.15),
            "{:?} G1 {}",
            row.app,
            row.rsu_g1
        );
        assert!(
            within(row.rsu_g4, g4, 0.15),
            "{:?} G4 {}",
            row.app,
            row.rsu_g4
        );
    }
}

#[test]
fn figure8_shape_claims() {
    let rows = figure8(&GpuModel::calibrated());
    let get = |app, size, width| {
        rows.iter()
            .find(|r| r.app == app && r.size == size && r.rsu_width == width)
            .unwrap()
    };
    // Motion gains dwarf segmentation gains at every width/size.
    for width in [1u8, 4] {
        for size in [ImageSize::SMALL, ImageSize::HD] {
            assert!(
                get(VisionApp::MotionEstimation, size, width).over_gpu
                    > 2.0 * get(VisionApp::Segmentation, size, width).over_gpu
            );
        }
    }
    // G4 roughly doubles G1 for motion, and does nothing for segmentation.
    let g1 = get(VisionApp::MotionEstimation, ImageSize::HD, 1).over_gpu;
    let g4 = get(VisionApp::MotionEstimation, ImageSize::HD, 4).over_gpu;
    assert!(
        g4 / g1 > 1.7 && g4 / g1 < 2.5,
        "G4/G1 motion ratio {}",
        g4 / g1
    );
    let s1 = get(VisionApp::Segmentation, ImageSize::HD, 1).over_gpu;
    let s4 = get(VisionApp::Segmentation, ImageSize::HD, 4).over_gpu;
    assert!(
        (s4 / s1 - 1.0).abs() < 0.06,
        "segmentation G4/G1 {}",
        s4 / s1
    );
}

#[test]
fn section_8_3_system_power() {
    // "A GPU augmented with RSU-G units (3072 in total) consumes 12W ...
    // The accelerator with 336 units ... consumes only 1.3W".
    let model = PowerModel::new(TechNode::N15);
    assert!(within(model.system_watts(3072), 12.0, 0.01));
    assert!(within(model.system_watts(336), 1.3, 0.02));
}

#[test]
fn tables_3_and_4_component_sums() {
    for node in [TechNode::N45, TechNode::N15] {
        let p = PowerModel::new(node).rsu_g1();
        let a = AreaModel::new(node).rsu_g1();
        let (p_total, a_total) = match node {
            TechNode::N45 => (11.28, 5673.0),
            TechNode::N15 => (3.91, 2898.0),
        };
        assert!((p.total_mw() - p_total).abs() < 1e-9);
        assert!((a.total_um2() - a_total).abs() < 1e-9);
    }
}

#[test]
fn rsu_g_latency_formulas() {
    // §5.1: "7+(M-1) cycles" for RSU-G1; "evaluate up to 64 labels
    // (RSU-G64) in 12 cycles"; §5.3: "256 RET circuits" for RSU-G64.
    assert_eq!(RsuVariant::g1().latency_cycles(5), 11);
    assert_eq!(RsuVariant::g1().latency_cycles(49), 55);
    assert_eq!(RsuVariant::g64().latency_cycles(64), 12);
    assert_eq!(RsuVariant::g64().ret_circuits(), 256);
}

#[test]
fn accelerator_small_image_speedups() {
    // §8.2: "the upper bound of speedups over standard MCMC on the GPU is
    // 39 (image segmentation) and 84 (dense motion estimation) for 320x320
    // images".
    let gpu = GpuModel::calibrated();
    let acc = Accelerator::paper_design();
    assert!(within(
        acc.speedup_over_gpu(&gpu, &Workload::segmentation(ImageSize::SMALL)),
        39.0,
        0.03
    ));
    assert!(within(
        acc.speedup_over_gpu(&gpu, &Workload::motion(ImageSize::SMALL)),
        84.0,
        0.03
    ));
}

//! Integration tests of the §7 prototype experiments against the paper's
//! reported accuracy bands, plus the harness renderings.

use mogs_bench::experiments::{fig7, proto_ratio};
use mogs_proto::experiments::{ratio_sweep, standard_targets};
use mogs_proto::rig::{PrototypeRig, RigConfig};
use mogs_proto::timing::PrototypeTiming;

#[test]
fn ratio_sweep_error_bands_match_section_7() {
    let mut rig = PrototypeRig::default();
    let points = ratio_sweep(&mut rig, &standard_targets(), 60_000, 42);
    let mut low_band_max = 0.0f64;
    let mut high_band_max = 0.0f64;
    for p in &points {
        if p.target <= 30.0 {
            low_band_max = low_band_max.max(p.relative_error);
        } else {
            high_band_max = high_band_max.max(p.relative_error);
        }
    }
    // "within 10% when the ratio is below 30, and 24% for higher ratios"
    // (we allow the emulation a little slack over the paper's 24%).
    assert!(low_band_max < 0.10, "low-band max error {low_band_max}");
    assert!(high_band_max < 0.35, "high-band max error {high_band_max}");
    assert!(
        high_band_max > low_band_max,
        "high ratios must be harder: {high_band_max} vs {low_band_max}"
    );
}

#[test]
fn ratio_sweep_renders_for_the_harness() {
    let points = proto_ratio::run(10_000, 1);
    let text = proto_ratio::render(&points);
    assert!(text.contains("target ratio"));
    assert!(text.lines().count() > 10);
}

#[test]
fn figure7_demo_round_trips_through_pgm() {
    let dir = std::env::temp_dir().join("mogs_fig7_test");
    let result = fig7::run(Some(&dir), 7).expect("fig7 run");
    assert!(result.accuracy > 0.85, "accuracy {}", result.accuracy);
    // Both PGMs exist and parse back to the same dimensions.
    for name in ["fig7_input.pgm", "fig7_sample.pgm"] {
        let file = std::fs::File::open(dir.join(name)).expect("pgm written");
        let img = mogs_vision::image::GrayImage::read_pgm(std::io::BufReader::new(file))
            .expect("pgm parses");
        assert_eq!((img.width(), img.height()), (50, 67));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn better_bench_components_tighten_the_error() {
    // With a finer dark floor and tighter calibration the high-ratio error
    // should shrink — the "finer characterization and control ... could
    // further improve the accuracy" sentence of §7.
    let coarse = {
        let mut rig = PrototypeRig::default();
        ratio_sweep(&mut rig, &[100.0, 150.0, 255.0], 120_000, 9)
    };
    let fine = {
        let mut rig = PrototypeRig::new(RigConfig {
            dark_fraction: 1e-5,
            calibration_sigma: 0.002,
            ..RigConfig::default()
        });
        ratio_sweep(&mut rig, &[100.0, 150.0, 255.0], 120_000, 9)
    };
    let mean_err = |points: &[mogs_proto::experiments::RatioPoint]| {
        points.iter().map(|p| p.relative_error).sum::<f64>() / points.len() as f64
    };
    assert!(
        mean_err(&fine) < mean_err(&coarse),
        "fine {} vs coarse {}",
        mean_err(&fine),
        mean_err(&coarse)
    );
}

#[test]
fn prototype_performance_is_interface_dominated() {
    // §7: sampling ≤ ~2 µs/pixel but 60 s/image-iteration through the
    // proprietary controller — the prototype proves function, not speed.
    let t = PrototypeTiming::default();
    let sampling_total = 50.0 * 67.0 * 2e-6;
    assert!(t.iteration_seconds(50 * 67) > 1000.0 * sampling_total);
}

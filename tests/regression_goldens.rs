//! Golden-value regression tests: every deterministic model output the
//! harness reports is pinned here to its exact current value, so an
//! accidental change to a calibration constant, kernel cost, or latency
//! formula fails loudly instead of silently shifting EXPERIMENTS.md.
//!
//! (Statistical outputs — anything drawn through an RNG — are covered by
//! tolerance tests elsewhere; these goldens are exact.)

use mogs_arch::accel_sim::{AccelSim, AccelSimConfig};
use mogs_arch::accelerator::Accelerator;
use mogs_arch::gpu::GpuModel;
use mogs_arch::kernel::{work_per_pixel_update, KernelVariant};
use mogs_arch::workload::{ImageSize, VisionApp, Workload};
use mogs_core::area::AreaModel;
use mogs_core::power::{PowerModel, TechNode};
use mogs_core::stream::{naive_stream, pipelined_stream};
use mogs_core::variants::RsuVariant;

fn assert_golden(got: f64, golden: f64, what: &str) {
    assert!(
        (got - golden).abs() <= 1e-9 * golden.abs().max(1.0),
        "{what}: {got} drifted from golden {golden}"
    );
}

#[test]
fn kernel_work_goldens() {
    let cases = [
        (VisionApp::Segmentation, KernelVariant::Baseline, 280.0),
        (
            VisionApp::Segmentation,
            KernelVariant::OptimizedSingleton,
            230.0,
        ),
        (VisionApp::Segmentation, KernelVariant::rsu(1), 90.0),
        (VisionApp::Segmentation, KernelVariant::rsu(4), 86.25),
        (VisionApp::MotionEstimation, KernelVariant::Baseline, 4264.0),
        (
            VisionApp::MotionEstimation,
            KernelVariant::OptimizedSingleton,
            2010.0,
        ),
        (VisionApp::MotionEstimation, KernelVariant::rsu(1), 281.0),
        (VisionApp::MotionEstimation, KernelVariant::rsu(4), 134.0),
    ];
    for (app, variant, golden) in cases {
        assert_golden(
            work_per_pixel_update(app, variant),
            golden,
            &format!("work({app:?}, {})", variant.name()),
        );
    }
}

#[test]
fn table2_model_cell_goldens() {
    let gpu = GpuModel::calibrated();
    let cases = [
        (
            Workload::segmentation(ImageSize::SMALL),
            KernelVariant::rsu(1),
            0.09642857142857143,
        ),
        (
            Workload::segmentation(ImageSize::HD),
            KernelVariant::rsu(1),
            1.0285714285714285,
        ),
        (
            Workload::motion(ImageSize::SMALL),
            KernelVariant::rsu(1),
            0.036_245_309_568_480_3,
        ),
        (
            Workload::motion(ImageSize::HD),
            KernelVariant::rsu(1),
            0.472_507_035_647_279_6,
        ),
        (
            Workload::motion(ImageSize::HD),
            KernelVariant::rsu(4),
            0.22532363977485928,
        ),
    ];
    for (w, variant, golden) in cases {
        assert_golden(
            gpu.execution_time(&w, variant),
            golden,
            &format!(
                "t({}, {}, {})",
                w.app.name(),
                w.size.label(),
                variant.name()
            ),
        );
    }
}

#[test]
fn accelerator_goldens() {
    let acc = Accelerator::paper_design();
    assert_eq!(acc.units_required(), 336);
    assert_golden(
        acc.execution_time(&Workload::segmentation(ImageSize::HD)),
        0.15428571428571428,
        "accel seg HD",
    );
    assert_golden(
        acc.execution_time(&Workload::motion(ImageSize::HD)),
        0.13330285714285714,
        "accel motion HD",
    );
}

#[test]
fn power_area_goldens() {
    assert_golden(
        PowerModel::new(TechNode::N45).rsu_g1().total_mw(),
        11.28,
        "power 45nm",
    );
    assert_golden(
        PowerModel::new(TechNode::N15).rsu_g1().total_mw(),
        3.91,
        "power 15nm",
    );
    assert_golden(
        PowerModel::new(TechNode::N15).system_watts(3072),
        12.01152,
        "GPU watts",
    );
    assert_golden(
        AreaModel::new(TechNode::N45).rsu_g1().total_um2(),
        5673.0,
        "area 45nm",
    );
    assert_golden(
        AreaModel::new(TechNode::N15).rsu_g1().total_um2(),
        2898.0,
        "area 15nm",
    );
}

#[test]
fn latency_goldens() {
    assert_eq!(RsuVariant::g1().latency_cycles(5), 11);
    assert_eq!(RsuVariant::g1().latency_cycles(49), 55);
    assert_eq!(RsuVariant::g4().latency_cycles(49), 20);
    assert_eq!(RsuVariant::g64().latency_cycles(64), 12);
    assert_eq!(
        pipelined_stream(RsuVariant::g1(), 49, 1000).total_cycles,
        58 + 999 * 49
    );
    assert_eq!(
        naive_stream(RsuVariant::g1(), 49, 1000).total_cycles,
        1000 * 58
    );
}

#[test]
fn accel_sim_goldens() {
    let sim = AccelSim::new(AccelSimConfig::paper_design());
    let seg = sim.estimate(&Workload::segmentation(ImageSize::HD));
    let motion = sim.estimate(&Workload::motion(ImageSize::HD));
    assert_eq!(seg.cycles, 154_400_000);
    assert_eq!(motion.cycles, 133_303_200);
}

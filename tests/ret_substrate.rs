//! End-to-end optical-substrate integration: DNA-scaffold assembly →
//! Förster-rate CTMC → RET circuit → first-to-fire Gibbs draw, validated
//! against the exact softmax distribution.

use mogs_gibbs::SoftmaxGibbs;
use mogs_ret::circuit::{Fidelity, RetCircuit, RetCircuitConfig, SpadConfig};
use mogs_ret::exponential::first_to_fire_with;
use mogs_ret::geometry::DnaScaffold;
use mogs_ret::network::RetNetwork;
use mogs_ret::samplers::CategoricalSampler;
use mogs_ret::wearout::EnsembleWearout;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A Gibbs conditional drawn through a *physics-fidelity* RET circuit
/// (Poisson excitation, exciton Gillespie walks, SPAD) must still track
/// the softmax target — the complete optical story of the paper in one
/// assertion.
#[test]
fn physics_circuit_draws_gibbs_conditionals() {
    let energies = [0.0, 10.0, 25.0];
    let t8 = 18.0;
    let expect = SoftmaxGibbs::probabilities(&energies, t8);
    let mut circuit = RetCircuit::new(RetCircuitConfig {
        fidelity: Fidelity::Physics,
        window_ns: 1e4,
        spad: SpadConfig {
            dark_rate_per_ns: 0.0,
            ..SpadConfig::default()
        },
        ..RetCircuitConfig::default()
    });
    // Rates proportional to the Boltzmann weights, scaled into the
    // circuit's reachable range.
    let scale = circuit.effective_rate(15);
    let rates: Vec<f64> = energies.iter().map(|e| scale * (-e / t8).exp()).collect();
    let mut rng = StdRng::seed_from_u64(1);
    let n = 8_000;
    let mut counts = [0usize; 3];
    for _ in 0..n {
        let (i, _) = first_to_fire_with(&mut circuit, &rates, &mut rng).expect("some fire");
        counts[i] += 1;
    }
    for (m, c) in counts.iter().enumerate() {
        let p = *c as f64 / f64::from(n);
        // The 4-bit DAC bridge quantizes the rates, so allow a wider band
        // than the ideal sampler tests use.
        assert!(
            (p - expect[m]).abs() < 0.08,
            "label {m}: {p} vs {}",
            expect[m]
        );
    }
}

/// A circuit built from a DNA-scaffold assembly behaves like the
/// hand-placed donor→acceptor network.
#[test]
fn scaffold_assembled_circuit_works() {
    let scaffold = DnaScaffold::new(1, 8);
    let network = scaffold.donor_acceptor_pair(1).expect("assembly fits");
    let mut circuit = RetCircuit::new(RetCircuitConfig {
        network,
        ..RetCircuitConfig::default()
    });
    circuit.set_intensity_code(10);
    let mut rng = StdRng::seed_from_u64(2);
    let n = 5_000;
    let hits = (0..n)
        .filter(|_| circuit.sample_ttf(&mut rng).is_some())
        .count();
    assert!(
        hits > n * 9 / 10,
        "assembled circuit rarely fires: {hits}/{n}"
    );
}

/// Wear-out closes the loop: as excitations accumulate, the ensemble's
/// alive fraction drops and the circuit's effective rate falls with it.
#[test]
fn wearout_feeds_back_into_circuit_rates() {
    let wearout = EnsembleWearout::new(64, 1e4, 1.0); // short-lived dyes
    let mut circuit = RetCircuit::new(RetCircuitConfig::default());
    circuit.set_intensity_code(15);
    let fresh_rate = circuit.effective_rate(15);
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..20_000 {
        let _ = circuit.sample_ttf(&mut rng);
    }
    let fraction = wearout.alive_fraction(circuit.excitations_delivered());
    assert!(fraction < 1.0, "heavy use must age the ensemble");
    circuit.set_alive_fraction(fraction);
    assert!(circuit.effective_rate(15) < fresh_rate);
}

/// The categorical composition backed by the ideal sampler reproduces a
/// known discrete distribution — the generic-RSU sampling claim of §2.3.
#[test]
fn categorical_composition_end_to_end() {
    let mut sampler = CategoricalSampler::new(vec![4.0, 2.0, 1.0, 1.0]);
    let expect = sampler.probabilities();
    let mut rng = StdRng::seed_from_u64(4);
    let n = 40_000;
    let mut counts = [0usize; 4];
    for _ in 0..n {
        counts[sampler.sample(&mut rng)] += 1;
    }
    for (m, c) in counts.iter().enumerate() {
        let p = *c as f64 / f64::from(n);
        assert!(
            (p - expect[m]).abs() < 0.01,
            "outcome {m}: {p} vs {}",
            expect[m]
        );
    }
}

/// Phase-type analytics agree with circuit-level sampling for the
/// donor→acceptor workhorse network.
#[test]
fn phase_type_matches_circuit_statistics() {
    let network = RetNetwork::donor_acceptor(4.0);
    let emission = network.emission_probabilities(0).expect("node 0");
    // The acceptor should dominate emission at 4 nm; the circuit's
    // detection probability per excitation reflects it.
    assert!(emission.per_node[1] > emission.per_node[0]);
    let mean_t = network.mean_emission_time(0).expect("emits");
    assert!(
        mean_t > 0.0 && mean_t < 5.0,
        "mean emission time {mean_t} ns"
    );
}

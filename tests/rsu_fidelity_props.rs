//! Property-based fidelity tests: the first-to-fire principle and the
//! RSU-G quantization chain, over randomized inputs.

use mogs_core::energy_unit::{EnergyUnit, EnergyUnitConfig};
use mogs_core::intensity::IntensityMap;
use mogs_core::rsu_g::{RsuG, RsuGConfig, SiteInputs};
use mogs_core::variants::RsuVariant;
use mogs_gibbs::{LabelSampler, SoftmaxGibbs};
use mogs_mrf::label::LabelKind;
use mogs_mrf::precision::{saturating_energy_sum, EnergyQuantizer};
use mogs_mrf::{Label, LabelSpace};
use mogs_ret::exponential::first_to_fire;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// P(argmin Exp(λᵢ) = k) = λₖ/Σλ — checked as a strong-law bound over
    /// 20k trials for arbitrary positive rate vectors.
    #[test]
    fn first_to_fire_matches_normalized_rates(
        rates in prop::collection::vec(0.05f64..5.0, 2..6),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 20_000;
        let mut counts = vec![0usize; rates.len()];
        for _ in 0..n {
            counts[first_to_fire(&rates, &mut rng).unwrap()] += 1;
        }
        let total: f64 = rates.iter().sum();
        for (i, c) in counts.iter().enumerate() {
            let p = *c as f64 / f64::from(n);
            let expect = rates[i] / total;
            prop_assert!((p - expect).abs() < 0.03,
                "label {}: {} vs {}", i, p, expect);
        }
    }

    /// The hardware energy datapath agrees with the model-level label
    /// distance for every label pair and both interpretations.
    #[test]
    fn energy_unit_matches_label_space(a in 0u8..64, b in 0u8..64) {
        let scalar_unit = EnergyUnit::new(EnergyUnitConfig {
            kind: LabelKind::Scalar,
            doubleton_shift: 0,
            singleton_shift: 0,
        });
        let scalar_space = LabelSpace::scalar(64);
        prop_assert_eq!(
            scalar_unit.doubleton(a, b),
            scalar_space.distance_sq(Label::new(a), Label::new(b))
        );
        let vector_unit = EnergyUnit::new(EnergyUnitConfig {
            kind: LabelKind::Vector2,
            doubleton_shift: 0,
            singleton_shift: 0,
        });
        let vector_space = LabelSpace::window(8, 8);
        prop_assert_eq!(
            vector_unit.doubleton(a, b),
            vector_space.distance_sq(Label::new(a), Label::new(b))
        );
    }

    /// The 8-bit saturating sum never wraps and never exceeds 255.
    #[test]
    fn saturating_sum_never_wraps(terms in prop::collection::vec(0u8..=255, 0..8)) {
        let s = saturating_energy_sum(&terms);
        let exact: u32 = terms.iter().map(|&t| u32::from(t)).sum();
        if exact <= 255 {
            prop_assert_eq!(u32::from(s), exact);
        } else {
            prop_assert_eq!(s, 255);
        }
    }

    /// The RSU-G always returns an in-range label and the documented
    /// latency, whatever the inputs.
    #[test]
    fn rsu_g_is_total(
        labels in 1u8..=64,
        data1 in 0u8..64,
        neighbor in 0u8..64,
        seed in 0u64..1000,
    ) {
        let mut rsu = RsuG::new(RsuGConfig::for_labels(labels, 24.0));
        let inputs = SiteInputs {
            neighbors: [Some(neighbor), None, Some(neighbor), None],
            data1,
            data2: vec![data1],
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let s = rsu.sample_site(&inputs, &mut rng);
        prop_assert!(s.label.value() < labels);
        prop_assert_eq!(s.cycles, RsuVariant::g1().latency_cycles(labels));
    }

    /// The intensity map is monotone non-increasing for any temperature,
    /// and pack/unpack is the identity.
    #[test]
    fn intensity_map_invariants(t8 in 0.5f64..200.0) {
        let map = IntensityMap::boltzmann(t8);
        let mut last = u8::MAX;
        for e in 0..=255u8 {
            let c = map.lookup(e);
            prop_assert!(c <= 15);
            prop_assert!(c <= last);
            last = c;
        }
        prop_assert_eq!(IntensityMap::unpack(&map.pack()), map);
    }

    /// The RSU-G sampler adapter is shift- and scale-consistent: shifting
    /// all model energies by a constant leaves its intensity codes
    /// unchanged.
    #[test]
    fn sampler_codes_shift_invariant(
        energies in prop::collection::vec(0.0f64..100.0, 2..8),
        shift in -50.0f64..50.0,
    ) {
        let sampler = mogs_core::rsu_g::RsuGSampler::new(EnergyQuantizer::new(2.0), 8.0);
        let shifted: Vec<f64> = energies.iter().map(|e| e + shift).collect();
        prop_assert_eq!(sampler.codes(&energies), sampler.codes(&shifted));
    }
}

/// Statistical (non-proptest) check: the full RSU-G chain tracks the exact
/// Gibbs conditional within quantization error on a fixed stress vector.
#[test]
fn rsu_chain_tracks_gibbs_distribution() {
    let t8 = 24.0;
    let mut rsu = RsuG::new(RsuGConfig::for_labels(4, t8));
    let inputs = SiteInputs {
        neighbors: [Some(0), Some(1), Some(2), Some(3)],
        data1: 10,
        data2: vec![10, 14, 18, 26],
    };
    let energies: Vec<f64> = rsu
        .energies(&inputs)
        .iter()
        .map(|&e| f64::from(e))
        .collect();
    let expect = SoftmaxGibbs::probabilities(&energies, t8);
    let mut rng = StdRng::seed_from_u64(77);
    let n = 60_000;
    let mut counts = [0usize; 4];
    for _ in 0..n {
        counts[usize::from(rsu.sample_site(&inputs, &mut rng).label.value())] += 1;
    }
    for (m, c) in counts.iter().enumerate() {
        let p = *c as f64 / f64::from(n);
        assert!(
            (p - expect[m]).abs() < 0.06,
            "label {m}: {p} vs {}",
            expect[m]
        );
    }
}

/// The sampler adapter and the bit-level unit agree on which label is most
/// likely for equivalent inputs.
#[test]
fn adapter_and_unit_prefer_the_same_mode() {
    let t8 = 24.0;
    let rsu = RsuG::new(RsuGConfig::for_labels(5, t8));
    let inputs = SiteInputs {
        neighbors: [Some(2), Some(2), Some(2), Some(2)],
        data1: 20,
        data2: vec![6, 19, 32, 44, 57],
    };
    let energies: Vec<f64> = rsu
        .energies(&inputs)
        .iter()
        .map(|&e| f64::from(e))
        .collect();
    let unit_mode = rsu
        .ideal_win_probabilities(&inputs)
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap();
    let mut sampler = mogs_core::rsu_g::RsuGSampler::new(EnergyQuantizer::new(1.0), t8);
    let mut rng = StdRng::seed_from_u64(5);
    let mut counts = [0usize; 5];
    for _ in 0..20_000 {
        let l = sampler.sample_label(&energies, t8, Label::new(0), &mut rng);
        counts[usize::from(l.value())] += 1;
    }
    let adapter_mode = counts
        .iter()
        .enumerate()
        .max_by_key(|(_, c)| **c)
        .map(|(i, _)| i)
        .unwrap();
    assert_eq!(unit_mode, adapter_mode);
}

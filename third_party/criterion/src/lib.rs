//! Vendored, dependency-free stand-in for `criterion`.
//!
//! Mirrors the API surface the workspace's benches use — `Criterion`,
//! benchmark groups, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — but replaces the
//! statistical machinery with a simple timed loop: a short warm-up, then
//! `sample_size` samples whose median per-iteration time is printed.
//! Good enough for relative comparisons in an offline container; not a
//! substitute for upstream criterion's outlier analysis.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (one per binary).
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Honor `cargo bench -- <filter>` and ignore criterion CLI flags
        // (`--bench`, `--noplot`, ...) that cargo forwards.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Upstream-compatible no-op: CLI args are read in `default()`.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_owned();
        let skip = self.skips(&name);
        run_one(&name, 10, skip, f);
        self
    }

    fn skips(&self, full_name: &str) -> bool {
        self.filter
            .as_deref()
            .is_some_and(|f| !full_name.contains(f))
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Upstream-compatible no-op: the stand-in reports time only.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let skip = self.criterion.skips(&full);
        run_one(&full, self.sample_size, skip, f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let full = format!("{}/{}", self.name, id.into());
        let skip = self.criterion.skips(&full);
        run_one(&full, self.sample_size, skip, |b| f(b, input));
        self
    }

    /// Ends the group (upstream writes reports here; the stand-in prints
    /// per-benchmark lines as it goes, so this is a no-op).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { text: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// Declared throughput of a benchmark (accepted, not reported).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures handed to `bench_function`.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` samples after warm-up.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: find an iteration count that makes one sample take a
        // measurable amount of time (~5ms), capped to keep totals small.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 4).min(1 << 20);
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

#[allow(clippy::cast_precision_loss)]
fn run_one<F>(name: &str, sample_size: usize, skip: bool, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if skip {
        return;
    }
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / bencher.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let lo = per_iter[0];
    let hi = per_iter[per_iter.len() - 1];
    println!(
        "{name:<48} time: [{} {} {}]",
        format_time(lo),
        format_time(median),
        format_time(hi)
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.2} s")
    }
}

/// Bundles benchmark functions into a runnable group, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups, as upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("count", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }

    #[test]
    fn time_formatting_picks_units() {
        assert!(format_time(2e-9).ends_with("ns"));
        assert!(format_time(2e-6).ends_with("µs"));
        assert!(format_time(2e-3).ends_with("ms"));
        assert!(format_time(2.0).ends_with(" s"));
    }
}

//! MPMC channels with the crossbeam-channel API subset the workspace uses:
//! [`bounded`] / [`unbounded`] constructors, cloneable [`Sender`] /
//! [`Receiver`], blocking and non-blocking send/recv, timeouts, and
//! `len()` for queue-depth metrics.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: Option<usize>,
}

/// Sending half of a channel. Cloneable; the channel disconnects when all
/// senders are dropped.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// Receiving half of a channel. Cloneable; the channel disconnects when
/// all receivers are dropped.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Error of [`Sender::send`]: all receivers are gone. Carries the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error of [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded channel is at capacity. Carries the message.
    Full(T),
    /// All receivers are gone. Carries the message.
    Disconnected(T),
}

/// Error of [`Receiver::recv`]: channel empty and all senders gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error of [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message currently queued.
    Empty,
    /// Channel empty and all senders gone.
    Disconnected,
}

/// Error of [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// Channel empty and all senders gone.
    Disconnected,
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Creates a bounded channel: `send` blocks at capacity, `try_send` fails
/// with [`TrySendError::Full`] — the backpressure primitive.
///
/// # Panics
///
/// Panics if `capacity == 0` (rendezvous channels are not implemented).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(
        capacity > 0,
        "zero-capacity channels are not supported by this stand-in"
    );
    new_channel(Some(capacity))
}

/// Creates an unbounded channel: `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    new_channel(None)
}

fn new_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

fn lock<T>(chan: &Chan<T>) -> std::sync::MutexGuard<'_, State<T>> {
    chan.state.lock().unwrap_or_else(|e| e.into_inner())
}

impl<T> Sender<T> {
    /// Sends, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] if all receivers are gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = lock(&self.chan);
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            match self.chan.capacity {
                Some(cap) if state.queue.len() >= cap => {
                    // Re-checks disconnect and capacity after waking.
                    state = self
                        .chan
                        .not_full
                        .wait(state)
                        .unwrap_or_else(|e| e.into_inner());
                }
                _ => {
                    state.queue.push_back(value);
                    drop(state);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
            }
        }
    }

    /// Non-blocking send.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] at capacity, [`TrySendError::Disconnected`]
    /// when all receivers are gone.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = lock(&self.chan);
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = self.chan.capacity {
            if state.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.chan.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        lock(&self.chan).queue.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Receives, blocking while the channel is empty.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the channel is empty and all senders are
    /// gone (queued messages are still drained first).
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = lock(&self.chan);
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .chan
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking receive.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is queued,
    /// [`TryRecvError::Disconnected`] when also no sender remains.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = lock(&self.chan);
        if let Some(v) = state.queue.pop_front() {
            drop(state);
            self.chan.not_full.notify_one();
            return Ok(v);
        }
        if state.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Receives, blocking up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] if nothing arrived in time,
    /// [`RecvTimeoutError::Disconnected`] when empty with no senders.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = lock(&self.chan);
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .chan
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        lock(&self.chan).queue.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator draining the channel until disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

/// Blocking iterator over received messages.
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock(&self.chan).senders += 1;
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        lock(&self.chan).receivers += 1;
        Receiver {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = lock(&self.chan);
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Wake receivers so they observe the disconnect.
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = lock(&self.chan);
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            // Wake blocked senders so they observe the disconnect.
            self.chan.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender").field("len", &self.len()).finish()
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).expect("send");
        }
        assert_eq!(rx.len(), 5);
        for i in 0..5 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).expect("first fits");
        tx.try_send(2).expect("second fits");
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).expect("space freed");
    }

    #[test]
    fn bounded_send_blocks_until_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1).expect("fits");
        let t = thread::spawn(move || {
            tx.send(2).expect("unblocked by recv");
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().expect("sender");
    }

    #[test]
    fn drop_of_senders_disconnects_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7).expect("send");
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn drop_of_receiver_fails_send() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn recv_timeout_times_out_then_succeeds() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).expect("send");
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
    }

    #[test]
    fn mpmc_distributes_all_messages() {
        let (tx, rx) = bounded(4);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for i in 0..100 {
            tx.send(i).expect("send");
        }
        drop(tx);
        let total: usize = consumers
            .into_iter()
            .map(|c| c.join().expect("consumer"))
            .sum();
        assert_eq!(total, 100);
    }
}

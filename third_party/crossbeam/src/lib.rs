//! Vendored, dependency-free stand-in for the `crossbeam` crate.
//!
//! Provides the two facilities this workspace uses:
//!
//! * [`scope`] — scoped threads with crossbeam's closure-takes-the-scope
//!   signature, implemented over `std::thread::scope`;
//! * [`channel`] — cloneable MPMC channels (bounded with blocking/failing
//!   sends for backpressure, and unbounded), implemented with a mutex and
//!   condition variables.

pub mod channel;
pub mod thread;

pub use thread::scope;

//! Scoped threads with the crossbeam 0.8 API over `std::thread::scope`.

use std::any::Any;

/// The error payload of a panicked scoped thread.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// A scope handle passed to [`scope`]'s closure and to every spawned
/// closure (crossbeam's signature — spawned closures receive the scope so
/// they can spawn further threads).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

// Manual impls: the wrapper is a shared reference, freely copyable.
impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

/// Join handle of a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread and returns its result, or the panic payload.
    pub fn join(self) -> Result<T, PanicPayload> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread scoped to `'env` borrows. The closure receives the
    /// scope (commonly ignored as `|_|`).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let me = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&me)),
        }
    }
}

/// Creates a scope in which threads borrowing local data can be spawned.
///
/// Returns `Ok` with the closure's value; panics in *spawned threads* are
/// propagated by `std::thread::scope` when their handles are not joined,
/// so like crossbeam the error arm surfaces child panics (crossbeam
/// collects them; std re-raises them — both abort the scope's caller
/// unless handles were joined explicitly).
///
/// # Errors
///
/// Never returns `Err` in this implementation (panics propagate instead);
/// the `Result` shape is kept for API compatibility with crossbeam, whose
/// callers `.expect(...)` the result.
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_locals() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker")).sum()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let n = scope(|s| {
            let h = s.spawn(|inner| inner.spawn(|_| 21).join().expect("inner") * 2);
            h.join().expect("outer")
        })
        .expect("scope");
        assert_eq!(n, 42);
    }
}

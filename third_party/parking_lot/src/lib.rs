//! Vendored, dependency-free stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's API shape: locks
//! return guards directly (poisoning is unwrapped away — a panicked holder
//! aborts nothing here; the protected data is taken as-is, which matches
//! parking_lot's semantics closely enough for this workspace).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion lock (no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily move the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

/// Result of a timed wait: whether the wait timed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates the condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing the guard's lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard holds the lock");
        guard.inner = Some(self.inner.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard holds the lock");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Blocks until `condition` returns false (parking_lot's `wait_while`).
    pub fn wait_while<T, F: FnMut(&mut T) -> bool>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        mut condition: F,
    ) {
        while condition(&mut *guard) {
            self.wait(guard);
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// A reader–writer lock (no poisoning).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(0);
        let _held = m.lock();
        assert!(m.try_lock().is_none());
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            *ready = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        assert!(*ready);
        t.join().expect("signaller");
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}

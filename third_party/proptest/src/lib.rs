//! Vendored, dependency-light stand-in for `proptest`.
//!
//! The real proptest generates random cases, shrinks failures, and
//! persists regressions. This stand-in keeps the part the workspace's
//! tests rely on — deterministic random-case generation over composable
//! [`Strategy`] values with the `proptest!`/`prop_assert!` macro surface —
//! and drops shrinking and persistence. A failing case panics with the
//! case's seed in the message so it can be replayed by fixing the seed.
//!
//! Supported strategies: integer and float ranges, inclusive integer
//! ranges, tuples (up to 6), `prop::collection::vec`, `prop::bool::ANY`,
//! and `.prop_map`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod strategy {
    use super::StdRng;

    /// A generator of random values for property tests.
    ///
    /// Unlike the real proptest there is no value tree or shrinking: a
    /// strategy simply produces a value from an RNG.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter returned by [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy producing a constant value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    super::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    super::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    super::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);

    macro_rules! impl_tuple {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple!(A: 0);
    impl_tuple!(A: 0, B: 1);
    impl_tuple!(A: 0, B: 1, C: 2);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::{Rng, StdRng};

    /// Strategy for `Vec`s with a length drawn from `len` and elements
    /// drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: ::std::ops::Range<usize>,
    }

    /// Generates vectors of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: ::std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::{Rng, StdRng};

    /// Strategy generating either boolean with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The uniform boolean strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;

        fn generate(&self, rng: &mut StdRng) -> ::core::primitive::bool {
            rng.gen_bool(0.5)
        }
    }
}

pub mod test_runner {
    /// Run configuration for a `proptest!` block.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Namespace alias so `prop::collection::vec(..)` works as in upstream.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::strategy;
}

/// The glob-import surface mirrored from upstream `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Derives a per-test base seed from the test's name, so different
/// properties see different streams while runs stay deterministic.
#[must_use]
pub fn seed_for_test(name: &str) -> u64 {
    // FNV-1a, good enough to decorrelate test names.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Makes the RNG for one case of one property.
#[must_use]
pub fn case_rng(base_seed: u64, case: u32) -> StdRng {
    StdRng::seed_from_u64(base_seed ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` against `config.cases` random
/// bindings. Failures panic (no shrinking) naming the failing case seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let base_seed = $crate::seed_for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::case_rng(base_seed, case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (move || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!(
                        "property {} failed at case {case} (base seed {base_seed:#x}): {message}",
                        stringify!($name),
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_per_case() {
        let strat = 0u32..1000;
        let a: Vec<u32> = (0..5)
            .map(|c| strat.generate(&mut crate::case_rng(42, c)))
            .collect();
        let b: Vec<u32> = (0..5)
            .map(|c| strat.generate(&mut crate::case_rng(42, c)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn vec_strategy_respects_length_bounds() {
        let strat = prop::collection::vec(0u8..=255, 2..6);
        for case in 0..50 {
            let v = strat.generate(&mut crate::case_rng(7, case));
            assert!((2..6).contains(&v.len()), "len {}", v.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, tuples, map, and asserts.
        #[test]
        fn macro_surface_works(
            x in 0u8..10,
            mut pair in (0.0f64..1.0, 1u16..=4).prop_map(|(f, n)| (f * 2.0, n)),
            flag in crate::bool::ANY,
        ) {
            pair.0 += 1.0;
            prop_assert!(x < 10);
            prop_assert!(pair.0 >= 1.0 && pair.0 < 3.0, "pair.0 {}", pair.0);
            prop_assert_ne!(pair.1, 0);
            prop_assert_eq!(u8::from(flag), flag as u8);
        }
    }
}

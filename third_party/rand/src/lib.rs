//! Vendored, dependency-free stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the exact API surface it uses: [`Rng`] with `gen`,
//! `gen_range`, and `gen_bool`; [`SeedableRng`] with `from_seed` and
//! `seed_from_u64`; and a deterministic [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64. Its streams
//! differ from upstream rand's ChaCha12-based `StdRng`; nothing in the
//! workspace depends on the upstream streams — tests fix seeds only for
//! *reproducibility*, and statistical tests use generous tolerances.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit generator.
pub trait RngCore {
    /// The next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Samples a value of type `T` from a distribution.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "standard" distribution: uniform over a type's natural domain
/// (`[0, 1)` for floats, all values for integers, fair coin for `bool`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi - lo) as u128;
                (lo + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                (lo + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <Standard as Distribution<f64>>::sample(&Standard, self) < p
    }

    /// Draws a value from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Fills a byte buffer with uniform bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Deterministic RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256**.
    ///
    /// Statistically strong for simulation purposes, trivially seedable,
    /// and `Clone`/`Debug` like upstream's `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (slot, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *slot = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_every_value_of_a_small_range() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[rng.gen_range(0usize..3)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_through_unsized_references() {
        // The workspace samples through `&mut R where R: Rng + ?Sized`.
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(12);
        let dynrng: &mut StdRng = &mut rng;
        assert!((0.0..1.0).contains(&draw(dynrng)));
    }
}

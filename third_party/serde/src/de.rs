//! A small recursive-descent JSON parser backing [`crate::Deserialize`].

use std::fmt;

/// A JSON parse error with byte position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    position: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for Error {}

/// Cursor over JSON input text.
#[derive(Debug)]
pub struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    /// Starts parsing `input`.
    pub fn new(input: &'a str) -> Self {
        Parser { input, pos: 0 }
    }

    /// Builds an error at the current position.
    pub fn error(&self, message: &str) -> Error {
        Error {
            message: message.to_owned(),
            position: self.pos,
        }
    }

    /// Skips whitespace.
    pub fn skip_ws(&mut self) {
        let rest = &self.input[self.pos..];
        let trimmed = rest.trim_start();
        self.pos += rest.len() - trimmed.len();
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.input[self.pos..].chars().next()
    }

    /// Consumes `c` if it is next (after whitespace).
    pub fn consume_char(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    /// Requires `c` next (after whitespace).
    ///
    /// # Errors
    ///
    /// Returns an error naming the expected character.
    pub fn expect_char(&mut self, c: char) -> Result<(), Error> {
        if self.consume_char(c) {
            Ok(())
        } else {
            Err(self.error(&format!("expected '{c}'")))
        }
    }

    /// Consumes a literal word (e.g. `null`, `true`) if present.
    pub fn consume_literal(&mut self, lit: &str) -> bool {
        self.skip_ws();
        if self.input[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    /// Requires the end of input (after whitespace).
    ///
    /// # Errors
    ///
    /// Returns an error if trailing content remains.
    pub fn expect_end(&mut self) -> Result<(), Error> {
        self.skip_ws();
        if self.pos == self.input.len() {
            Ok(())
        } else {
            Err(self.error("trailing characters"))
        }
    }

    /// Parses a JSON number.
    ///
    /// # Errors
    ///
    /// Returns an error when no valid number starts here.
    pub fn parse_number(&mut self) -> Result<f64, Error> {
        self.skip_ws();
        let rest = &self.input[self.pos..];
        let end = rest
            .char_indices()
            .find(|(_, c)| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
            .map_or(rest.len(), |(i, _)| i);
        let token = &rest[..end];
        let value: f64 = token
            .parse()
            .map_err(|_| self.error(&format!("invalid number '{token}'")))?;
        self.pos += end;
        Ok(value)
    }

    /// Parses `true` or `false`.
    ///
    /// # Errors
    ///
    /// Returns an error when neither literal is present.
    pub fn parse_bool(&mut self) -> Result<bool, Error> {
        if self.consume_literal("true") {
            Ok(true)
        } else if self.consume_literal("false") {
            Ok(false)
        } else {
            Err(self.error("expected boolean"))
        }
    }

    /// Parses a JSON string (with escapes).
    ///
    /// # Errors
    ///
    /// Returns an error on a missing quote or bad escape.
    pub fn parse_string(&mut self) -> Result<String, Error> {
        self.expect_char('"')?;
        let mut out = String::new();
        let mut chars = self.input[self.pos..].char_indices();
        loop {
            let Some((i, c)) = chars.next() else {
                return Err(self.error("unterminated string"));
            };
            match c {
                '"' => {
                    self.pos += i + 1;
                    return Ok(out);
                }
                '\\' => {
                    let Some((_, esc)) = chars.next() else {
                        return Err(self.error("unterminated escape"));
                    };
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let Some((_, h)) = chars.next() else {
                                    return Err(self.error("short \\u escape"));
                                };
                                code = code * 16
                                    + h.to_digit(16).ok_or_else(|| self.error("bad \\u escape"))?;
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(self.error(&format!("unknown escape '\\{other}'")));
                        }
                    }
                }
                c => out.push(c),
            }
        }
    }

    /// Skips one complete JSON value of any type (for unknown fields).
    ///
    /// # Errors
    ///
    /// Returns an error on malformed input.
    pub fn skip_value(&mut self) -> Result<(), Error> {
        match self.peek() {
            Some('"') => {
                self.parse_string()?;
            }
            Some('{') => {
                self.expect_char('{')?;
                if !self.consume_char('}') {
                    loop {
                        self.parse_string()?;
                        self.expect_char(':')?;
                        self.skip_value()?;
                        if !self.consume_char(',') {
                            self.expect_char('}')?;
                            break;
                        }
                    }
                }
            }
            Some('[') => {
                self.expect_char('[')?;
                if !self.consume_char(']') {
                    loop {
                        self.skip_value()?;
                        if !self.consume_char(',') {
                            self.expect_char(']')?;
                            break;
                        }
                    }
                }
            }
            Some('t') | Some('f') => {
                self.parse_bool()?;
            }
            Some('n') => {
                if !self.consume_literal("null") {
                    return Err(self.error("expected null"));
                }
            }
            _ => {
                self.parse_number()?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_value_handles_nested_structures() {
        let mut p = Parser::new(r#"{"a":[1,{"b":"x"},null],"c":true} rest"#);
        p.skip_value().expect("skips object");
        p.skip_ws();
        assert_eq!(&p.input[p.pos..], "rest");
    }

    #[test]
    fn unicode_escape_decodes() {
        let mut p = Parser::new(r#""A\n""#);
        assert_eq!(p.parse_string().expect("string"), "A\n");
    }

    #[test]
    fn number_formats() {
        for (text, want) in [
            ("0", 0.0),
            ("-1.5", -1.5),
            ("2e3", 2000.0),
            ("1.25E-2", 0.0125),
        ] {
            let mut p = Parser::new(text);
            assert_eq!(p.parse_number().expect("number"), want);
        }
    }
}

//! Vendored, dependency-free stand-in for `serde`.
//!
//! The real serde is a data-model framework over pluggable formats; this
//! workspace only ever derives `Serialize`/`Deserialize` on small concrete
//! types and wants JSON snapshots (engine metrics, labeling checkpoints).
//! So the stand-in collapses the data model to JSON directly:
//!
//! * [`Serialize`] writes the value as JSON into a `String`;
//! * [`Deserialize`] reads the value back from a JSON parser;
//! * `#[derive(Serialize, Deserialize)]` (re-exported from the companion
//!   `serde_derive` proc-macro crate) implements both for plain structs,
//!   tuple structs, and fieldless enums — the shapes used here.
//!
//! [`json::to_string`] and [`json::from_str`] are the entry points (the
//! local equivalent of `serde_json`).

pub use serde_derive::{Deserialize, Serialize};

pub mod de;

/// Serializes `self` as JSON text.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Deserializes `Self` from JSON text.
pub trait Deserialize: Sized {
    /// Reads one JSON value from the parser.
    ///
    /// # Errors
    ///
    /// Returns a parse error when the input is not a valid encoding of
    /// `Self`.
    fn deserialize_json(parser: &mut de::Parser<'_>) -> Result<Self, de::Error>;
}

/// JSON entry points (the stand-in's `serde_json`).
pub mod json {
    use super::{de, Deserialize, Serialize};

    /// Encodes a value as a JSON string.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        value.serialize_json(&mut out);
        out
    }

    /// Decodes a value from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns a parse error on malformed input or trailing garbage.
    pub fn from_str<T: Deserialize>(input: &str) -> Result<T, de::Error> {
        let mut parser = de::Parser::new(input);
        let value = T::deserialize_json(&mut parser)?;
        parser.expect_end()?;
        Ok(value)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_ser_display {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}
impl_ser_display!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&self.to_string());
        } else {
            // JSON has no infinities/NaN; null is the conventional stand-in.
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        f64::from(*self).serialize_json(out);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        escape_into(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        escape_into(self, out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            None => out.push_str("null"),
            Some(v) => v.serialize_json(out),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(']');
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_json(parser: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        parser.expect_char('[')?;
        let a = A::deserialize_json(parser)?;
        parser.expect_char(',')?;
        let b = B::deserialize_json(parser)?;
        parser.expect_char(']')?;
        Ok((a, b))
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize_json(parser: &mut de::Parser<'_>) -> Result<Self, de::Error> {
                let n = parser.parse_number()?;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let v = n as $t;
                if (v as f64 - n).abs() > 0.5 {
                    return Err(parser.error("integer out of range"));
                }
                Ok(v)
            }
        }
    )*};
}
impl_de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deserialize_json(parser: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        parser.parse_number()
    }
}

impl Deserialize for f32 {
    fn deserialize_json(parser: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        #[allow(clippy::cast_possible_truncation)]
        Ok(parser.parse_number()? as f32)
    }
}

impl Deserialize for bool {
    fn deserialize_json(parser: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        parser.parse_bool()
    }
}

impl Deserialize for String {
    fn deserialize_json(parser: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        parser.parse_string()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(parser: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        parser.expect_char('[')?;
        let mut out = Vec::new();
        if parser.consume_char(']') {
            return Ok(out);
        }
        loop {
            out.push(T::deserialize_json(parser)?);
            if parser.consume_char(',') {
                continue;
            }
            parser.expect_char(']')?;
            return Ok(out);
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(parser: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        if parser.consume_literal("null") {
            Ok(None)
        } else {
            Ok(Some(T::deserialize_json(parser)?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(json::to_string(&42u32), "42");
        assert_eq!(json::from_str::<u32>("42").expect("int"), 42);
        assert_eq!(json::to_string(&-3i64), "-3");
        assert_eq!(json::to_string(&true), "true");
        assert!(!json::from_str::<bool>("false").expect("bool"));
        assert_eq!(json::to_string(&1.5f64), "1.5");
        assert_eq!(json::from_str::<f64>("-2.25e1").expect("float"), -22.5);
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd".to_owned();
        let encoded = json::to_string(&s);
        assert_eq!(encoded, "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json::from_str::<String>(&encoded).expect("string"), s);
    }

    #[test]
    fn vectors_and_options_round_trip() {
        let v = vec![1u8, 2, 3];
        assert_eq!(json::to_string(&v), "[1,2,3]");
        assert_eq!(json::from_str::<Vec<u8>>("[1,2,3]").expect("vec"), v);
        assert_eq!(json::to_string(&Option::<u8>::None), "null");
        assert_eq!(json::to_string(&Some(7u8)), "7");
        assert_eq!(json::from_str::<Option<u8>>("null").expect("none"), None);
        assert_eq!(json::from_str::<Option<u8>>("7").expect("some"), Some(7));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(json::from_str::<u32>("42 junk").is_err());
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(json::to_string(&f64::NAN), "null");
        assert_eq!(json::to_string(&f64::INFINITY), "null");
    }
}

//! Vendored stand-in for `serde_derive`, written against the raw
//! `proc_macro` API (no syn/quote — the build environment is offline).
//!
//! Supports the shapes this workspace derives on:
//!
//! * structs with named fields → JSON objects (unknown keys skipped);
//! * tuple structs: one field → the inner value, several → a JSON array;
//! * fieldless enums → the variant name as a JSON string.
//!
//! Generics and data-carrying enum variants are rejected with a compile
//! error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (JSON writer).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` (JSON reader).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    Named(Vec<(String, String)>),
    Tuple(Vec<String>),
    UnitEnum(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => {
            let code = match mode {
                Mode::Serialize => gen_serialize(&name, &shape),
                Mode::Deserialize => gen_deserialize(&name, &shape),
            };
            code.parse().expect("generated impl parses")
        }
        Err(message) => format!("compile_error!({message:?});")
            .parse()
            .expect("error parses"),
    }
}

fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let mut tokens = input.into_iter().peekable();
    // Item attributes (doc comments arrive as #[doc = ...]) and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive cannot handle generics on `{name}`"
            ));
        }
    }
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g))
                if matches!(g.delimiter(), Delimiter::Brace | Delimiter::Parenthesis) =>
            {
                break g;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err(format!(
                    "vendored serde_derive cannot handle unit struct `{name}`"
                ));
            }
            Some(_) => continue, // e.g. `where`-less trailing tokens
            None => return Err(format!("missing body for `{name}`")),
        }
    };
    let shape = match (kind.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => Shape::Named(parse_named_fields(body.stream())?),
        ("struct", Delimiter::Parenthesis) => Shape::Tuple(parse_tuple_fields(body.stream())?),
        ("enum", Delimiter::Brace) => Shape::UnitEnum(parse_unit_variants(body.stream())?),
        _ => return Err(format!("unsupported item kind `{kind}`")),
    };
    Ok((name, shape))
}

/// Splits a field-list token stream on commas at angle-bracket depth zero.
fn split_on_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut pieces = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for token in stream {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    pieces.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        pieces.last_mut().expect("non-empty").push(token);
    }
    if pieces.last().is_some_and(Vec::is_empty) {
        pieces.pop();
    }
    pieces
}

/// Strips leading attributes and visibility from one field's tokens.
fn strip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    &tokens[i..]
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    tokens
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(" ")
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<(String, String)>, String> {
    let mut fields = Vec::new();
    for piece in split_on_commas(stream) {
        let piece = strip_attrs_and_vis(&piece);
        let [TokenTree::Ident(name), TokenTree::Punct(colon), ty @ ..] = piece else {
            return Err(format!(
                "unsupported field syntax: {}",
                tokens_to_string(piece)
            ));
        };
        if colon.as_char() != ':' || ty.is_empty() {
            return Err(format!(
                "unsupported field syntax: {}",
                tokens_to_string(piece)
            ));
        }
        fields.push((name.to_string(), tokens_to_string(ty)));
    }
    Ok(fields)
}

fn parse_tuple_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for piece in split_on_commas(stream) {
        let ty = strip_attrs_and_vis(&piece);
        if ty.is_empty() {
            return Err("empty tuple field".to_owned());
        }
        fields.push(tokens_to_string(ty));
    }
    Ok(fields)
}

fn parse_unit_variants(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    for piece in split_on_commas(stream) {
        let piece = strip_attrs_and_vis(&piece);
        match piece {
            [TokenTree::Ident(v)] => variants.push(v.to_string()),
            _ => {
                return Err(format!(
                    "vendored serde_derive only supports fieldless enum variants, got: {}",
                    tokens_to_string(piece)
                ));
            }
        }
    }
    Ok(variants)
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let mut s = String::from("out.push('{');\n");
            for (i, (field, _)) in fields.iter().enumerate() {
                if i > 0 {
                    s.push_str("out.push(',');\n");
                }
                s.push_str(&format!(
                    "out.push_str(\"\\\"{field}\\\":\");\n\
                     ::serde::Serialize::serialize_json(&self.{field}, out);\n"
                ));
            }
            s.push_str("out.push('}');");
            s
        }
        Shape::Tuple(fields) if fields.len() == 1 => {
            "::serde::Serialize::serialize_json(&self.0, out);".to_owned()
        }
        Shape::Tuple(fields) => {
            let mut s = String::from("out.push('[');\n");
            for i in 0..fields.len() {
                if i > 0 {
                    s.push_str("out.push(',');\n");
                }
                s.push_str(&format!(
                    "::serde::Serialize::serialize_json(&self.{i}, out);\n"
                ));
            }
            s.push_str("out.push(']');");
            s
        }
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => out.push_str(\"\\\"{v}\\\"\"),\n"))
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_json(&self, out: &mut ::std::string::String) {{\n{body}\n}}\n}}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let mut s = String::from("parser.expect_char('{')?;\n");
            for (field, ty) in fields {
                s.push_str(&format!(
                    "let mut field_{field}: ::std::option::Option<{ty}> = \
                     ::std::option::Option::None;\n"
                ));
            }
            s.push_str("if !parser.consume_char('}') {\nloop {\n");
            s.push_str("let key = parser.parse_string()?;\nparser.expect_char(':')?;\n");
            s.push_str("match key.as_str() {\n");
            for (field, ty) in fields {
                s.push_str(&format!(
                    "\"{field}\" => {{ field_{field} = ::std::option::Option::Some(\
                     <{ty} as ::serde::Deserialize>::deserialize_json(parser)?); }}\n"
                ));
            }
            s.push_str("_ => { parser.skip_value()?; }\n}\n");
            s.push_str(
                "if parser.consume_char(',') { continue; }\n\
                 parser.expect_char('}')?;\nbreak;\n}\n}\n",
            );
            s.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
            for (field, _) in fields {
                s.push_str(&format!(
                    "{field}: field_{field}.ok_or_else(|| \
                     parser.error(\"missing field '{field}'\"))?,\n"
                ));
            }
            s.push_str("})");
            s
        }
        Shape::Tuple(fields) if fields.len() == 1 => {
            let ty = &fields[0];
            format!(
                "::std::result::Result::Ok({name}(\
                 <{ty} as ::serde::Deserialize>::deserialize_json(parser)?))"
            )
        }
        Shape::Tuple(fields) => {
            let mut s = String::from("parser.expect_char('[')?;\n");
            let mut ctor = format!("{name}(");
            for (i, ty) in fields.iter().enumerate() {
                if i > 0 {
                    s.push_str("parser.expect_char(',')?;\n");
                }
                s.push_str(&format!(
                    "let item_{i} = <{ty} as ::serde::Deserialize>::deserialize_json(parser)?;\n"
                ));
                ctor.push_str(&format!("item_{i},"));
            }
            ctor.push(')');
            s.push_str("parser.expect_char(']')?;\n");
            s.push_str(&format!("::std::result::Result::Ok({ctor})"));
            s
        }
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "let variant = parser.parse_string()?;\n\
                 match variant.as_str() {{\n{arms}\
                 _ => ::std::result::Result::Err(\
                 parser.error(\"unknown variant for {name}\")),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_json(parser: &mut ::serde::de::Parser<'_>) -> \
         ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n}}"
    )
}
